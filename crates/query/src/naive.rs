//! Record-at-a-time aggregation: the semantics oracle and the streaming
//! aggregator reused by the row-scan DBMS baseline.

use crate::engine::percentage_value;
use crate::model::{
    AnalysisQuery, GroupDim, GroupKey, NetworkSizes, QueryResult, QueryStats, ResultRow, ValueMode,
};
use rased_geo::Point;
use rased_osm_model::UpdateRecord;
use rased_temporal::Period;
use std::collections::HashMap;

/// A streaming aggregator implementing the exact query semantics on raw
/// `UpdateList` rows. Feed it records in any order, then [`RecordAggregator::finish`].
///
/// This is both the test oracle ([`naive_execute`]) and the execution core
/// of the row-scan DBMS baseline (Fig. 10): a full-table scan pushes every
/// row through here.
pub struct RecordAggregator<'a> {
    q: &'a AnalysisQuery,
    sizes: Option<&'a NetworkSizes>,
    groups: HashMap<GroupKey, u64>,
}

impl<'a> RecordAggregator<'a> {
    /// Start an aggregation for `q`.
    pub fn new(q: &'a AnalysisQuery, sizes: Option<&'a NetworkSizes>) -> RecordAggregator<'a> {
        RecordAggregator { q, sizes, groups: HashMap::new() }
    }

    /// Offer one record; filtered and grouped per the query.
    pub fn push(&mut self, r: &UpdateRecord) {
        let q = self.q;
        if !q.range.contains(r.date) {
            return;
        }
        if let Some(f) = &q.element_types {
            if !f.contains(&r.element_type) {
                return;
            }
        }
        if let Some(f) = &q.countries {
            if !f.contains(&r.country) {
                return;
            }
        }
        if let Some(f) = &q.road_types {
            if !f.contains(&r.road_type) {
                return;
            }
        }
        if let Some(f) = &q.update_types {
            if !f.contains(&r.update_type) {
                return;
            }
        }
        if let Some(b) = &q.bbox {
            if !b.contains(Point::new(r.lat7, r.lon7)) {
                return;
            }
        }
        let mut key = GroupKey::default();
        for dim in &q.group_by {
            match dim {
                GroupDim::ElementType => key.element_type = Some(r.element_type),
                GroupDim::Country => key.country = Some(r.country),
                GroupDim::RoadType => key.road_type = Some(r.road_type),
                GroupDim::UpdateType => key.update_type = Some(r.update_type),
                GroupDim::Date(g) => key.date = Some(Period::containing(*g, r.date)),
            }
        }
        *self.groups.entry(key).or_insert(0) += 1;
    }

    /// Merge a pre-aggregated count for an already-built group key. The
    /// engine's block path lands here: its cells passed the dimension
    /// filters via [`rased_cube::DimSelection`], and its spatial/temporal
    /// filters are implied by which blocks were planned — no per-record
    /// re-filtering is possible or needed.
    pub fn push_count(&mut self, key: GroupKey, n: u64) {
        if n > 0 {
            *self.groups.entry(key).or_insert(0) += n;
        }
    }

    /// Produce the final rows (sorted by key; stats left default for the
    /// caller to fill).
    pub fn finish(self) -> QueryResult {
        let grand_total: u64 = self.groups.values().sum();
        let mut rows: Vec<ResultRow> = self
            .groups
            .into_iter()
            .map(|(key, count)| ResultRow {
                key,
                count,
                value: match self.q.value {
                    ValueMode::Count => count as f64,
                    ValueMode::Percentage => percentage_value(count, &key, self.sizes, grand_total),
                },
            })
            .collect();
        rows.sort_by_key(|r| r.key);
        QueryResult { rows, stats: QueryStats::default() }
    }
}

/// Evaluate `q` over `records` by direct scan.
pub fn naive_execute(
    records: &[UpdateRecord],
    q: &AnalysisQuery,
    sizes: Option<&NetworkSizes>,
) -> QueryResult {
    let mut agg = RecordAggregator::new(q, sizes);
    for r in records {
        agg.push(r);
    }
    agg.finish()
}
