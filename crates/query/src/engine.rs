//! [`QueryEngine`]: cube-based execution with level optimization + caching.
//!
//! Execution has two phases. *Planning* walks the date range and picks the
//! coarsest materialized cubes (§VII-B); it is pure metadata work. *Fetch +
//! aggregate* retrieves each planned cube and folds its selected cells into
//! a `GroupKey → count` map. The second phase is embarrassingly parallel —
//! cubes are disjoint and counts are commutative — so with
//! [`QueryEngine::with_threads`] the planned cubes are strided across a
//! bounded `thread::scope` worker pool, each worker aggregating into a
//! private map; the maps are merged (order-independent addition) and rows
//! sorted, making results byte-identical to the sequential path at any
//! thread count.

use crate::model::{
    AnalysisQuery, GroupDim, GroupKey, NetworkSizes, QueryResult, QueryStats, ResultRow, ValueMode,
};
use crate::naive::RecordAggregator;
use rased_cube::DimSelection;
use rased_geo::{BBox, CellId, GridSpec, Point};
use rased_index::{
    shard_for, BlockSource, CatalogVersion, CubeSource, FetchOutcome, IndexError, LatticePlanner,
    LevelPlanner, PlannerKind, QueryPlan, ShardedIndex, SpatialBank, TemporalIndex,
};
use rased_osm_model::{CountryId, ElementType, RoadTypeId, UpdateType};
use rased_storage::sync::Mutex;
use rased_storage::IoSnapshot;
use rased_temporal::{Date, DateRange, Period};
use rased_warehouse::{Warehouse, WarehouseError};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Query execution error.
#[derive(Debug)]
pub enum QueryError {
    Index(IndexError),
    Warehouse(WarehouseError),
    /// The plan referenced a cube that vanished between planning and fetch.
    PlanRace(Period),
    /// The query carries a bbox filter but the engine was built without a
    /// [`SpatialExec`] context.
    NoSpatialContext,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Index(e) => write!(f, "{e}"),
            QueryError::Warehouse(e) => write!(f, "{e}"),
            QueryError::PlanRace(p) => write!(f, "cube {p} disappeared during execution"),
            QueryError::NoSpatialContext => {
                write!(f, "bbox query requires a spatial execution context")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<IndexError> for QueryError {
    fn from(e: IndexError) -> Self {
        QueryError::Index(e)
    }
}

impl From<WarehouseError> for QueryError {
    fn from(e: WarehouseError) -> Self {
        QueryError::Warehouse(e)
    }
}

/// Spatial execution context for viewport (bbox) queries. The warehouse is
/// the exact fallback — any (cell, day) the bank has not materialized is
/// answered by a spatial-index scan. With no bank every viewport query is
/// a pure grid scan: the flat baseline the fig15 ablation measures the
/// block bank against.
pub struct SpatialExec<'a> {
    warehouse: &'a Warehouse,
    bank: Option<&'a SpatialBank>,
}

impl<'a> SpatialExec<'a> {
    /// Scan-only context (ablation baseline; also the fallback while a
    /// bank is still backfilling).
    pub fn scan_only(warehouse: &'a Warehouse) -> SpatialExec<'a> {
        SpatialExec { warehouse, bank: None }
    }

    /// Bank-accelerated context: interior viewport cells come from
    /// pre-aggregated blocks, everything else from warehouse scans.
    pub fn banked(warehouse: &'a Warehouse, bank: &'a SpatialBank) -> SpatialExec<'a> {
        SpatialExec { warehouse, bank: Some(bank) }
    }
}

/// The cube-based query engine.
///
/// Over a single [`TemporalIndex`] ([`QueryEngine::new`]) this is the
/// classic engine. Over a [`ShardedIndex`] ([`QueryEngine::over_shards`])
/// it becomes a scatter-gather executor: each shard is planned against its
/// own pinned catalog snapshot, country filters are pushed down so only
/// the owning shards are routed at all, and per-shard partial aggregates
/// merge by the same commutative addition the thread pool already uses —
/// rows stay byte-identical at any shard count × thread count.
pub struct QueryEngine<'a> {
    stores: Vec<&'a TemporalIndex>,
    planner: PlannerKind,
    sizes: Option<NetworkSizes>,
    threads: usize,
    spatial: Option<SpatialExec<'a>>,
}

impl<'a> QueryEngine<'a> {
    /// An engine over `index` using the exact DP planner, sequential.
    pub fn new(index: &'a TemporalIndex) -> QueryEngine<'a> {
        QueryEngine {
            stores: vec![index],
            planner: PlannerKind::ExactDp,
            sizes: None,
            threads: 1,
            spatial: None,
        }
    }

    /// A scatter-gather engine over every shard of `index`. Country-
    /// filtered queries route to the owning shards only (the filter ids
    /// and the ingest split share [`shard_for`], so the pushdown is
    /// exact); unfiltered queries fan out across all shards.
    pub fn over_shards(index: &'a ShardedIndex) -> QueryEngine<'a> {
        QueryEngine {
            stores: index.stores().iter().collect(),
            planner: PlannerKind::ExactDp,
            sizes: None,
            threads: 1,
            spatial: None,
        }
    }

    /// Attach a spatial execution context, enabling bbox-filtered queries.
    pub fn with_spatial(mut self, spatial: SpatialExec<'a>) -> Self {
        self.spatial = Some(spatial);
        self
    }

    /// Switch planning algorithm (the greedy variant exists for ablation).
    pub fn with_planner(mut self, kind: PlannerKind) -> Self {
        self.planner = kind;
        self
    }

    /// Provide per-country network sizes for percentage queries. Owned (a
    /// point-in-time copy): the live system recounts sizes during ingest,
    /// and a query must not observe them shifting mid-execution.
    pub fn with_network_sizes(mut self, sizes: NetworkSizes) -> Self {
        self.sizes = Some(sizes);
        self
    }

    /// Partition each query's fetch + aggregate work over `n` worker
    /// threads (clamped to at least 1; 1 keeps execution on the calling
    /// thread). Results are byte-identical at any setting.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// The stores a query must visit: country filters route to owning
    /// shards only (predicate pushdown), everything else fans out. With a
    /// single store this is always just that store.
    fn route(&self, q: &AnalysisQuery) -> Vec<&'a TemporalIndex> {
        let n = self.stores.len();
        if n <= 1 {
            return self.stores.clone();
        }
        let Some(countries) = &q.countries else { return self.stores.clone() };
        let mut wanted = vec![false; n];
        for c in countries {
            if let Some(w) = wanted.get_mut(shard_for(*c, n)) {
                *w = true;
            }
        }
        self.stores.iter().zip(wanted).filter_map(|(s, hit)| hit.then_some(*s)).collect()
    }

    /// Execute an analysis query.
    pub fn execute(&self, q: &AnalysisQuery) -> Result<QueryResult, QueryError> {
        // A spatial filter changes the access path entirely: cubes
        // aggregate whole countries and cannot cut below one, so bbox
        // queries run against the block bank + warehouse instead.
        if let Some(bbox) = q.bbox {
            return self.execute_spatial(q, bbox);
        }
        let start = Instant::now();

        // Scatter: route to the stores this query can touch at all, then
        // pin one catalog snapshot per routed store for the whole plan +
        // execute. Concurrent publishes swap in new versions but never
        // mutate a pinned one, so each store contributes one consistent
        // state — never a half-published unit or a blend of two epochs.
        let routed: Vec<(&'a TemporalIndex, Arc<CatalogVersion>)> =
            self.route(q).into_iter().map(|s| (s, s.snapshot())).collect();
        let io_before: Vec<IoSnapshot> =
            routed.iter().map(|(s, _)| s.file().stats().snapshot()).collect();
        let selection = self.selection(q);
        let mut stats = QueryStats {
            // The composite epoch of everything pinned: with one store
            // this is exactly its snapshot epoch; sharded, it is the sum
            // over routed shards (each term individually monotonic).
            epoch: routed.iter().map(|(_, snap)| snap.epoch()).sum(),
            ..QueryStats::default()
        };

        // A filter that selects no cell (e.g. only out-of-schema ids) can
        // never match; skip planning and cube fetches entirely.
        if selection.is_empty() {
            stats.wall = start.elapsed();
            return Ok(QueryResult { rows: Vec::new(), stats });
        }

        // Phase 1 (planning, pure metadata): collect every cube to fetch,
        // tagged with its store slot and the date group it lands in. Each
        // store plans against its own catalog + cache state. Empty days
        // are settled here so the worker phase only sees real fetches.
        let mut items: Vec<(usize, Option<Period>, Period)> = Vec::new();
        for (slot, (store, snap)) in routed.iter().enumerate() {
            match q.date_granularity() {
                None => {
                    self.collect_plan(store, snap, q.range, None, slot, &mut items, &mut stats);
                }
                Some(g) => {
                    // Date grouping: evaluate each period of granularity
                    // `g` that intersects the range on its clipped
                    // sub-range, so partial periods at the edges only
                    // count in-range days.
                    let mut p = Period::containing(g, q.range.start());
                    while p.start() <= q.range.end() {
                        // The loop condition keeps p overlapping q.range,
                        // but a typed break beats a panic if Period
                        // arithmetic drifts.
                        let Some(sub) = p.range().intersect(q.range) else { break };
                        self.collect_plan(store, snap, sub, Some(p), slot, &mut items, &mut stats);
                        p = p.succ();
                    }
                }
            }
        }

        // Phase 2 (gather: fetch + aggregate): sequential inline, or
        // strided over the worker pool — cross-shard fan-out and
        // intra-shard parallelism share the same pool. Merging is
        // commutative addition, so the final map is identical either way.
        let groups = if self.threads <= 1 || items.len() <= 1 {
            self.run_sequential(&routed, &items, &selection, q, &mut stats)?
        } else {
            self.run_parallel(&routed, &items, &selection, q, &mut stats)?
        };

        let grand_total: u64 = groups.values().sum();
        let mut rows: Vec<ResultRow> = groups
            .into_iter()
            .map(|(key, count)| ResultRow {
                key,
                count,
                value: match q.value {
                    ValueMode::Count => count as f64,
                    ValueMode::Percentage => {
                        percentage_value(count, &key, self.sizes.as_ref(), grand_total)
                    }
                },
            })
            .collect();
        rows.sort_by_key(|r| r.key);

        for ((store, _), before) in routed.iter().zip(io_before.iter()) {
            let delta = store.file().stats().snapshot().since(before);
            stats.io.reads += delta.reads;
            stats.io.writes += delta.writes;
            stats.io.bytes_read += delta.bytes_read;
            stats.io.bytes_written += delta.bytes_written;
            stats.io.modeled = stats.io.modeled.saturating_add(delta.modeled);
        }
        stats.wall = start.elapsed();
        Ok(QueryResult { rows, stats })
    }

    fn plan(&self, store: &TemporalIndex, snap: &CatalogVersion, range: DateRange) -> QueryPlan {
        let exists = |p: Period| snap.contains(p);
        let cached = |p: Period| store.cache().contains(p);
        let planner = LevelPlanner::new(store.levels(), &exists, &cached);
        planner.plan(range, self.planner)
    }

    fn selection(&self, q: &AnalysisQuery) -> DimSelection {
        let Some(first) = self.stores.first() else {
            return DimSelection::all(rased_cube::CubeSchema::tiny()).with_countries(&[]);
        };
        let mut sel = DimSelection::all(first.schema());
        if let Some(f) = &q.element_types {
            sel = sel.with_element_types(f);
        }
        if let Some(f) = &q.countries {
            sel = sel.with_countries(f);
        }
        if let Some(f) = &q.road_types {
            sel = sel.with_road_types(f);
        }
        if let Some(f) = &q.update_types {
            sel = sel.with_update_types(f);
        }
        sel
    }

    /// Plan `range` on one store and append its fetchable cubes to
    /// `items`; days the planner proves empty are settled into `stats`
    /// immediately. (Sharded, a day empty on k routed shards counts k
    /// times — `empty_days` is a per-store planning statistic.)
    #[allow(clippy::too_many_arguments)]
    fn collect_plan(
        &self,
        store: &TemporalIndex,
        snap: &CatalogVersion,
        range: DateRange,
        date_key: Option<Period>,
        slot: usize,
        items: &mut Vec<(usize, Option<Period>, Period)>,
        stats: &mut QueryStats,
    ) {
        let plan = self.plan(store, snap, range);
        for planned in &plan.cubes {
            if planned.source == CubeSource::Empty {
                stats.empty_days += 1;
            } else {
                items.push((slot, date_key, planned.period));
            }
        }
    }

    /// Fetch one planned cube from its store and fold its selected cells
    /// into `groups`.
    #[allow(clippy::too_many_arguments)]
    fn fetch_and_aggregate(
        &self,
        routed: &[(&'a TemporalIndex, Arc<CatalogVersion>)],
        slot: usize,
        period: Period,
        selection: &DimSelection,
        q: &AnalysisQuery,
        date_key: Option<Period>,
        groups: &mut HashMap<GroupKey, u64>,
    ) -> Result<FetchOutcome, QueryError> {
        // `slot` indexes `routed` by construction; a typed error beats a
        // panic if that invariant ever drifts.
        let (store, snap) = routed.get(slot).ok_or(QueryError::PlanRace(period))?;
        let (cube, outcome) =
            store.fetch_at(snap, period)?.ok_or(QueryError::PlanRace(period))?;
        cube.for_each_selected(selection, |et, c, r, u, v| {
            *groups.entry(cell_group_key(q, date_key, et, c, r, u)).or_insert(0) += v;
        });
        Ok(outcome)
    }

    /// Sequential phase 2: one pass over the items on the calling thread.
    fn run_sequential(
        &self,
        routed: &[(&'a TemporalIndex, Arc<CatalogVersion>)],
        items: &[(usize, Option<Period>, Period)],
        selection: &DimSelection,
        q: &AnalysisQuery,
        stats: &mut QueryStats,
    ) -> Result<HashMap<GroupKey, u64>, QueryError> {
        let mut groups = HashMap::new();
        for (slot, date_key, period) in items {
            match self
                .fetch_and_aggregate(routed, *slot, *period, selection, q, *date_key, &mut groups)?
            {
                FetchOutcome::Cache => stats.cubes_from_cache += 1,
                FetchOutcome::Disk => stats.cubes_from_disk += 1,
            }
        }
        stats.io_critical = self.unit_io_cost() * stats.cubes_from_disk as u32;
        Ok(groups)
    }

    /// Parallel phase 2: stride-partition the items over a bounded
    /// `thread::scope` pool. Each worker aggregates into a private map;
    /// workers' maps merge by commutative addition, so the result equals
    /// the sequential map regardless of scheduling.
    fn run_parallel(
        &self,
        routed: &[(&'a TemporalIndex, Arc<CatalogVersion>)],
        items: &[(usize, Option<Period>, Period)],
        selection: &DimSelection,
        q: &AnalysisQuery,
        stats: &mut QueryStats,
    ) -> Result<HashMap<GroupKey, u64>, QueryError> {
        type WorkerOut = Result<(HashMap<GroupKey, u64>, usize, usize), QueryError>;
        let workers = self.threads.min(items.len());
        let merged: Mutex<Vec<(usize, WorkerOut)>> =
            Mutex::new_named(Vec::with_capacity(workers), "query.exec_merge");
        std::thread::scope(|scope| {
            for w in 0..workers {
                let merged = &merged;
                scope.spawn(move || {
                    let mut groups: HashMap<GroupKey, u64> = HashMap::new();
                    let (mut from_cache, mut from_disk) = (0usize, 0usize);
                    let mut verdict: Result<(), QueryError> = Ok(());
                    for (slot, date_key, period) in items.iter().skip(w).step_by(workers) {
                        match self.fetch_and_aggregate(
                            routed, *slot, *period, selection, q, *date_key, &mut groups,
                        ) {
                            Ok(FetchOutcome::Cache) => from_cache += 1,
                            Ok(FetchOutcome::Disk) => from_disk += 1,
                            Err(e) => {
                                verdict = Err(e);
                                break;
                            }
                        }
                    }
                    merged.lock().push((w, verdict.map(|()| (groups, from_cache, from_disk))));
                });
            }
        });
        let mut outputs = std::mem::take(&mut *merged.lock());
        // Deterministic error selection: lowest worker index wins.
        outputs.sort_by_key(|(w, _)| *w);
        let mut groups: HashMap<GroupKey, u64> = HashMap::new();
        let mut critical_fetches = 0usize;
        for (_w, out) in outputs {
            let (worker_groups, from_cache, from_disk) = out?;
            stats.cubes_from_cache += from_cache;
            stats.cubes_from_disk += from_disk;
            critical_fetches = critical_fetches.max(from_disk);
            for (key, count) in worker_groups {
                *groups.entry(key).or_insert(0) += count;
            }
        }
        stats.io_critical = self.unit_io_cost() * critical_fetches as u32;
        Ok(groups)
    }

    /// The modeled cost of one cube-page read — the unit `io_critical` is
    /// denominated in. Shards share one cost model + page size, so the
    /// first store's is representative.
    fn unit_io_cost(&self) -> std::time::Duration {
        match self.stores.first() {
            Some(store) => {
                let file = store.file();
                file.cost_model().cost(file.page_size() as u64)
            }
            None => std::time::Duration::ZERO,
        }
    }

    /// Execute a bbox-filtered query. With a bank, interior cover cells
    /// are answered from pre-aggregated spatial blocks (per-cell lattice
    /// plan) and everything else — boundary cells, unmaterialized
    /// (cell, day)s — from warehouse scans; without one, the whole box is
    /// one exhaustive grid scan. Both paths feed the same
    /// [`RecordAggregator`] the oracle uses, so rows are byte-identical to
    /// [`crate::naive_execute`] by construction.
    fn execute_spatial(&self, q: &AnalysisQuery, bbox: BBox) -> Result<QueryResult, QueryError> {
        let sp = self.spatial.as_ref().ok_or(QueryError::NoSpatialContext)?;
        let start = Instant::now();
        let mut stats = QueryStats::default();
        let selection = self.selection(q);
        let mut agg = RecordAggregator::new(q, self.sizes.as_ref());

        if selection.is_empty() {
            stats.wall = start.elapsed();
            return Ok(QueryResult { rows: Vec::new(), stats });
        }

        let wh_before = sp.warehouse.io_snapshot();
        match sp.bank {
            None => {
                // Grid-scan baseline: the aggregator applies every filter
                // (range, dimensions, and the bbox itself).
                let mut rows = 0u64;
                sp.warehouse.scan_region(&bbox, |r| {
                    rows += 1;
                    agg.push(r);
                })?;
                stats.scan_rows = rows;
            }
            Some(bank) => {
                self.execute_viewport(q, bbox, sp, bank, &selection, &mut agg, &mut stats)?;
            }
        }
        // Warehouse pages read by scans (the whole grid-scan baseline, and
        // the banked path's boundary/fallback cells) are physical I/O of
        // this query, charged like cube fetches. Scans run serially on the
        // caller thread, so the full modeled delta sits on the critical
        // path. Same caveat as the bank-shard deltas above: counters are
        // shared, so concurrent queries' I/O can be co-attributed.
        let wh_delta = sp.warehouse.io_snapshot().since(&wh_before);
        stats.io.reads += wh_delta.reads;
        stats.io.writes += wh_delta.writes;
        stats.io.bytes_read += wh_delta.bytes_read;
        stats.io.bytes_written += wh_delta.bytes_written;
        stats.io.modeled = stats.io.modeled.saturating_add(wh_delta.modeled);
        stats.io_critical = stats.io_critical.saturating_add(wh_delta.modeled);

        let mut result = agg.finish();
        stats.wall = start.elapsed();
        result.stats = stats;
        Ok(result)
    }

    /// The bank-accelerated viewport path. Touches only the bank shards
    /// owning the cover's interior cells — a publish in any other region
    /// neither delays this query nor shows up in its pinned epochs.
    #[allow(clippy::too_many_arguments)]
    fn execute_viewport(
        &self,
        q: &AnalysisQuery,
        bbox: BBox,
        sp: &SpatialExec<'a>,
        bank: &SpatialBank,
        selection: &DimSelection,
        agg: &mut RecordAggregator<'_>,
        stats: &mut QueryStats,
    ) -> Result<(), QueryError> {
        let grid = bank.grid();
        let cover = grid.cover(&bbox);

        // Pin one snapshot per band shard the interior cells route to.
        let mut snaps: HashMap<usize, Arc<CatalogVersion>> = HashMap::new();
        let mut io_before: HashMap<usize, IoSnapshot> = HashMap::new();
        for &cell in &cover.interior {
            let s = bank.shard_of(cell);
            if !snaps.contains_key(&s) {
                if let (Some(snap), Some(store)) = (bank.snapshot(s), bank.stores().get(s)) {
                    io_before.insert(s, store.file().stats().snapshot());
                    snaps.insert(s, snap);
                }
            }
        }
        stats.epoch = snaps.values().map(|snap| snap.epoch()).sum();

        // Date-group sub-windows (same structure as the temporal path):
        // every planned block lies inside exactly one group period, so a
        // month block can only serve a month-or-coarser group.
        let mut windows: Vec<(Option<Period>, DateRange)> = Vec::new();
        match q.date_granularity() {
            None => windows.push((None, q.range)),
            Some(g) => {
                let mut p = Period::containing(g, q.range.start());
                while p.start() <= q.range.end() {
                    let Some(sub) = p.range().intersect(q.range) else { break };
                    windows.push((Some(p), sub));
                    p = p.succ();
                }
            }
        }

        let probe = |cell: CellId, p: Period| {
            snaps
                .get(&bank.shard_of(cell))
                .is_some_and(|snap| bank.has_block(snap, cell, p))
        };
        let lattice = LatticePlanner::new(&probe);
        // One marker-registry snapshot for the whole plan: a (cell, day)
        // without a block on a *marked* day provably holds no rows, so it
        // needs neither a fetch nor a scan.
        let marker = bank.marker_snapshot();

        for (date_key, sub) in &windows {
            let plan = lattice.plan_viewport(&cover.interior, *sub);
            // Scan fallbacks batch into maximal per-cell day runs (the
            // plan emits a cell's days in order).
            let mut scan_runs: Vec<(CellId, Date, Date)> = Vec::new();
            for b in &plan.blocks {
                match b.source {
                    BlockSource::Block => {
                        let s = bank.shard_of(b.cell);
                        let Some(snap) = snaps.get(&s) else { continue };
                        let (block, outcome) = bank
                            .fetch_block_traced(s, snap, b.cell, b.period)?
                            .ok_or(QueryError::PlanRace(b.period))?;
                        match outcome {
                            FetchOutcome::Cache => stats.blocks_from_cache += 1,
                            FetchOutcome::Disk => stats.blocks_from_disk += 1,
                        }
                        block.for_each_selected(selection, |et, c, r, u, v| {
                            agg.push_count(cell_group_key(q, *date_key, et, c, r, u), v);
                        });
                    }
                    BlockSource::Scan => {
                        let Period::Day(day) = b.period else { continue };
                        if bank.day_published(&marker, day) {
                            stats.empty_days += 1;
                            continue;
                        }
                        stats.scan_days += 1;
                        match scan_runs.last_mut() {
                            Some((cell, _, end)) if *cell == b.cell && end.succ() == day => {
                                *end = day;
                            }
                            _ => scan_runs.push((b.cell, day, day)),
                        }
                    }
                }
            }
            for (cell, from, to) in scan_runs {
                scan_cell(sp, grid, cell, DateRange::new(from, to), agg, stats)?;
            }
        }

        // Boundary cells are always scanned: their blocks aggregate the
        // whole cell, but the box only covers part of it. The aggregator's
        // bbox filter does the cutting.
        for &cell in &cover.boundary {
            scan_cell(sp, grid, cell, q.range, agg, stats)?;
        }

        for (s, before) in &io_before {
            if let Some(store) = bank.stores().get(*s) {
                let delta = store.file().stats().snapshot().since(before);
                stats.io.reads += delta.reads;
                stats.io.writes += delta.writes;
                stats.io.bytes_read += delta.bytes_read;
                stats.io.bytes_written += delta.bytes_written;
                stats.io.modeled = stats.io.modeled.saturating_add(delta.modeled);
            }
        }
        if let Some(store) = bank.stores().first() {
            let file = store.file();
            stats.io_critical =
                file.cost_model().cost(file.page_size() as u64) * stats.blocks_from_disk as u32;
        }
        Ok(())
    }
}

/// Scan one cell's rows for `days` and push them through the aggregator.
/// The grid's cell assignment is re-checked per row so seams between
/// adjacent scanned cells never double-count, whatever the warehouse
/// index's own boundary semantics.
fn scan_cell(
    sp: &SpatialExec<'_>,
    grid: GridSpec,
    cell: CellId,
    days: DateRange,
    agg: &mut RecordAggregator<'_>,
    stats: &mut QueryStats,
) -> Result<(), QueryError> {
    let Some(cell_box) = grid.cell_bbox(cell) else { return Ok(()) };
    let mut rows = 0u64;
    sp.warehouse.scan_region(&cell_box, |r| {
        if !days.contains(r.date) || grid.cell_of(Point::new(r.lat7, r.lon7)) != Some(cell) {
            return;
        }
        rows += 1;
        agg.push(r);
    })?;
    stats.scan_rows += rows;
    Ok(())
}

/// The group key of one cube/block cell: the cell's coordinates projected
/// onto the query's grouped dimensions (the cube path and the block path
/// must build identical keys, so this lives once).
fn cell_group_key(
    q: &AnalysisQuery,
    date_key: Option<Period>,
    et: usize,
    c: usize,
    r: usize,
    u: usize,
) -> GroupKey {
    let mut key = GroupKey { date: date_key, ..GroupKey::default() };
    for dim in &q.group_by {
        match dim {
            GroupDim::ElementType => {
                key.element_type = ElementType::from_index(et);
            }
            GroupDim::Country => key.country = Some(CountryId(c as u16)),
            GroupDim::RoadType => key.road_type = Some(RoadTypeId(r as u16)),
            GroupDim::UpdateType => {
                key.update_type = UpdateType::from_index(u);
            }
            GroupDim::Date(_) => {} // already in date_key
        }
    }
    key
}

/// Percentage semantics shared by engine and oracle: per-country network
/// size when the row has a country and sizes are known; otherwise percent
/// of the query's grand total.
pub(crate) fn percentage_value(
    count: u64,
    key: &GroupKey,
    sizes: Option<&NetworkSizes>,
    grand_total: u64,
) -> f64 {
    let denom = match (key.country, sizes) {
        (Some(c), Some(s)) => {
            let n = s.get(c);
            if n > 0 {
                n
            } else {
                grand_total
            }
        }
        _ => grand_total,
    };
    if denom == 0 {
        0.0
    } else {
        count as f64 * 100.0 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_execute;
    use dettest::TempDir;
    use rased_cube::{CubeSchema, DataCube};
    use rased_index::CacheConfig;
    use rased_osm_model::{ChangesetId, UpdateRecord};
    use rased_storage::IoCostModel;
    use rased_temporal::Granularity;
    use rased_temporal::Date;

    fn d(s: &str) -> Date {
        s.parse().unwrap()
    }

    /// Deterministic pseudo-random records over 90 days.
    fn dataset() -> Vec<UpdateRecord> {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut out = Vec::new();
        for day in 0..90 {
            let date = d("2021-01-01").add_days(day);
            for _ in 0..(5 + (next() % 20)) {
                out.push(UpdateRecord {
                    element_type: ElementType::ALL[(next() % 3) as usize],
                    update_type: UpdateType::ALL[(next() % 5) as usize],
                    country: CountryId((next() % 4) as u16),
                    road_type: RoadTypeId((next() % 3) as u16),
                    date,
                    lat7: 0,
                    lon7: 0,
                    changeset: ChangesetId(next()),
                });
            }
        }
        out
    }

    /// Ingest `records` into a fresh index, one daily cube per day. The
    /// returned [`TempDir`] must outlive the index (the catalog sidecar
    /// lives inside it).
    fn build_index(tag: &str, records: &[UpdateRecord]) -> (TempDir, TemporalIndex) {
        let dir = TempDir::new(&format!("query-{tag}"));
        let schema = CubeSchema::tiny();
        let idx = TemporalIndex::create(
            dir.path(),
            schema,
            4,
            CacheConfig::disabled(),
            IoCostModel::free(),
        )
        .unwrap();
        let mut by_day: HashMap<Date, Vec<&UpdateRecord>> = HashMap::new();
        for r in records {
            by_day.entry(r.date).or_default().push(r);
        }
        let mut days: Vec<_> = by_day.keys().copied().collect();
        days.sort();
        for day in days {
            let cube = DataCube::from_records(schema, by_day[&day].iter().copied()).unwrap();
            idx.ingest_day(day, &cube).unwrap();
        }
        (dir, idx)
    }

    fn assert_matches_naive(tag: &str, q: AnalysisQuery) {
        let records = dataset();
        let (_dir, idx) = build_index(tag, &records);
        let engine = QueryEngine::new(&idx);
        let got = engine.execute(&q).unwrap();
        let want = naive_execute(&records, &q, None);
        assert_eq!(got.rows, want.rows, "query {q:?}");
        // The parallel executor must agree byte-for-byte at any width.
        for threads in [2, 4, 7] {
            let par = QueryEngine::new(&idx).with_threads(threads).execute(&q).unwrap();
            assert_eq!(par.rows, got.rows, "threads={threads} diverged for {q:?}");
        }
    }

    #[test]
    fn ungrouped_count_matches_naive() {
        assert_matches_naive("e1", AnalysisQuery::over(DateRange::new(d("2021-01-05"), d("2021-02-20"))));
    }

    #[test]
    fn filters_match_naive() {
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .elements(vec![ElementType::Way, ElementType::Relation])
            .countries(vec![CountryId(0), CountryId(2)])
            .roads(vec![RoadTypeId(1)])
            .updates(UpdateType::NEW_OR_UPDATE.to_vec());
        assert_matches_naive("e2", q);
    }

    #[test]
    fn group_by_country_and_element_matches_naive() {
        // The paper's Example 1 shape.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .updates(UpdateType::NEW_OR_UPDATE.to_vec())
            .group(GroupDim::Country)
            .group(GroupDim::ElementType);
        assert_matches_naive("e3", q);
    }

    #[test]
    fn group_by_date_daily_matches_naive() {
        // The paper's Example 3 shape (time series).
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-15"), d("2021-02-15")))
            .countries(vec![CountryId(1), CountryId(3)])
            .group(GroupDim::Country)
            .group(GroupDim::Date(Granularity::Day));
        assert_matches_naive("e4", q);
    }

    #[test]
    fn group_by_week_with_partial_edges_matches_naive() {
        // Range deliberately cuts weeks on both ends.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-06"), d("2021-02-17")))
            .group(GroupDim::Date(Granularity::Week));
        assert_matches_naive("e5", q);
    }

    #[test]
    fn group_by_month_matches_naive() {
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .group(GroupDim::Date(Granularity::Month))
            .group(GroupDim::UpdateType);
        assert_matches_naive("e6", q);
    }

    #[test]
    fn all_dims_grouped_matches_naive() {
        let q = AnalysisQuery::over(DateRange::new(d("2021-02-01"), d("2021-02-28")))
            .group(GroupDim::Country)
            .group(GroupDim::ElementType)
            .group(GroupDim::RoadType)
            .group(GroupDim::UpdateType)
            .group(GroupDim::Date(Granularity::Day));
        assert_matches_naive("e7", q);
    }

    #[test]
    fn percentage_with_sizes_matches_naive() {
        let records = dataset();
        let (_dir, idx) = build_index("e8", &records);
        let sizes = NetworkSizes::new(vec![1000, 2000, 4000, 8000]);
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .group(GroupDim::Country)
            .percentage();
        let engine = QueryEngine::new(&idx).with_network_sizes(sizes.clone());
        let got = engine.execute(&q).unwrap();
        let want = naive_execute(&records, &q, Some(&sizes));
        assert_eq!(got.rows, want.rows);
        // Spot check one percentage.
        let row = got.rows.iter().find(|r| r.key.country == Some(CountryId(1))).unwrap();
        assert!((row.value - row.count as f64 * 100.0 / 2000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_range_before_data_returns_no_rows() {
        let records = dataset();
        let (_dir, idx) = build_index("e9", &records);
        let q = AnalysisQuery::over(DateRange::new(d("2019-01-01"), d("2019-12-31")));
        let got = QueryEngine::new(&idx).execute(&q).unwrap();
        assert!(got.rows.is_empty());
        assert_eq!(got.stats.cubes_from_disk, 0);
        assert_eq!(got.stats.empty_days, 365);
    }

    #[test]
    fn stats_count_disk_cubes() {
        let records = dataset();
        let (_dir, idx) = build_index("e10", &records);
        // Full 90-day window with a 4-level index rolled up: far fewer than
        // 90 cubes should be touched.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")));
        let got = QueryEngine::new(&idx).execute(&q).unwrap();
        let touched = got.stats.cubes_from_disk + got.stats.cubes_from_cache;
        assert!(touched < 90, "level optimizer should use coarse cubes, touched {touched}");
        assert!(got.stats.io.reads as usize >= got.stats.cubes_from_disk);
    }

    #[test]
    fn empty_selection_short_circuits() {
        let records = dataset();
        let (_dir, idx) = build_index("e12", &records);
        // Country 99 is outside the tiny schema: nothing can match.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .countries(vec![CountryId(99)]);
        let got = QueryEngine::new(&idx).execute(&q).unwrap();
        assert!(got.rows.is_empty());
        assert_eq!(got.stats.cubes_from_disk, 0, "no cube may be fetched");
        assert_eq!(got.stats.cubes_from_cache, 0);
        assert_eq!(got.stats.io.reads, 0);
        // Same answer as the oracle.
        assert_eq!(naive_execute(&records, &q, None).rows, got.rows);
    }

    /// Ingest `records` into a fresh `n`-way sharded index, one full daily
    /// cube per day (the facade splits internally).
    fn build_sharded(tag: &str, records: &[UpdateRecord], n: usize) -> (TempDir, ShardedIndex) {
        let dir = TempDir::new(&format!("query-{tag}-{n}"));
        let schema = CubeSchema::tiny();
        let idx = ShardedIndex::create(
            dir.path(),
            n,
            schema,
            4,
            CacheConfig::disabled(),
            IoCostModel::free(),
        )
        .unwrap();
        let mut by_day: HashMap<Date, Vec<&UpdateRecord>> = HashMap::new();
        for r in records {
            by_day.entry(r.date).or_default().push(r);
        }
        let mut days: Vec<_> = by_day.keys().copied().collect();
        days.sort();
        for day in days {
            let cube = DataCube::from_records(schema, by_day[&day].iter().copied()).unwrap();
            idx.ingest_day(day, &cube).unwrap();
        }
        (dir, idx)
    }

    #[test]
    fn scatter_gather_matches_single_store_at_every_count() {
        let records = dataset();
        let (_dir, single) = build_index("sg-base", &records);
        let queries = [
            AnalysisQuery::over(DateRange::new(d("2021-01-05"), d("2021-03-20")))
                .group(GroupDim::Country)
                .group(GroupDim::UpdateType),
            AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
                .countries(vec![CountryId(1), CountryId(2)])
                .group(GroupDim::Date(Granularity::Week)),
        ];
        for q in &queries {
            let want = QueryEngine::new(&single).execute(q).unwrap().rows;
            for n in [1usize, 2, 4, 7] {
                let (_sdir, sharded) = build_sharded("sg", &records, n);
                for threads in [1usize, 3] {
                    let got = QueryEngine::over_shards(&sharded)
                        .with_threads(threads)
                        .execute(q)
                        .unwrap();
                    assert_eq!(
                        got.rows, want,
                        "rows diverge at shards={n} threads={threads} for {q:?}"
                    );
                }
            }
        }
    }

    // ---- spatial (viewport) path -------------------------------------

    /// A 4×4 grid over a small extent; with 4 bank shards, shard == column.
    fn sgrid() -> GridSpec {
        GridSpec::new(BBox::new(0, 0, 4000, 4000), 4, 4)
    }

    fn cell(row: u16, col: u16) -> CellId {
        CellId { row, col }
    }

    /// Like [`dataset`] but with coordinates spread across the grid extent.
    fn spatial_dataset() -> Vec<UpdateRecord> {
        let mut state = 0x0ddb_a11c_afef_00d5u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut out = Vec::new();
        for day in 0..90 {
            let date = d("2021-01-01").add_days(day);
            for _ in 0..(5 + (next() % 20)) {
                out.push(UpdateRecord {
                    element_type: ElementType::ALL[(next() % 3) as usize],
                    update_type: UpdateType::ALL[(next() % 5) as usize],
                    country: CountryId((next() % 4) as u16),
                    road_type: RoadTypeId((next() % 3) as u16),
                    date,
                    lat7: (next() % 4001) as i32,
                    lon7: (next() % 4001) as i32,
                    changeset: ChangesetId(next()),
                });
            }
        }
        out
    }

    /// Temporal index + warehouse + 4-shard bank, all fed the same records
    /// day by day (full months Jan–Mar, so month blocks materialize).
    fn build_spatial(
        tag: &str,
        records: &[UpdateRecord],
    ) -> (TempDir, TemporalIndex, Warehouse, SpatialBank) {
        let dir = TempDir::new(&format!("query-sp-{tag}"));
        let schema = CubeSchema::tiny();
        let idx = TemporalIndex::create(
            &dir.path().join("index"),
            schema,
            4,
            CacheConfig::disabled(),
            IoCostModel::free(),
        )
        .unwrap();
        let wh = Warehouse::create(&dir.path().join("wh"), IoCostModel::free(), 64).unwrap();
        let bank =
            SpatialBank::create(&dir.path().join("bank"), 4, sgrid(), schema, IoCostModel::free(), 64)
                .unwrap();
        let mut by_day: std::collections::BTreeMap<Date, Vec<UpdateRecord>> = Default::default();
        for r in records {
            by_day.entry(r.date).or_default().push(*r);
        }
        for (day, recs) in &by_day {
            let cube = DataCube::from_records(schema, recs.iter()).unwrap();
            idx.ingest_day(*day, &cube).unwrap();
            for r in recs {
                wh.insert(r).unwrap();
            }
            bank.publish_day(*day, recs).unwrap();
        }
        wh.flush().unwrap();
        (dir, idx, wh, bank)
    }

    /// Banked path, grid-scan ablation, and the record-at-a-time oracle
    /// must all agree row for row.
    fn assert_spatial_matches_naive(tag: &str, q: AnalysisQuery) {
        let records = spatial_dataset();
        let (_dir, idx, wh, bank) = build_spatial(tag, &records);
        let want = naive_execute(&records, &q, None);
        let banked = QueryEngine::new(&idx)
            .with_spatial(SpatialExec::banked(&wh, &bank))
            .execute(&q)
            .unwrap();
        assert_eq!(banked.rows, want.rows, "banked path diverges for {q:?}");
        let scanned = QueryEngine::new(&idx)
            .with_spatial(SpatialExec::scan_only(&wh))
            .execute(&q)
            .unwrap();
        assert_eq!(scanned.rows, want.rows, "scan-only path diverges for {q:?}");
    }

    #[test]
    fn viewport_aligned_box_matches_naive() {
        // Exactly cells (1,1)..(2,2): all interior, no boundary.
        let b = sgrid().cell_bbox(cell(1, 1)).unwrap().union(&sgrid().cell_bbox(cell(2, 2)).unwrap());
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31"))).within(b);
        assert_spatial_matches_naive("sp1", q);
    }

    #[test]
    fn viewport_ragged_box_matches_naive() {
        // Cuts through cells on every side: interior core + boundary ring.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-10"), d("2021-03-20")))
            .within(BBox::new(300, 700, 3300, 3700))
            .group(GroupDim::Country)
            .group(GroupDim::Date(Granularity::Day));
        assert_spatial_matches_naive("sp2", q);
    }

    #[test]
    fn viewport_sliver_inside_one_cell_matches_naive() {
        // Strictly inside cell (0,0): boundary-only cover, pure scan.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-02-28")))
            .within(BBox::new(100, 100, 400, 900))
            .updates(UpdateType::NEW_OR_UPDATE.to_vec())
            .group(GroupDim::UpdateType);
        assert_spatial_matches_naive("sp3", q);
    }

    #[test]
    fn viewport_with_filters_and_month_grouping_matches_naive() {
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-15"), d("2021-03-31")))
            .within(BBox::new(0, 1000, 4000, 2999))
            .countries(vec![CountryId(0), CountryId(2)])
            .group(GroupDim::Date(Granularity::Month))
            .group(GroupDim::ElementType);
        assert_spatial_matches_naive("sp4", q);
    }

    #[test]
    fn bbox_without_spatial_context_errors() {
        let records = spatial_dataset();
        let (_dir, idx) = build_index("sp-noctx", &records);
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .within(BBox::new(0, 0, 4000, 4000));
        assert!(matches!(
            QueryEngine::new(&idx).execute(&q),
            Err(QueryError::NoSpatialContext)
        ));
    }

    #[test]
    fn banked_viewport_uses_blocks_and_confines_reads_to_owning_bands() {
        let records = spatial_dataset();
        let (_dir, idx, wh, bank) = build_spatial("sp-conf", &records);
        // Whole column 1, aligned: interior cells all route to band 1.
        let b = sgrid().cell_bbox(cell(0, 1)).unwrap().union(&sgrid().cell_bbox(cell(3, 1)).unwrap());
        let before: Vec<u64> =
            bank.stores().iter().map(|s| s.file().stats().snapshot().reads).collect();
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31"))).within(b);
        let got = QueryEngine::new(&idx)
            .with_spatial(SpatialExec::banked(&wh, &bank))
            .execute(&q)
            .unwrap();
        assert!(
            got.stats.blocks_from_disk + got.stats.blocks_from_cache > 0,
            "aligned viewport must be served from blocks, got {:?}",
            got.stats
        );
        // Full months in range: month roll-ups beat 90 day blocks.
        assert!(
            got.stats.blocks_from_disk + got.stats.blocks_from_cache < 90,
            "expected month roll-ups, got {:?}",
            got.stats
        );
        let after: Vec<u64> =
            bank.stores().iter().map(|s| s.file().stats().snapshot().reads).collect();
        for (i, (b0, b1)) in before.iter().zip(after.iter()).enumerate() {
            if i == 1 {
                assert!(b1 > b0, "owning band must be read");
            } else {
                assert_eq!(b1, b0, "band {i} read outside the viewport's column");
            }
        }
    }

    #[test]
    fn marked_empty_cell_days_need_no_scan() {
        // Every day reached the bank, so a (cell, day) without a block is
        // provably empty: an aligned viewport must be answered from blocks
        // alone, with the empty holes skipped rather than scanned.
        let records = spatial_dataset();
        let (_dir, idx, wh, bank) = build_spatial("sp-marked", &records);
        let b = sgrid().cell_bbox(cell(1, 1)).unwrap().union(&sgrid().cell_bbox(cell(2, 2)).unwrap());
        // Ragged end: March 1–20 is below month granularity, so the plan
        // descends to day blocks there — where the holes live.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-20"))).within(b);
        let got = QueryEngine::new(&idx)
            .with_spatial(SpatialExec::banked(&wh, &bank))
            .execute(&q)
            .unwrap();
        assert_eq!(got.stats.scan_days, 0, "marked days must not scan: {:?}", got.stats);
        assert_eq!(got.stats.scan_rows, 0);
        assert!(got.stats.empty_days > 0, "the sparse dataset has empty cell-days");
        assert_eq!(got.rows, naive_execute(&records, &q, None).rows);
    }

    #[test]
    fn unpublished_days_fall_back_to_warehouse_scans() {
        // The bank never saw February: its days are unmarked, so the
        // planner must scan them from the warehouse — and the merged rows
        // must still match the oracle exactly.
        let records = spatial_dataset();
        let dir = TempDir::new("query-sp-gap");
        let schema = CubeSchema::tiny();
        let idx = TemporalIndex::create(
            &dir.path().join("index"),
            schema,
            4,
            CacheConfig::disabled(),
            IoCostModel::free(),
        )
        .unwrap();
        let wh = Warehouse::create(&dir.path().join("wh"), IoCostModel::free(), 64).unwrap();
        let bank =
            SpatialBank::create(&dir.path().join("bank"), 4, sgrid(), schema, IoCostModel::free(), 64)
                .unwrap();
        let mut by_day: std::collections::BTreeMap<Date, Vec<UpdateRecord>> = Default::default();
        for r in &records {
            by_day.entry(r.date).or_default().push(*r);
        }
        for (day, recs) in &by_day {
            let cube = DataCube::from_records(schema, recs.iter()).unwrap();
            idx.ingest_day(*day, &cube).unwrap();
            for r in recs {
                wh.insert(r).unwrap();
            }
            if day.month() != 2 {
                bank.publish_day(*day, recs).unwrap();
            }
        }
        wh.flush().unwrap();

        let b = sgrid().cell_bbox(cell(1, 1)).unwrap().union(&sgrid().cell_bbox(cell(2, 2)).unwrap());
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31"))).within(b);
        let got = QueryEngine::new(&idx)
            .with_spatial(SpatialExec::banked(&wh, &bank))
            .execute(&q)
            .unwrap();
        assert!(got.stats.scan_days > 0, "unmarked days must scan: {:?}", got.stats);
        assert!(got.stats.scan_rows > 0);
        assert_eq!(got.rows, naive_execute(&records, &q, None).rows);
    }

    #[test]
    fn scan_only_ablation_reports_scan_rows_and_no_blocks() {
        let records = spatial_dataset();
        let (_dir, idx, wh, _bank) = build_spatial("sp-abl", &records);
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .within(BBox::new(500, 500, 3500, 3500));
        let got = QueryEngine::new(&idx)
            .with_spatial(SpatialExec::scan_only(&wh))
            .execute(&q)
            .unwrap();
        assert!(got.stats.scan_rows > 0);
        assert_eq!(got.stats.blocks_from_disk, 0);
        assert_eq!(got.stats.blocks_from_cache, 0);
    }

    #[test]
    fn country_filter_touches_only_owning_shards() {
        let records = dataset();
        let n = 4;
        let (_dir, sharded) = build_sharded("route", &records, n);
        let target = CountryId(1);
        let owner = rased_index::shard_for(target, n);
        let before: Vec<u64> =
            (0..n).map(|i| sharded.shard(i).unwrap().file().stats().snapshot().reads).collect();
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .countries(vec![target]);
        let res = QueryEngine::over_shards(&sharded).execute(&q).unwrap();
        assert!(!res.rows.is_empty());
        for i in 0..n {
            let delta =
                sharded.shard(i).unwrap().file().stats().snapshot().reads - before[i];
            if i == owner {
                assert!(delta > 0, "owning shard must be read");
            } else {
                assert_eq!(delta, 0, "shard {i} must not be touched by a pushed-down filter");
            }
        }
    }

    #[test]
    fn greedy_planner_gives_same_answers() {
        let records = dataset();
        let (_dir, idx) = build_index("e11", &records);
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-03"), d("2021-03-20")))
            .group(GroupDim::Country);
        let dp = QueryEngine::new(&idx).execute(&q).unwrap();
        let greedy = QueryEngine::new(&idx).with_planner(PlannerKind::Greedy).execute(&q).unwrap();
        assert_eq!(dp.rows, greedy.rows, "planners must agree on answers");
    }
}
