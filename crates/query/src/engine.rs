//! [`QueryEngine`]: cube-based execution with level optimization + caching.
//!
//! Execution has two phases. *Planning* walks the date range and picks the
//! coarsest materialized cubes (§VII-B); it is pure metadata work. *Fetch +
//! aggregate* retrieves each planned cube and folds its selected cells into
//! a `GroupKey → count` map. The second phase is embarrassingly parallel —
//! cubes are disjoint and counts are commutative — so with
//! [`QueryEngine::with_threads`] the planned cubes are strided across a
//! bounded `thread::scope` worker pool, each worker aggregating into a
//! private map; the maps are merged (order-independent addition) and rows
//! sorted, making results byte-identical to the sequential path at any
//! thread count.

use crate::model::{
    AnalysisQuery, GroupDim, GroupKey, NetworkSizes, QueryResult, QueryStats, ResultRow, ValueMode,
};
use rased_cube::DimSelection;
use rased_index::{
    shard_for, CatalogVersion, CubeSource, FetchOutcome, IndexError, LevelPlanner, PlannerKind,
    QueryPlan, ShardedIndex, TemporalIndex,
};
use rased_osm_model::{CountryId, ElementType, RoadTypeId, UpdateType};
use rased_storage::sync::Mutex;
use rased_storage::IoSnapshot;
use rased_temporal::{DateRange, Period};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Query execution error.
#[derive(Debug)]
pub enum QueryError {
    Index(IndexError),
    /// The plan referenced a cube that vanished between planning and fetch.
    PlanRace(Period),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Index(e) => write!(f, "{e}"),
            QueryError::PlanRace(p) => write!(f, "cube {p} disappeared during execution"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<IndexError> for QueryError {
    fn from(e: IndexError) -> Self {
        QueryError::Index(e)
    }
}

/// The cube-based query engine.
///
/// Over a single [`TemporalIndex`] ([`QueryEngine::new`]) this is the
/// classic engine. Over a [`ShardedIndex`] ([`QueryEngine::over_shards`])
/// it becomes a scatter-gather executor: each shard is planned against its
/// own pinned catalog snapshot, country filters are pushed down so only
/// the owning shards are routed at all, and per-shard partial aggregates
/// merge by the same commutative addition the thread pool already uses —
/// rows stay byte-identical at any shard count × thread count.
pub struct QueryEngine<'a> {
    stores: Vec<&'a TemporalIndex>,
    planner: PlannerKind,
    sizes: Option<NetworkSizes>,
    threads: usize,
}

impl<'a> QueryEngine<'a> {
    /// An engine over `index` using the exact DP planner, sequential.
    pub fn new(index: &'a TemporalIndex) -> QueryEngine<'a> {
        QueryEngine { stores: vec![index], planner: PlannerKind::ExactDp, sizes: None, threads: 1 }
    }

    /// A scatter-gather engine over every shard of `index`. Country-
    /// filtered queries route to the owning shards only (the filter ids
    /// and the ingest split share [`shard_for`], so the pushdown is
    /// exact); unfiltered queries fan out across all shards.
    pub fn over_shards(index: &'a ShardedIndex) -> QueryEngine<'a> {
        QueryEngine {
            stores: index.stores().iter().collect(),
            planner: PlannerKind::ExactDp,
            sizes: None,
            threads: 1,
        }
    }

    /// Switch planning algorithm (the greedy variant exists for ablation).
    pub fn with_planner(mut self, kind: PlannerKind) -> Self {
        self.planner = kind;
        self
    }

    /// Provide per-country network sizes for percentage queries. Owned (a
    /// point-in-time copy): the live system recounts sizes during ingest,
    /// and a query must not observe them shifting mid-execution.
    pub fn with_network_sizes(mut self, sizes: NetworkSizes) -> Self {
        self.sizes = Some(sizes);
        self
    }

    /// Partition each query's fetch + aggregate work over `n` worker
    /// threads (clamped to at least 1; 1 keeps execution on the calling
    /// thread). Results are byte-identical at any setting.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// The stores a query must visit: country filters route to owning
    /// shards only (predicate pushdown), everything else fans out. With a
    /// single store this is always just that store.
    fn route(&self, q: &AnalysisQuery) -> Vec<&'a TemporalIndex> {
        let n = self.stores.len();
        if n <= 1 {
            return self.stores.clone();
        }
        let Some(countries) = &q.countries else { return self.stores.clone() };
        let mut wanted = vec![false; n];
        for c in countries {
            if let Some(w) = wanted.get_mut(shard_for(*c, n)) {
                *w = true;
            }
        }
        self.stores.iter().zip(wanted).filter_map(|(s, hit)| hit.then_some(*s)).collect()
    }

    /// Execute an analysis query.
    pub fn execute(&self, q: &AnalysisQuery) -> Result<QueryResult, QueryError> {
        let start = Instant::now();

        // Scatter: route to the stores this query can touch at all, then
        // pin one catalog snapshot per routed store for the whole plan +
        // execute. Concurrent publishes swap in new versions but never
        // mutate a pinned one, so each store contributes one consistent
        // state — never a half-published unit or a blend of two epochs.
        let routed: Vec<(&'a TemporalIndex, Arc<CatalogVersion>)> =
            self.route(q).into_iter().map(|s| (s, s.snapshot())).collect();
        let io_before: Vec<IoSnapshot> =
            routed.iter().map(|(s, _)| s.file().stats().snapshot()).collect();
        let selection = self.selection(q);
        let mut stats = QueryStats {
            // The composite epoch of everything pinned: with one store
            // this is exactly its snapshot epoch; sharded, it is the sum
            // over routed shards (each term individually monotonic).
            epoch: routed.iter().map(|(_, snap)| snap.epoch()).sum(),
            ..QueryStats::default()
        };

        // A filter that selects no cell (e.g. only out-of-schema ids) can
        // never match; skip planning and cube fetches entirely.
        if selection.is_empty() {
            stats.wall = start.elapsed();
            return Ok(QueryResult { rows: Vec::new(), stats });
        }

        // Phase 1 (planning, pure metadata): collect every cube to fetch,
        // tagged with its store slot and the date group it lands in. Each
        // store plans against its own catalog + cache state. Empty days
        // are settled here so the worker phase only sees real fetches.
        let mut items: Vec<(usize, Option<Period>, Period)> = Vec::new();
        for (slot, (store, snap)) in routed.iter().enumerate() {
            match q.date_granularity() {
                None => {
                    self.collect_plan(store, snap, q.range, None, slot, &mut items, &mut stats);
                }
                Some(g) => {
                    // Date grouping: evaluate each period of granularity
                    // `g` that intersects the range on its clipped
                    // sub-range, so partial periods at the edges only
                    // count in-range days.
                    let mut p = Period::containing(g, q.range.start());
                    while p.start() <= q.range.end() {
                        // The loop condition keeps p overlapping q.range,
                        // but a typed break beats a panic if Period
                        // arithmetic drifts.
                        let Some(sub) = p.range().intersect(q.range) else { break };
                        self.collect_plan(store, snap, sub, Some(p), slot, &mut items, &mut stats);
                        p = p.succ();
                    }
                }
            }
        }

        // Phase 2 (gather: fetch + aggregate): sequential inline, or
        // strided over the worker pool — cross-shard fan-out and
        // intra-shard parallelism share the same pool. Merging is
        // commutative addition, so the final map is identical either way.
        let groups = if self.threads <= 1 || items.len() <= 1 {
            self.run_sequential(&routed, &items, &selection, q, &mut stats)?
        } else {
            self.run_parallel(&routed, &items, &selection, q, &mut stats)?
        };

        let grand_total: u64 = groups.values().sum();
        let mut rows: Vec<ResultRow> = groups
            .into_iter()
            .map(|(key, count)| ResultRow {
                key,
                count,
                value: match q.value {
                    ValueMode::Count => count as f64,
                    ValueMode::Percentage => {
                        percentage_value(count, &key, self.sizes.as_ref(), grand_total)
                    }
                },
            })
            .collect();
        rows.sort_by_key(|r| r.key);

        for ((store, _), before) in routed.iter().zip(io_before.iter()) {
            let delta = store.file().stats().snapshot().since(before);
            stats.io.reads += delta.reads;
            stats.io.writes += delta.writes;
            stats.io.bytes_read += delta.bytes_read;
            stats.io.bytes_written += delta.bytes_written;
            stats.io.modeled = stats.io.modeled.saturating_add(delta.modeled);
        }
        stats.wall = start.elapsed();
        Ok(QueryResult { rows, stats })
    }

    fn plan(&self, store: &TemporalIndex, snap: &CatalogVersion, range: DateRange) -> QueryPlan {
        let exists = |p: Period| snap.contains(p);
        let cached = |p: Period| store.cache().contains(p);
        let planner = LevelPlanner::new(store.levels(), &exists, &cached);
        planner.plan(range, self.planner)
    }

    fn selection(&self, q: &AnalysisQuery) -> DimSelection {
        let Some(first) = self.stores.first() else {
            return DimSelection::all(rased_cube::CubeSchema::tiny()).with_countries(&[]);
        };
        let mut sel = DimSelection::all(first.schema());
        if let Some(f) = &q.element_types {
            sel = sel.with_element_types(f);
        }
        if let Some(f) = &q.countries {
            sel = sel.with_countries(f);
        }
        if let Some(f) = &q.road_types {
            sel = sel.with_road_types(f);
        }
        if let Some(f) = &q.update_types {
            sel = sel.with_update_types(f);
        }
        sel
    }

    /// Plan `range` on one store and append its fetchable cubes to
    /// `items`; days the planner proves empty are settled into `stats`
    /// immediately. (Sharded, a day empty on k routed shards counts k
    /// times — `empty_days` is a per-store planning statistic.)
    #[allow(clippy::too_many_arguments)]
    fn collect_plan(
        &self,
        store: &TemporalIndex,
        snap: &CatalogVersion,
        range: DateRange,
        date_key: Option<Period>,
        slot: usize,
        items: &mut Vec<(usize, Option<Period>, Period)>,
        stats: &mut QueryStats,
    ) {
        let plan = self.plan(store, snap, range);
        for planned in &plan.cubes {
            if planned.source == CubeSource::Empty {
                stats.empty_days += 1;
            } else {
                items.push((slot, date_key, planned.period));
            }
        }
    }

    /// Fetch one planned cube from its store and fold its selected cells
    /// into `groups`.
    #[allow(clippy::too_many_arguments)]
    fn fetch_and_aggregate(
        &self,
        routed: &[(&'a TemporalIndex, Arc<CatalogVersion>)],
        slot: usize,
        period: Period,
        selection: &DimSelection,
        q: &AnalysisQuery,
        date_key: Option<Period>,
        groups: &mut HashMap<GroupKey, u64>,
    ) -> Result<FetchOutcome, QueryError> {
        // `slot` indexes `routed` by construction; a typed error beats a
        // panic if that invariant ever drifts.
        let (store, snap) = routed.get(slot).ok_or(QueryError::PlanRace(period))?;
        let (cube, outcome) =
            store.fetch_at(snap, period)?.ok_or(QueryError::PlanRace(period))?;
        cube.for_each_selected(selection, |et, c, r, u, v| {
            let mut key = GroupKey { date: date_key, ..GroupKey::default() };
            for dim in &q.group_by {
                match dim {
                    GroupDim::ElementType => {
                        key.element_type = ElementType::from_index(et);
                    }
                    GroupDim::Country => key.country = Some(CountryId(c as u16)),
                    GroupDim::RoadType => key.road_type = Some(RoadTypeId(r as u16)),
                    GroupDim::UpdateType => {
                        key.update_type = UpdateType::from_index(u);
                    }
                    GroupDim::Date(_) => {} // already in date_key
                }
            }
            *groups.entry(key).or_insert(0) += v;
        });
        Ok(outcome)
    }

    /// Sequential phase 2: one pass over the items on the calling thread.
    fn run_sequential(
        &self,
        routed: &[(&'a TemporalIndex, Arc<CatalogVersion>)],
        items: &[(usize, Option<Period>, Period)],
        selection: &DimSelection,
        q: &AnalysisQuery,
        stats: &mut QueryStats,
    ) -> Result<HashMap<GroupKey, u64>, QueryError> {
        let mut groups = HashMap::new();
        for (slot, date_key, period) in items {
            match self
                .fetch_and_aggregate(routed, *slot, *period, selection, q, *date_key, &mut groups)?
            {
                FetchOutcome::Cache => stats.cubes_from_cache += 1,
                FetchOutcome::Disk => stats.cubes_from_disk += 1,
            }
        }
        stats.io_critical = self.unit_io_cost() * stats.cubes_from_disk as u32;
        Ok(groups)
    }

    /// Parallel phase 2: stride-partition the items over a bounded
    /// `thread::scope` pool. Each worker aggregates into a private map;
    /// workers' maps merge by commutative addition, so the result equals
    /// the sequential map regardless of scheduling.
    fn run_parallel(
        &self,
        routed: &[(&'a TemporalIndex, Arc<CatalogVersion>)],
        items: &[(usize, Option<Period>, Period)],
        selection: &DimSelection,
        q: &AnalysisQuery,
        stats: &mut QueryStats,
    ) -> Result<HashMap<GroupKey, u64>, QueryError> {
        type WorkerOut = Result<(HashMap<GroupKey, u64>, usize, usize), QueryError>;
        let workers = self.threads.min(items.len());
        let merged: Mutex<Vec<(usize, WorkerOut)>> =
            Mutex::new_named(Vec::with_capacity(workers), "query.exec_merge");
        std::thread::scope(|scope| {
            for w in 0..workers {
                let merged = &merged;
                scope.spawn(move || {
                    let mut groups: HashMap<GroupKey, u64> = HashMap::new();
                    let (mut from_cache, mut from_disk) = (0usize, 0usize);
                    let mut verdict: Result<(), QueryError> = Ok(());
                    for (slot, date_key, period) in items.iter().skip(w).step_by(workers) {
                        match self.fetch_and_aggregate(
                            routed, *slot, *period, selection, q, *date_key, &mut groups,
                        ) {
                            Ok(FetchOutcome::Cache) => from_cache += 1,
                            Ok(FetchOutcome::Disk) => from_disk += 1,
                            Err(e) => {
                                verdict = Err(e);
                                break;
                            }
                        }
                    }
                    merged.lock().push((w, verdict.map(|()| (groups, from_cache, from_disk))));
                });
            }
        });
        let mut outputs = std::mem::take(&mut *merged.lock());
        // Deterministic error selection: lowest worker index wins.
        outputs.sort_by_key(|(w, _)| *w);
        let mut groups: HashMap<GroupKey, u64> = HashMap::new();
        let mut critical_fetches = 0usize;
        for (_w, out) in outputs {
            let (worker_groups, from_cache, from_disk) = out?;
            stats.cubes_from_cache += from_cache;
            stats.cubes_from_disk += from_disk;
            critical_fetches = critical_fetches.max(from_disk);
            for (key, count) in worker_groups {
                *groups.entry(key).or_insert(0) += count;
            }
        }
        stats.io_critical = self.unit_io_cost() * critical_fetches as u32;
        Ok(groups)
    }

    /// The modeled cost of one cube-page read — the unit `io_critical` is
    /// denominated in. Shards share one cost model + page size, so the
    /// first store's is representative.
    fn unit_io_cost(&self) -> std::time::Duration {
        match self.stores.first() {
            Some(store) => {
                let file = store.file();
                file.cost_model().cost(file.page_size() as u64)
            }
            None => std::time::Duration::ZERO,
        }
    }
}

/// Percentage semantics shared by engine and oracle: per-country network
/// size when the row has a country and sizes are known; otherwise percent
/// of the query's grand total.
pub(crate) fn percentage_value(
    count: u64,
    key: &GroupKey,
    sizes: Option<&NetworkSizes>,
    grand_total: u64,
) -> f64 {
    let denom = match (key.country, sizes) {
        (Some(c), Some(s)) => {
            let n = s.get(c);
            if n > 0 {
                n
            } else {
                grand_total
            }
        }
        _ => grand_total,
    };
    if denom == 0 {
        0.0
    } else {
        count as f64 * 100.0 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_execute;
    use dettest::TempDir;
    use rased_cube::{CubeSchema, DataCube};
    use rased_index::CacheConfig;
    use rased_osm_model::{ChangesetId, UpdateRecord};
    use rased_storage::IoCostModel;
    use rased_temporal::Granularity;
    use rased_temporal::Date;

    fn d(s: &str) -> Date {
        s.parse().unwrap()
    }

    /// Deterministic pseudo-random records over 90 days.
    fn dataset() -> Vec<UpdateRecord> {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut out = Vec::new();
        for day in 0..90 {
            let date = d("2021-01-01").add_days(day);
            for _ in 0..(5 + (next() % 20)) {
                out.push(UpdateRecord {
                    element_type: ElementType::ALL[(next() % 3) as usize],
                    update_type: UpdateType::ALL[(next() % 5) as usize],
                    country: CountryId((next() % 4) as u16),
                    road_type: RoadTypeId((next() % 3) as u16),
                    date,
                    lat7: 0,
                    lon7: 0,
                    changeset: ChangesetId(next()),
                });
            }
        }
        out
    }

    /// Ingest `records` into a fresh index, one daily cube per day. The
    /// returned [`TempDir`] must outlive the index (the catalog sidecar
    /// lives inside it).
    fn build_index(tag: &str, records: &[UpdateRecord]) -> (TempDir, TemporalIndex) {
        let dir = TempDir::new(&format!("query-{tag}"));
        let schema = CubeSchema::tiny();
        let idx = TemporalIndex::create(
            dir.path(),
            schema,
            4,
            CacheConfig::disabled(),
            IoCostModel::free(),
        )
        .unwrap();
        let mut by_day: HashMap<Date, Vec<&UpdateRecord>> = HashMap::new();
        for r in records {
            by_day.entry(r.date).or_default().push(r);
        }
        let mut days: Vec<_> = by_day.keys().copied().collect();
        days.sort();
        for day in days {
            let cube = DataCube::from_records(schema, by_day[&day].iter().copied()).unwrap();
            idx.ingest_day(day, &cube).unwrap();
        }
        (dir, idx)
    }

    fn assert_matches_naive(tag: &str, q: AnalysisQuery) {
        let records = dataset();
        let (_dir, idx) = build_index(tag, &records);
        let engine = QueryEngine::new(&idx);
        let got = engine.execute(&q).unwrap();
        let want = naive_execute(&records, &q, None);
        assert_eq!(got.rows, want.rows, "query {q:?}");
        // The parallel executor must agree byte-for-byte at any width.
        for threads in [2, 4, 7] {
            let par = QueryEngine::new(&idx).with_threads(threads).execute(&q).unwrap();
            assert_eq!(par.rows, got.rows, "threads={threads} diverged for {q:?}");
        }
    }

    #[test]
    fn ungrouped_count_matches_naive() {
        assert_matches_naive("e1", AnalysisQuery::over(DateRange::new(d("2021-01-05"), d("2021-02-20"))));
    }

    #[test]
    fn filters_match_naive() {
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .elements(vec![ElementType::Way, ElementType::Relation])
            .countries(vec![CountryId(0), CountryId(2)])
            .roads(vec![RoadTypeId(1)])
            .updates(UpdateType::NEW_OR_UPDATE.to_vec());
        assert_matches_naive("e2", q);
    }

    #[test]
    fn group_by_country_and_element_matches_naive() {
        // The paper's Example 1 shape.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .updates(UpdateType::NEW_OR_UPDATE.to_vec())
            .group(GroupDim::Country)
            .group(GroupDim::ElementType);
        assert_matches_naive("e3", q);
    }

    #[test]
    fn group_by_date_daily_matches_naive() {
        // The paper's Example 3 shape (time series).
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-15"), d("2021-02-15")))
            .countries(vec![CountryId(1), CountryId(3)])
            .group(GroupDim::Country)
            .group(GroupDim::Date(Granularity::Day));
        assert_matches_naive("e4", q);
    }

    #[test]
    fn group_by_week_with_partial_edges_matches_naive() {
        // Range deliberately cuts weeks on both ends.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-06"), d("2021-02-17")))
            .group(GroupDim::Date(Granularity::Week));
        assert_matches_naive("e5", q);
    }

    #[test]
    fn group_by_month_matches_naive() {
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .group(GroupDim::Date(Granularity::Month))
            .group(GroupDim::UpdateType);
        assert_matches_naive("e6", q);
    }

    #[test]
    fn all_dims_grouped_matches_naive() {
        let q = AnalysisQuery::over(DateRange::new(d("2021-02-01"), d("2021-02-28")))
            .group(GroupDim::Country)
            .group(GroupDim::ElementType)
            .group(GroupDim::RoadType)
            .group(GroupDim::UpdateType)
            .group(GroupDim::Date(Granularity::Day));
        assert_matches_naive("e7", q);
    }

    #[test]
    fn percentage_with_sizes_matches_naive() {
        let records = dataset();
        let (_dir, idx) = build_index("e8", &records);
        let sizes = NetworkSizes::new(vec![1000, 2000, 4000, 8000]);
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .group(GroupDim::Country)
            .percentage();
        let engine = QueryEngine::new(&idx).with_network_sizes(sizes.clone());
        let got = engine.execute(&q).unwrap();
        let want = naive_execute(&records, &q, Some(&sizes));
        assert_eq!(got.rows, want.rows);
        // Spot check one percentage.
        let row = got.rows.iter().find(|r| r.key.country == Some(CountryId(1))).unwrap();
        assert!((row.value - row.count as f64 * 100.0 / 2000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_range_before_data_returns_no_rows() {
        let records = dataset();
        let (_dir, idx) = build_index("e9", &records);
        let q = AnalysisQuery::over(DateRange::new(d("2019-01-01"), d("2019-12-31")));
        let got = QueryEngine::new(&idx).execute(&q).unwrap();
        assert!(got.rows.is_empty());
        assert_eq!(got.stats.cubes_from_disk, 0);
        assert_eq!(got.stats.empty_days, 365);
    }

    #[test]
    fn stats_count_disk_cubes() {
        let records = dataset();
        let (_dir, idx) = build_index("e10", &records);
        // Full 90-day window with a 4-level index rolled up: far fewer than
        // 90 cubes should be touched.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")));
        let got = QueryEngine::new(&idx).execute(&q).unwrap();
        let touched = got.stats.cubes_from_disk + got.stats.cubes_from_cache;
        assert!(touched < 90, "level optimizer should use coarse cubes, touched {touched}");
        assert!(got.stats.io.reads as usize >= got.stats.cubes_from_disk);
    }

    #[test]
    fn empty_selection_short_circuits() {
        let records = dataset();
        let (_dir, idx) = build_index("e12", &records);
        // Country 99 is outside the tiny schema: nothing can match.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .countries(vec![CountryId(99)]);
        let got = QueryEngine::new(&idx).execute(&q).unwrap();
        assert!(got.rows.is_empty());
        assert_eq!(got.stats.cubes_from_disk, 0, "no cube may be fetched");
        assert_eq!(got.stats.cubes_from_cache, 0);
        assert_eq!(got.stats.io.reads, 0);
        // Same answer as the oracle.
        assert_eq!(naive_execute(&records, &q, None).rows, got.rows);
    }

    /// Ingest `records` into a fresh `n`-way sharded index, one full daily
    /// cube per day (the facade splits internally).
    fn build_sharded(tag: &str, records: &[UpdateRecord], n: usize) -> (TempDir, ShardedIndex) {
        let dir = TempDir::new(&format!("query-{tag}-{n}"));
        let schema = CubeSchema::tiny();
        let idx = ShardedIndex::create(
            dir.path(),
            n,
            schema,
            4,
            CacheConfig::disabled(),
            IoCostModel::free(),
        )
        .unwrap();
        let mut by_day: HashMap<Date, Vec<&UpdateRecord>> = HashMap::new();
        for r in records {
            by_day.entry(r.date).or_default().push(r);
        }
        let mut days: Vec<_> = by_day.keys().copied().collect();
        days.sort();
        for day in days {
            let cube = DataCube::from_records(schema, by_day[&day].iter().copied()).unwrap();
            idx.ingest_day(day, &cube).unwrap();
        }
        (dir, idx)
    }

    #[test]
    fn scatter_gather_matches_single_store_at_every_count() {
        let records = dataset();
        let (_dir, single) = build_index("sg-base", &records);
        let queries = [
            AnalysisQuery::over(DateRange::new(d("2021-01-05"), d("2021-03-20")))
                .group(GroupDim::Country)
                .group(GroupDim::UpdateType),
            AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
                .countries(vec![CountryId(1), CountryId(2)])
                .group(GroupDim::Date(Granularity::Week)),
        ];
        for q in &queries {
            let want = QueryEngine::new(&single).execute(q).unwrap().rows;
            for n in [1usize, 2, 4, 7] {
                let (_sdir, sharded) = build_sharded("sg", &records, n);
                for threads in [1usize, 3] {
                    let got = QueryEngine::over_shards(&sharded)
                        .with_threads(threads)
                        .execute(q)
                        .unwrap();
                    assert_eq!(
                        got.rows, want,
                        "rows diverge at shards={n} threads={threads} for {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn country_filter_touches_only_owning_shards() {
        let records = dataset();
        let n = 4;
        let (_dir, sharded) = build_sharded("route", &records, n);
        let target = CountryId(1);
        let owner = rased_index::shard_for(target, n);
        let before: Vec<u64> =
            (0..n).map(|i| sharded.shard(i).unwrap().file().stats().snapshot().reads).collect();
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .countries(vec![target]);
        let res = QueryEngine::over_shards(&sharded).execute(&q).unwrap();
        assert!(!res.rows.is_empty());
        for i in 0..n {
            let delta =
                sharded.shard(i).unwrap().file().stats().snapshot().reads - before[i];
            if i == owner {
                assert!(delta > 0, "owning shard must be read");
            } else {
                assert_eq!(delta, 0, "shard {i} must not be touched by a pushed-down filter");
            }
        }
    }

    #[test]
    fn greedy_planner_gives_same_answers() {
        let records = dataset();
        let (_dir, idx) = build_index("e11", &records);
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-03"), d("2021-03-20")))
            .group(GroupDim::Country);
        let dp = QueryEngine::new(&idx).execute(&q).unwrap();
        let greedy = QueryEngine::new(&idx).with_planner(PlannerKind::Greedy).execute(&q).unwrap();
        assert_eq!(dp.rows, greedy.rows, "planners must agree on answers");
    }
}
