//! [`QueryEngine`]: cube-based execution with level optimization + caching.

use crate::model::{
    AnalysisQuery, GroupDim, GroupKey, NetworkSizes, QueryResult, QueryStats, ResultRow, ValueMode,
};
use rased_cube::DimSelection;
use rased_index::{CubeSource, FetchOutcome, IndexError, LevelPlanner, PlannerKind, QueryPlan, TemporalIndex};
use rased_osm_model::{CountryId, ElementType, RoadTypeId, UpdateType};
use rased_temporal::{DateRange, Period};
use std::collections::HashMap;
use std::time::Instant;

/// Query execution error.
#[derive(Debug)]
pub enum QueryError {
    Index(IndexError),
    /// The plan referenced a cube that vanished between planning and fetch.
    PlanRace(Period),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Index(e) => write!(f, "{e}"),
            QueryError::PlanRace(p) => write!(f, "cube {p} disappeared during execution"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<IndexError> for QueryError {
    fn from(e: IndexError) -> Self {
        QueryError::Index(e)
    }
}

/// The cube-based query engine.
pub struct QueryEngine<'a> {
    index: &'a TemporalIndex,
    planner: PlannerKind,
    sizes: Option<&'a NetworkSizes>,
}

impl<'a> QueryEngine<'a> {
    /// An engine over `index` using the exact DP planner.
    pub fn new(index: &'a TemporalIndex) -> QueryEngine<'a> {
        QueryEngine { index, planner: PlannerKind::ExactDp, sizes: None }
    }

    /// Switch planning algorithm (the greedy variant exists for ablation).
    pub fn with_planner(mut self, kind: PlannerKind) -> Self {
        self.planner = kind;
        self
    }

    /// Provide per-country network sizes for percentage queries.
    pub fn with_network_sizes(mut self, sizes: &'a NetworkSizes) -> Self {
        self.sizes = Some(sizes);
        self
    }

    /// Execute an analysis query.
    pub fn execute(&self, q: &AnalysisQuery) -> Result<QueryResult, QueryError> {
        let start = Instant::now();
        let io_before = self.index.file().stats().snapshot();

        let selection = self.selection(q);
        let mut stats = QueryStats::default();
        let mut groups: HashMap<GroupKey, u64> = HashMap::new();

        // A filter that selects no cell (e.g. only out-of-schema ids) can
        // never match; skip planning and cube fetches entirely.
        if selection.is_empty() {
            stats.wall = start.elapsed();
            return Ok(QueryResult { rows: Vec::new(), stats });
        }

        match q.date_granularity() {
            None => {
                let plan = self.plan(q.range);
                self.aggregate_plan(&plan, &selection, q, None, &mut groups, &mut stats)?;
            }
            Some(g) => {
                // Date grouping: evaluate each period of granularity `g`
                // that intersects the range on its clipped sub-range, so
                // partial periods at the edges only count in-range days.
                let mut p = Period::containing(g, q.range.start());
                while p.start() <= q.range.end() {
                    // The loop condition keeps p overlapping q.range, but a
                    // typed break beats a panic if Period arithmetic drifts.
                    let Some(sub) = p.range().intersect(q.range) else { break };
                    let plan = self.plan(sub);
                    self.aggregate_plan(&plan, &selection, q, Some(p), &mut groups, &mut stats)?;
                    p = p.succ();
                }
            }
        }

        let grand_total: u64 = groups.values().sum();
        let mut rows: Vec<ResultRow> = groups
            .into_iter()
            .map(|(key, count)| ResultRow {
                key,
                count,
                value: match q.value {
                    ValueMode::Count => count as f64,
                    ValueMode::Percentage => percentage_value(count, &key, self.sizes, grand_total),
                },
            })
            .collect();
        rows.sort_by_key(|r| r.key);

        stats.io = self.index.file().stats().snapshot().since(&io_before);
        stats.wall = start.elapsed();
        Ok(QueryResult { rows, stats })
    }

    fn plan(&self, range: DateRange) -> QueryPlan {
        let exists = |p: Period| self.index.has(p);
        let cached = |p: Period| self.index.cache().contains(p);
        let planner = LevelPlanner::new(self.index.levels(), &exists, &cached);
        planner.plan(range, self.planner)
    }

    fn selection(&self, q: &AnalysisQuery) -> DimSelection {
        let mut sel = DimSelection::all(self.index.schema());
        if let Some(f) = &q.element_types {
            sel = sel.with_element_types(f);
        }
        if let Some(f) = &q.countries {
            sel = sel.with_countries(f);
        }
        if let Some(f) = &q.road_types {
            sel = sel.with_road_types(f);
        }
        if let Some(f) = &q.update_types {
            sel = sel.with_update_types(f);
        }
        sel
    }

    fn aggregate_plan(
        &self,
        plan: &QueryPlan,
        selection: &DimSelection,
        q: &AnalysisQuery,
        date_key: Option<Period>,
        groups: &mut HashMap<GroupKey, u64>,
        stats: &mut QueryStats,
    ) -> Result<(), QueryError> {
        for planned in &plan.cubes {
            if planned.source == CubeSource::Empty {
                stats.empty_days += 1;
                continue;
            }
            let (cube, outcome) = self
                .index
                .fetch(planned.period)?
                .ok_or(QueryError::PlanRace(planned.period))?;
            match outcome {
                FetchOutcome::Cache => stats.cubes_from_cache += 1,
                FetchOutcome::Disk => stats.cubes_from_disk += 1,
            }
            // Phase 2: in-memory aggregation within the cube.
            cube.for_each_selected(selection, |et, c, r, u, v| {
                let mut key = GroupKey { date: date_key, ..GroupKey::default() };
                if date_key.is_none() {
                    key.date = None;
                }
                for dim in &q.group_by {
                    match dim {
                        GroupDim::ElementType => {
                            key.element_type = ElementType::from_index(et);
                        }
                        GroupDim::Country => key.country = Some(CountryId(c as u16)),
                        GroupDim::RoadType => key.road_type = Some(RoadTypeId(r as u16)),
                        GroupDim::UpdateType => {
                            key.update_type = UpdateType::from_index(u);
                        }
                        GroupDim::Date(_) => {} // already in date_key
                    }
                }
                *groups.entry(key).or_insert(0) += v;
            });
        }
        Ok(())
    }
}

/// Percentage semantics shared by engine and oracle: per-country network
/// size when the row has a country and sizes are known; otherwise percent
/// of the query's grand total.
pub(crate) fn percentage_value(
    count: u64,
    key: &GroupKey,
    sizes: Option<&NetworkSizes>,
    grand_total: u64,
) -> f64 {
    let denom = match (key.country, sizes) {
        (Some(c), Some(s)) => {
            let n = s.get(c);
            if n > 0 {
                n
            } else {
                grand_total
            }
        }
        _ => grand_total,
    };
    if denom == 0 {
        0.0
    } else {
        count as f64 * 100.0 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_execute;
    use rased_cube::{CubeSchema, DataCube};
    use rased_index::CacheConfig;
    use rased_osm_model::{ChangesetId, UpdateRecord};
    use rased_storage::IoCostModel;
    use rased_temporal::Granularity;
    use rased_temporal::Date;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "rased-query-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn d(s: &str) -> Date {
        s.parse().unwrap()
    }

    /// Deterministic pseudo-random records over 90 days.
    fn dataset() -> Vec<UpdateRecord> {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut out = Vec::new();
        for day in 0..90 {
            let date = d("2021-01-01").add_days(day);
            for _ in 0..(5 + (next() % 20)) {
                out.push(UpdateRecord {
                    element_type: ElementType::ALL[(next() % 3) as usize],
                    update_type: UpdateType::ALL[(next() % 5) as usize],
                    country: CountryId((next() % 4) as u16),
                    road_type: RoadTypeId((next() % 3) as u16),
                    date,
                    lat7: 0,
                    lon7: 0,
                    changeset: ChangesetId(next()),
                });
            }
        }
        out
    }

    /// Ingest `records` into a fresh index, one daily cube per day.
    fn build_index(tag: &str, records: &[UpdateRecord]) -> TemporalIndex {
        let schema = CubeSchema::tiny();
        let idx = TemporalIndex::create(
            &tmpdir(tag),
            schema,
            4,
            CacheConfig::disabled(),
            IoCostModel::free(),
        )
        .unwrap();
        let mut by_day: HashMap<Date, Vec<&UpdateRecord>> = HashMap::new();
        for r in records {
            by_day.entry(r.date).or_default().push(r);
        }
        let mut days: Vec<_> = by_day.keys().copied().collect();
        days.sort();
        for day in days {
            let cube = DataCube::from_records(schema, by_day[&day].iter().copied()).unwrap();
            idx.ingest_day(day, &cube).unwrap();
        }
        idx
    }

    fn assert_matches_naive(tag: &str, q: AnalysisQuery) {
        let records = dataset();
        let idx = build_index(tag, &records);
        let engine = QueryEngine::new(&idx);
        let got = engine.execute(&q).unwrap();
        let want = naive_execute(&records, &q, None);
        assert_eq!(got.rows, want.rows, "query {q:?}");
    }

    #[test]
    fn ungrouped_count_matches_naive() {
        assert_matches_naive("e1", AnalysisQuery::over(DateRange::new(d("2021-01-05"), d("2021-02-20"))));
    }

    #[test]
    fn filters_match_naive() {
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .elements(vec![ElementType::Way, ElementType::Relation])
            .countries(vec![CountryId(0), CountryId(2)])
            .roads(vec![RoadTypeId(1)])
            .updates(UpdateType::NEW_OR_UPDATE.to_vec());
        assert_matches_naive("e2", q);
    }

    #[test]
    fn group_by_country_and_element_matches_naive() {
        // The paper's Example 1 shape.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .updates(UpdateType::NEW_OR_UPDATE.to_vec())
            .group(GroupDim::Country)
            .group(GroupDim::ElementType);
        assert_matches_naive("e3", q);
    }

    #[test]
    fn group_by_date_daily_matches_naive() {
        // The paper's Example 3 shape (time series).
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-15"), d("2021-02-15")))
            .countries(vec![CountryId(1), CountryId(3)])
            .group(GroupDim::Country)
            .group(GroupDim::Date(Granularity::Day));
        assert_matches_naive("e4", q);
    }

    #[test]
    fn group_by_week_with_partial_edges_matches_naive() {
        // Range deliberately cuts weeks on both ends.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-06"), d("2021-02-17")))
            .group(GroupDim::Date(Granularity::Week));
        assert_matches_naive("e5", q);
    }

    #[test]
    fn group_by_month_matches_naive() {
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .group(GroupDim::Date(Granularity::Month))
            .group(GroupDim::UpdateType);
        assert_matches_naive("e6", q);
    }

    #[test]
    fn all_dims_grouped_matches_naive() {
        let q = AnalysisQuery::over(DateRange::new(d("2021-02-01"), d("2021-02-28")))
            .group(GroupDim::Country)
            .group(GroupDim::ElementType)
            .group(GroupDim::RoadType)
            .group(GroupDim::UpdateType)
            .group(GroupDim::Date(Granularity::Day));
        assert_matches_naive("e7", q);
    }

    #[test]
    fn percentage_with_sizes_matches_naive() {
        let records = dataset();
        let idx = build_index("e8", &records);
        let sizes = NetworkSizes::new(vec![1000, 2000, 4000, 8000]);
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .group(GroupDim::Country)
            .percentage();
        let engine = QueryEngine::new(&idx).with_network_sizes(&sizes);
        let got = engine.execute(&q).unwrap();
        let want = naive_execute(&records, &q, Some(&sizes));
        assert_eq!(got.rows, want.rows);
        // Spot check one percentage.
        let row = got.rows.iter().find(|r| r.key.country == Some(CountryId(1))).unwrap();
        assert!((row.value - row.count as f64 * 100.0 / 2000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_range_before_data_returns_no_rows() {
        let records = dataset();
        let idx = build_index("e9", &records);
        let q = AnalysisQuery::over(DateRange::new(d("2019-01-01"), d("2019-12-31")));
        let got = QueryEngine::new(&idx).execute(&q).unwrap();
        assert!(got.rows.is_empty());
        assert_eq!(got.stats.cubes_from_disk, 0);
        assert_eq!(got.stats.empty_days, 365);
    }

    #[test]
    fn stats_count_disk_cubes() {
        let records = dataset();
        let idx = build_index("e10", &records);
        // Full 90-day window with a 4-level index rolled up: far fewer than
        // 90 cubes should be touched.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")));
        let got = QueryEngine::new(&idx).execute(&q).unwrap();
        let touched = got.stats.cubes_from_disk + got.stats.cubes_from_cache;
        assert!(touched < 90, "level optimizer should use coarse cubes, touched {touched}");
        assert!(got.stats.io.reads as usize >= got.stats.cubes_from_disk);
    }

    #[test]
    fn empty_selection_short_circuits() {
        let records = dataset();
        let idx = build_index("e12", &records);
        // Country 99 is outside the tiny schema: nothing can match.
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-01"), d("2021-03-31")))
            .countries(vec![CountryId(99)]);
        let got = QueryEngine::new(&idx).execute(&q).unwrap();
        assert!(got.rows.is_empty());
        assert_eq!(got.stats.cubes_from_disk, 0, "no cube may be fetched");
        assert_eq!(got.stats.cubes_from_cache, 0);
        assert_eq!(got.stats.io.reads, 0);
        // Same answer as the oracle.
        assert_eq!(naive_execute(&records, &q, None).rows, got.rows);
    }

    #[test]
    fn greedy_planner_gives_same_answers() {
        let records = dataset();
        let idx = build_index("e11", &records);
        let q = AnalysisQuery::over(DateRange::new(d("2021-01-03"), d("2021-03-20")))
            .group(GroupDim::Country);
        let dp = QueryEngine::new(&idx).execute(&q).unwrap();
        let greedy = QueryEngine::new(&idx).with_planner(PlannerKind::Greedy).execute(&q).unwrap();
        assert_eq!(dp.rows, greedy.rows, "planners must agree on answers");
    }
}
