//! [`ExecConfig`] — knobs for the parallel query executor.
//!
//! Lives in `rased-core` next to [`crate::ServerConfig`] for the same
//! reason: every front end (CLI `query`, dashboard `serve`, tests, the
//! bench harness) should share one vocabulary for "how parallel may a
//! single query be".

/// Configuration for query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads one query's plan is partitioned over. `0` means "one
    /// per available core" (`std::thread::available_parallelism`); `1`
    /// (the default) keeps the executor sequential. Results are
    /// byte-identical at any setting — threads only change latency.
    pub threads: usize,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig { threads: 1 }
    }
}

impl ExecConfig {
    /// The effective per-query worker count: `threads`, or the machine's
    /// available parallelism (minimum 1) when `threads == 0`.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        assert_eq!(ExecConfig::default().effective_threads(), 1);
    }

    #[test]
    fn zero_resolves_to_available_parallelism() {
        let c = ExecConfig { threads: 0 };
        assert!(c.effective_threads() >= 1);
    }

    #[test]
    fn explicit_thread_count_wins() {
        assert_eq!(ExecConfig { threads: 7 }.effective_threads(), 7);
    }
}
