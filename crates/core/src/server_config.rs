//! [`ServerConfig`] — operational knobs for the dashboard serving tier.
//!
//! The paper demos RASED as a *public* dashboard; a public deployment needs
//! bounded resources and defensive request limits, not an unbounded
//! thread-per-connection loop. These knobs live in `rased-core` (rather
//! than the dashboard crate) so they ride along [`crate::RasedConfig`] and
//! every front end — CLI, tests, embedding applications — shares one
//! vocabulary.

use std::time::Duration;

/// Configuration for the HTTP serving tier.
///
/// All limits are per connection unless noted. The defaults are sized for a
/// small public deployment: a worker per core, a modest accept queue, and
/// request caps far above anything the JSON API legitimately needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads handling connections. `0` means "one per available
    /// core" (`std::thread::available_parallelism`, minimum 2).
    pub workers: usize,
    /// Accepted connections waiting for a free worker. When the queue is
    /// full new connections are rejected with `503` + `Retry-After` —
    /// backpressure instead of unbounded thread spawn.
    pub queue_depth: usize,
    /// Socket read timeout; a connection that stalls mid-request this long
    /// is answered `408` and closed (slowloris defense). Also bounds how
    /// long an idle keep-alive connection is retained.
    pub read_timeout: Duration,
    /// Socket write timeout; a client that stops draining its response this
    /// long gets its connection dropped.
    pub write_timeout: Duration,
    /// Maximum request-line length in bytes (`431` beyond).
    pub max_request_line_bytes: usize,
    /// Maximum total header bytes per request (`431` beyond).
    pub max_header_bytes: usize,
    /// Maximum request body bytes (`413` beyond).
    pub max_body_bytes: usize,
    /// Requests served over one keep-alive connection before the server
    /// closes it (bounds per-connection state lifetime).
    pub max_keep_alive_requests: usize,
    /// Value of the `Retry-After` header on `503` queue-full rejections.
    pub retry_after_secs: u32,
    /// Admission control: how many *expensive* requests (`/api/analysis`,
    /// `/api/sample`) one client may have in flight at once. Above the cap
    /// the surplus request is shed with a cheap-path `503` + `Retry-After`
    /// — per-client fair sharing, so one greedy client cannot pin every
    /// worker while others queue. `0` disables the cap.
    pub max_active_per_client: usize,
    /// Admission control: how many expensive requests may execute at once
    /// across *all* clients. Beyond it, further expensive requests are shed
    /// with a cheap-path `503` before latency collapses; cheap endpoints
    /// (`/api/metrics`, `/`, `/api/meta`, ingest status) keep being served
    /// by the remaining workers, so the system stays observable under
    /// overload. `0` disables shedding.
    pub shed_threshold: usize,
    /// Trust the `X-Forwarded-For` header as the client identity for
    /// admission control (first listed address wins). Enable only behind a
    /// proxy that sets the header — or in load harnesses simulating many
    /// users from one host. Off, clients are keyed by peer IP.
    pub trust_forwarded_for: bool,
    /// Cache whole rendered responses keyed by `(endpoint, params, epoch)`
    /// and serve repeats straight from the event loop. On by default: the
    /// epoch key makes staleness structurally impossible, so the only
    /// reason to turn it off is to measure the uncached path.
    pub response_cache: bool,
    /// Response-cache budget in total cached body+header bytes. `0` means
    /// the default (16 MiB). Eviction is LRU once either budget is hit.
    pub response_cache_bytes: usize,
    /// Response-cache budget in entries. `0` means the default (4096).
    pub response_cache_entries: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_request_line_bytes: 8 * 1024,
            max_header_bytes: 32 * 1024,
            max_body_bytes: 64 * 1024,
            max_keep_alive_requests: 1000,
            retry_after_secs: 1,
            max_active_per_client: 0,
            shed_threshold: 0,
            trust_forwarded_for: false,
            response_cache: true,
            response_cache_bytes: 0,
            response_cache_entries: 0,
        }
    }
}

impl ServerConfig {
    /// The effective worker-pool size: `workers`, or the machine's
    /// available parallelism (minimum 2 so one slow request cannot starve
    /// the whole dashboard) when `workers == 0`.
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).max(2),
            n => n,
        }
    }

    /// The effective per-client in-flight cap: the configured value, or
    /// `usize::MAX` (no cap) when `max_active_per_client` is 0.
    pub fn effective_max_active_per_client(&self) -> usize {
        match self.max_active_per_client {
            0 => usize::MAX,
            n => n,
        }
    }

    /// The effective global shed threshold: the configured value, or
    /// `usize::MAX` (never shed) when `shed_threshold` is 0.
    pub fn effective_shed_threshold(&self) -> usize {
        match self.shed_threshold {
            0 => usize::MAX,
            n => n,
        }
    }

    /// The effective response-cache byte budget (`0` → 16 MiB).
    pub fn effective_response_cache_bytes(&self) -> usize {
        match self.response_cache_bytes {
            0 => 16 * 1024 * 1024,
            n => n,
        }
    }

    /// The effective response-cache entry budget (`0` → 4096).
    pub fn effective_response_cache_entries(&self) -> usize {
        match self.response_cache_entries {
            0 => 4096,
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bounded() {
        let c = ServerConfig::default();
        assert!(c.effective_workers() >= 2);
        assert!(c.queue_depth > 0);
        assert!(c.max_request_line_bytes <= c.max_header_bytes);
    }

    #[test]
    fn explicit_worker_count_wins() {
        let c = ServerConfig { workers: 3, ..ServerConfig::default() };
        assert_eq!(c.effective_workers(), 3);
    }

    #[test]
    fn admission_defaults_are_disabled() {
        let c = ServerConfig::default();
        assert_eq!(c.effective_max_active_per_client(), usize::MAX);
        assert_eq!(c.effective_shed_threshold(), usize::MAX);
        assert!(!c.trust_forwarded_for);
    }

    #[test]
    fn response_cache_defaults_on_with_bounded_budgets() {
        let c = ServerConfig::default();
        assert!(c.response_cache);
        assert_eq!(c.effective_response_cache_bytes(), 16 * 1024 * 1024);
        assert_eq!(c.effective_response_cache_entries(), 4096);
        let c = ServerConfig {
            response_cache_bytes: 1024,
            response_cache_entries: 8,
            ..ServerConfig::default()
        };
        assert_eq!(c.effective_response_cache_bytes(), 1024);
        assert_eq!(c.effective_response_cache_entries(), 8);
    }

    #[test]
    fn admission_knobs_pass_through() {
        let c = ServerConfig {
            max_active_per_client: 2,
            shed_threshold: 6,
            ..ServerConfig::default()
        };
        assert_eq!(c.effective_max_active_per_client(), 2);
        assert_eq!(c.effective_shed_threshold(), 6);
    }
}
