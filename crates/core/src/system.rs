//! [`Rased`] and its configuration.

use rased_cube::CubeSchema;
use rased_geo::BBox;
use rased_index::{CacheConfig, IndexError, PlannerKind, ShardedIndex, SpatialBank};
use rased_osm_model::{ChangesetId, CountryTable, RoadTypeTable, UpdateRecord, ZoneMap};
use rased_query::{AnalysisQuery, NetworkSizes, QueryEngine, QueryError, QueryResult, SpatialExec};
use rased_storage::sync::RwLock;
use rased_storage::IoCostModel;
use rased_warehouse::{Warehouse, WarehouseError};
use std::fmt;
use std::path::PathBuf;

/// System-level error.
#[derive(Debug)]
pub enum RasedError {
    Index(IndexError),
    Warehouse(WarehouseError),
    Query(QueryError),
    Collect(rased_collector::CollectError),
    Io(std::io::Error),
}

impl fmt::Display for RasedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RasedError::Index(e) => write!(f, "index: {e}"),
            RasedError::Warehouse(e) => write!(f, "warehouse: {e}"),
            RasedError::Query(e) => write!(f, "query: {e}"),
            RasedError::Collect(e) => write!(f, "collector: {e}"),
            RasedError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

impl std::error::Error for RasedError {}

impl From<IndexError> for RasedError {
    fn from(e: IndexError) -> Self {
        RasedError::Index(e)
    }
}

impl From<WarehouseError> for RasedError {
    fn from(e: WarehouseError) -> Self {
        RasedError::Warehouse(e)
    }
}

impl From<QueryError> for RasedError {
    fn from(e: QueryError) -> Self {
        RasedError::Query(e)
    }
}

impl From<rased_collector::CollectError> for RasedError {
    fn from(e: rased_collector::CollectError) -> Self {
        RasedError::Collect(e)
    }
}

impl From<std::io::Error> for RasedError {
    fn from(e: std::io::Error) -> Self {
        RasedError::Io(e)
    }
}

/// System configuration.
#[derive(Debug, Clone)]
pub struct RasedConfig {
    /// Directory holding the cube index and the warehouse heap.
    pub dir: PathBuf,
    /// Cube dimension cardinalities. Must cover the ingested taxonomies.
    pub schema: CubeSchema,
    /// Index levels, 1 (flat daily) ..= 4 (daily/weekly/monthly/yearly).
    pub levels: u8,
    /// Cube-cache sizing and strategy (§VII-A).
    pub cache: CacheConfig,
    /// Level-planner algorithm (§VII-B).
    pub planner: PlannerKind,
    /// I/O cost model applied to all physical page I/O.
    pub io_model: IoCostModel,
    /// Warehouse buffer-pool size in 8 KB pages.
    pub warehouse_pool_pages: usize,
    /// Taxonomy cardinalities for name resolution.
    pub n_countries: usize,
    pub n_road_types: usize,
    /// Zone attribution (§VI-A): updates additionally credited to the zones
    /// containing their country. Default: no zones. The schema's country
    /// dimension must cover the zone ids.
    pub zones: ZoneMap,
    /// Serving-tier knobs (worker pool, queue depth, timeouts, request
    /// limits) consumed by the dashboard's HTTP server. Per-process tuning,
    /// not persisted by [`RasedConfig::save`].
    pub server: crate::ServerConfig,
    /// Query-executor knobs (per-query worker threads). Per-process tuning,
    /// not persisted by [`RasedConfig::save`].
    pub exec: crate::ExecConfig,
    /// Cube-store sharding (country-partitioned stores). *Structural*: it
    /// shapes the on-disk layout, so [`RasedConfig::save`] persists it and
    /// [`RasedConfig::load`] restores it.
    pub shard: crate::ShardConfig,
    /// Spatial block bank (viewport drill-down): warehouse-grid geometry
    /// and longitude-band count are structural (persisted); the block
    /// cache size is per-process tuning.
    pub spatial: crate::SpatialConfig,
}

impl RasedConfig {
    /// Sensible defaults over `dir`: a small schema (60 countries × 40 road
    /// types), 4 levels, paper cache strategy with 64 slots, HDD cost model.
    pub fn new(dir: impl Into<PathBuf>) -> RasedConfig {
        RasedConfig {
            dir: dir.into(),
            schema: CubeSchema::new(60, 40),
            levels: 4,
            cache: CacheConfig { slots: 64, ..CacheConfig::paper_default() },
            planner: PlannerKind::ExactDp,
            io_model: IoCostModel::hdd(),
            warehouse_pool_pages: 4096,
            n_countries: 60,
            n_road_types: 40,
            zones: ZoneMap::none(),
            server: crate::ServerConfig::default(),
            exec: crate::ExecConfig::default(),
            shard: crate::ShardConfig::default(),
            spatial: crate::SpatialConfig::default(),
        }
    }

    /// Enable continent-zone attribution over the full country table: the
    /// schema grows to cover every country *and* zone id.
    pub fn with_continent_zones(self) -> Self {
        let table = CountryTable::full();
        let zones = ZoneMap::continents(&table);
        let n_road_types = self.n_road_types;
        let mut cfg = self.with_schema(CubeSchema::new(table.len(), n_road_types));
        cfg.zones = zones;
        cfg
    }

    /// Override the schema (and taxonomy sizes to match).
    pub fn with_schema(mut self, schema: CubeSchema) -> Self {
        self.n_countries = schema.n_countries();
        self.n_road_types = schema.n_road_types();
        self.schema = schema;
        self
    }

    /// Persist the structural parameters (schema, levels) under `dir` so a
    /// later process can [`RasedConfig::load`] them without knowing how the
    /// system was built. Tuning knobs (cache, planner, I/O model) are *not*
    /// persisted — they are per-process choices.
    pub fn save(&self) -> std::io::Result<()> {
        let body = format!(
            "n_countries={}\nn_road_types={}\nlevels={}\nzones={}\nshards={}\nspatial_rows={}\nspatial_cols={}\nspatial_shards={}\n",
            self.schema.n_countries(),
            self.schema.n_road_types(),
            self.levels,
            if self.zones.is_empty() { "none" } else { "continents" },
            self.shard.effective_shards(),
            self.spatial.grid_rows,
            self.spatial.grid_cols,
            self.spatial.effective_shards(),
        );
        std::fs::write(self.dir.join("rased.manifest"), body)
    }

    /// Load the structural parameters persisted by [`RasedConfig::save`],
    /// with defaults for everything else.
    pub fn load(dir: impl Into<PathBuf>) -> std::io::Result<RasedConfig> {
        let dir = dir.into();
        let body = std::fs::read_to_string(dir.join("rased.manifest"))?;
        let mut n_countries = 60usize;
        let mut n_road_types = 40usize;
        let mut levels = 4u8;
        let mut zones_kind = "none";
        // Absent in pre-sharding manifests: those stores are monolithic.
        let mut shards = 1usize;
        let mut spatial = crate::SpatialConfig::default();
        for line in body.lines() {
            if let Some((k, v)) = line.split_once('=') {
                match k {
                    "n_countries" => n_countries = v.parse().map_err(bad_manifest)?,
                    "n_road_types" => n_road_types = v.parse().map_err(bad_manifest)?,
                    "levels" => levels = v.parse().map_err(bad_manifest)?,
                    "zones" if v == "continents" => zones_kind = "continents",
                    "shards" => shards = v.parse().map_err(bad_manifest)?,
                    "spatial_rows" => spatial.grid_rows = v.parse().map_err(bad_manifest)?,
                    "spatial_cols" => spatial.grid_cols = v.parse().map_err(bad_manifest)?,
                    "spatial_shards" => spatial.shards = v.parse().map_err(bad_manifest)?,
                    _ => {}
                }
            }
        }
        let mut config = RasedConfig::new(dir).with_schema(CubeSchema::new(n_countries, n_road_types));
        config.levels = levels;
        config.shard = crate::ShardConfig { shards: shards.max(1) };
        config.spatial = spatial;
        if zones_kind == "continents" {
            config.zones = ZoneMap::continents(&CountryTable::with_cardinality(n_countries));
        }
        Ok(config)
    }
}

fn bad_manifest<E: std::fmt::Display>(e: E) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad manifest value: {e}"))
}

/// Live-element bookkeeping feeding the percentage denominators.
#[derive(Debug, Default)]
pub(crate) struct NetworkState {
    /// Running per-country live-element counts.
    live_counts: Vec<i64>,
    sizes: NetworkSizes,
}

/// The assembled RASED backend.
///
/// Every operation takes `&self`: the streaming ingest path (one writer
/// thread inside [`crate::IngestController`]) runs concurrently with
/// serving, so mutable state lives behind interior locks — the index and
/// warehouse bring their own, and the network-size counters sit in one
/// [`RwLock`] here.
pub struct Rased {
    pub(crate) config: RasedConfig,
    pub(crate) index: ShardedIndex,
    pub(crate) warehouse: Warehouse,
    pub(crate) bank: SpatialBank,
    pub(crate) country_table: CountryTable,
    pub(crate) road_table: RoadTypeTable,
    pub(crate) network: RwLock<NetworkState>,
}

impl fmt::Debug for Rased {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rased")
            .field("cubes", &self.index.cube_count())
            .field("rows", &self.warehouse.row_count())
            .finish_non_exhaustive()
    }
}

impl Rased {
    /// Create a fresh system under `config.dir`.
    pub fn create(config: RasedConfig) -> Result<Rased, RasedError> {
        std::fs::create_dir_all(&config.dir)?;
        config.save()?;
        let index = ShardedIndex::create(
            &config.dir.join("index"),
            config.shard.effective_shards(),
            config.schema,
            config.levels,
            config.cache,
            config.io_model,
        )?;
        let warehouse = Warehouse::create(
            &config.dir.join("warehouse.pg"),
            config.io_model,
            config.warehouse_pool_pages,
        )?;
        let bank = SpatialBank::create(
            &config.dir.join("spatial"),
            config.spatial.effective_shards(),
            config.spatial.grid(),
            config.schema,
            config.io_model,
            config.spatial.cache_blocks,
        )?;
        Ok(Self::assemble(config, index, warehouse, bank))
    }

    /// Reopen an existing system. Each shard recovers independently: a
    /// torn WAL tail in one shard is truncated there without blocking the
    /// others.
    pub fn open(config: RasedConfig) -> Result<Rased, RasedError> {
        let index = ShardedIndex::open(
            &config.dir.join("index"),
            config.shard.effective_shards(),
            config.schema,
            config.levels,
            config.cache,
            config.io_model,
        )?;
        let warehouse = Warehouse::open(
            &config.dir.join("warehouse.pg"),
            config.io_model,
            config.warehouse_pool_pages,
        )?;
        // Crash repair: every committed day unit records the warehouse row
        // count it flushed first, so rows beyond the last committed
        // watermark belong to a day whose cube never published. Trim them —
        // the day is absent from the index, so the streaming resume path
        // will re-crawl and re-insert it without duplicating rows.
        if let Some(mark) = index.durable_mark() {
            warehouse.truncate_rows(mark)?;
        }
        // Bank blocks publish strictly *after* the cube commit, so the bank
        // never holds a day the index lacks; a crash in between just leaves
        // that day on the warehouse-scan fallback path. Pre-spatial stores
        // have no bank directory — start one empty (blocks backfill as new
        // days publish).
        let spatial_dir = config.dir.join("spatial");
        let bank = if spatial_dir.exists() {
            SpatialBank::open(
                &spatial_dir,
                config.spatial.effective_shards(),
                config.spatial.grid(),
                config.schema,
                config.io_model,
                config.spatial.cache_blocks,
            )?
        } else {
            SpatialBank::create(
                &spatial_dir,
                config.spatial.effective_shards(),
                config.spatial.grid(),
                config.schema,
                config.io_model,
                config.spatial.cache_blocks,
            )?
        };
        let system = Self::assemble(config, index, warehouse, bank);
        system.recount_network_sizes()?;
        system.index.warm_cache()?;
        Ok(system)
    }

    fn assemble(
        config: RasedConfig,
        index: ShardedIndex,
        warehouse: Warehouse,
        bank: SpatialBank,
    ) -> Rased {
        Rased {
            country_table: CountryTable::with_cardinality(config.n_countries),
            road_table: RoadTypeTable::with_cardinality(config.n_road_types),
            network: RwLock::new_named(
                NetworkState {
                    live_counts: vec![0; config.n_countries],
                    sizes: NetworkSizes::default(),
                },
                "core.network",
            ),
            config,
            index,
            warehouse,
            bank,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RasedConfig {
        &self.config
    }

    /// The cube index (a country-sharded store; one shard by default).
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// The sample warehouse.
    pub fn warehouse(&self) -> &Warehouse {
        &self.warehouse
    }

    /// The spatial block bank (viewport drill-down pre-aggregates).
    pub fn spatial_bank(&self) -> &SpatialBank {
        &self.bank
    }

    /// Country id ↔ name table.
    pub fn countries(&self) -> &CountryTable {
        &self.country_table
    }

    /// Road-type id ↔ `highway=*` value table.
    pub fn roads(&self) -> &RoadTypeTable {
        &self.road_table
    }

    /// Per-country network sizes (percentage denominators). A point-in-time
    /// copy: concurrent ingest keeps updating the live counts.
    pub fn network_sizes(&self) -> NetworkSizes {
        self.network.read().sizes.clone()
    }

    /// A query engine bound to this system. The engine owns a copy of the
    /// network sizes taken now, so a query's percentage denominators cannot
    /// shift mid-execution under concurrent ingest.
    pub fn engine(&self) -> QueryEngine<'_> {
        QueryEngine::over_shards(&self.index)
            .with_planner(self.config.planner)
            .with_network_sizes(self.network_sizes())
            .with_threads(self.config.exec.effective_threads())
            .with_spatial(SpatialExec::banked(&self.warehouse, &self.bank))
    }

    /// Execute an analysis query (§IV-A).
    pub fn query(&self, q: &AnalysisQuery) -> Result<QueryResult, RasedError> {
        Ok(self.engine().execute(q)?)
    }

    /// Sample up to `limit` updates in a region (§IV-B; default N = 100).
    pub fn sample_region(&self, bbox: &BBox, limit: usize) -> Result<Vec<UpdateRecord>, RasedError> {
        Ok(self.warehouse.sample_region(bbox, limit)?)
    }

    /// All updates of a changeset (§IV-B's drill-down).
    pub fn by_changeset(&self, id: ChangesetId) -> Result<Vec<UpdateRecord>, RasedError> {
        Ok(self.warehouse.by_changeset(id)?)
    }

    /// Sample up to `limit` updates *representing an analysis query*
    /// (§IV-B: "a sample of N (default = 100) such updates on the map"):
    /// spatially scoped to `bbox`, filtered by the query's window and
    /// dimension filters.
    pub fn sample_for_query(
        &self,
        q: &AnalysisQuery,
        bbox: &BBox,
        limit: usize,
    ) -> Result<Vec<UpdateRecord>, RasedError> {
        let matches = |r: &UpdateRecord| {
            q.range.contains(r.date)
                && q.element_types.as_ref().is_none_or(|f| f.contains(&r.element_type))
                && q.countries.as_ref().is_none_or(|f| f.contains(&r.country))
                && q.road_types.as_ref().is_none_or(|f| f.contains(&r.road_type))
                && q.update_types.as_ref().is_none_or(|f| f.contains(&r.update_type))
        };
        Ok(self.warehouse.sample_region_filtered(bbox, limit, matches)?)
    }

    /// Track live-element deltas for the percentage denominators.
    pub(crate) fn track_network(&self, records: &[UpdateRecord]) {
        use rased_osm_model::UpdateType;
        let mut net = self.network.write();
        for r in records {
            let Some(slot) = net.live_counts.get_mut(r.country.index()) else { continue };
            match r.update_type {
                UpdateType::Create => *slot += 1,
                UpdateType::Delete => *slot -= 1,
                _ => {}
            }
        }
        net.sizes = NetworkSizes::new(net.live_counts.iter().map(|&c| c.max(0) as u64).collect());
    }

    /// Recompute network sizes from the warehouse (used on reopen).
    fn recount_network_sizes(&self) -> Result<(), RasedError> {
        use rased_osm_model::UpdateType;
        let mut counts = vec![0i64; self.config.n_countries];
        self.warehouse.scan(|_, r| {
            if let Some(slot) = counts.get_mut(r.country.index()) {
                match r.update_type {
                    UpdateType::Create => *slot += 1,
                    UpdateType::Delete => *slot -= 1,
                    _ => {}
                }
            }
        })?;
        let mut net = self.network.write();
        net.sizes = NetworkSizes::new(counts.iter().map(|&c| c.max(0) as u64).collect());
        net.live_counts = counts;
        Ok(())
    }

    /// Persist everything (index catalog checkpoint + warehouse tail +
    /// bank catalogs).
    pub fn sync(&self) -> Result<(), RasedError> {
        self.index.sync()?;
        self.warehouse.flush()?;
        self.bank.sync()?;
        Ok(())
    }
}
