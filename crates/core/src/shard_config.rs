//! [`ShardConfig`] — knobs for the country-sharded cube store.
//!
//! Lives in `rased-core` next to [`crate::ExecConfig`] for the same
//! reason: every front end (CLI `--shards`, dashboard `serve`, tests, the
//! bench harness) should share one vocabulary for "how many partitions
//! does this system's cube store have". Unlike `ExecConfig`, the shard
//! count is *structural*: it shapes the on-disk layout, so
//! [`crate::RasedConfig::save`] persists it and reopening with a
//! different count is an error.

use rased_osm_model::CountryId;

/// Configuration for the country-sharded cube store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of independent `TemporalIndex` shards the country space is
    /// partitioned across. `1` (the default) keeps the classic monolithic
    /// store — and an on-disk layout bit-compatible with it. `0` is
    /// normalized to `1`.
    pub shards: usize,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig { shards: 1 }
    }
}

impl ShardConfig {
    /// The effective shard count (at least 1).
    pub fn effective_shards(&self) -> usize {
        self.shards.max(1)
    }

    /// The shard owning `country`'s cells — the single assignment
    /// function shared by ingest splitting, query routing, and
    /// response-cache stamping (delegates to [`rased_index::shard_for`]).
    pub fn assign(&self, country: CountryId) -> usize {
        rased_index::shard_for(country, self.effective_shards())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_monolithic() {
        assert_eq!(ShardConfig::default().effective_shards(), 1);
    }

    #[test]
    fn zero_normalizes_to_one() {
        assert_eq!(ShardConfig { shards: 0 }.effective_shards(), 1);
    }

    #[test]
    fn assignment_matches_index_routing() {
        let c = ShardConfig { shards: 4 };
        for id in 0..16u16 {
            assert_eq!(c.assign(CountryId(id)), rased_index::shard_for(CountryId(id), 4));
            assert!(c.assign(CountryId(id)) < 4);
        }
    }
}
