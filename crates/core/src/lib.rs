//! RASED: the assembled system (§III).
//!
//! [`Rased`] wires the four architecture modules together: Data Collection
//! (the crawlers of `rased-collector`), Storage & Indexing (the cube index
//! of `rased-index` plus the sample warehouse of `rased-warehouse`), and
//! Query Execution (`rased-query`). The User Interface module lives in
//! `rased-dashboard`, a thin client of this crate.
//!
//! ```no_run
//! use rased_core::{Rased, RasedConfig};
//! use rased_osm_gen::{Dataset, DatasetConfig};
//! use rased_query::{AnalysisQuery, GroupDim};
//! use rased_temporal::DateRange;
//!
//! // Generate a synthetic OSM dataset, build RASED over it, query it.
//! let data = std::path::Path::new("/tmp/rased-demo");
//! let dataset = Dataset::generate(&data.join("osm"), DatasetConfig::small(7)).unwrap();
//! let rased = Rased::create(RasedConfig::new(data.join("system"))).unwrap();
//! rased.ingest_dataset(&dataset).unwrap();
//!
//! let q = AnalysisQuery::over(dataset.config.range).group(GroupDim::Country);
//! let result = rased.query(&q).unwrap();
//! println!("{} countries, {} updates", result.rows.len(), result.total_count());
//! ```

mod exec_config;
mod ingest;
mod ingest_controller;
mod server_config;
mod shard_config;
mod spatial_config;
mod system;

pub use exec_config::ExecConfig;
pub use ingest::IngestReport;
pub use ingest_controller::{
    IngestController, IngestPhase, IngestStatus, QueueFull, DEFAULT_QUEUE_CAPACITY,
};
pub use server_config::ServerConfig;
pub use shard_config::ShardConfig;
pub use spatial_config::SpatialConfig;
pub use system::{Rased, RasedConfig, RasedError};

// Re-export the public API surface so downstream users (examples, the
// dashboard, the root crate) can reach every subsystem through one import.
pub use rased_cube::{CubeSchema, DataCube, DimSelection};
pub use rased_index::{
    marker_shard, shard_for, spatial_shard_for, CacheConfig, CacheStrategy, CubeCache,
    LevelPlanner, MaintenanceReport, PlannerKind, ShardedIndex, SpatialBank, TemporalIndex,
};
pub use rased_osm_model as model;
pub use rased_query::{
    naive_execute, AnalysisQuery, GroupDim, GroupKey, NetworkSizes, QueryEngine, QueryResult,
    QueryStats, ResultRow, ValueMode,
};
pub use rased_storage::{IoCostModel, IoSnapshot};
pub use rased_temporal::{Date, DateRange, Granularity, Period};
pub use rased_warehouse::Warehouse;
