//! The ingestion pipeline: crawl a dataset's files into the system.

use crate::system::{Rased, RasedError};
use rased_collector::{CrawlStats, DailyCrawler, MonthlyCrawler};
use rased_cube::DataCube;
use rased_osm_gen::Dataset;
use rased_osm_model::{ChangesetMeta, CountryResolver};
use rased_osm_xml::ChangesetReader;
use rased_temporal::{Date, DateRange, Period};
use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;

/// What an ingestion run did.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestReport {
    /// Days ingested through the daily crawler.
    pub days: usize,
    /// Months refined through the monthly crawler.
    pub months: usize,
    /// Daily-crawler statistics (coarse update types).
    pub daily: CrawlStats,
    /// Monthly-crawler statistics (refined update types).
    pub monthly: CrawlStats,
    /// Total cube maintenance operations (reads + writes).
    pub maintenance_ops: usize,
}

impl Rased {
    /// Ingest a generated [`Dataset`]: replay the daily crawler over every
    /// day (building daily cubes and warehouse rows, §V/§VI-A), then the
    /// monthly crawler over every complete month (refining update types and
    /// rebuilding that month's cubes), and finally warm the cube cache.
    pub fn ingest_dataset(&self, dataset: &Dataset) -> Result<IngestReport, RasedError> {
        let atlas = dataset.atlas();
        let report = self.ingest_files(
            &atlas,
            dataset.config.range,
            |day| dataset.paths.diff(day),
            |day| dataset.paths.changesets(day),
            |y, m| dataset.paths.history(y, m),
        )?;
        Ok(report)
    }

    /// Ingest from arbitrary file layout (the CLI uses this for datasets on
    /// disk without the in-memory [`Dataset`] handle).
    ///
    /// Daily crawling (XML parsing + changeset joins) fans out across a
    /// small thread pool — days are independent — while cube maintenance
    /// and warehouse appends stay sequential in date order, so results are
    /// bit-identical to a serial run.
    pub fn ingest_files(
        &self,
        resolver: &(dyn CountryResolver + Sync),
        range: DateRange,
        diff_path: impl Fn(Date) -> std::path::PathBuf + Sync,
        changesets_path: impl Fn(Date) -> std::path::PathBuf + Sync,
        history_path: impl Fn(i32, u32) -> std::path::PathBuf,
    ) -> Result<IngestReport, RasedError> {
        let mut report = IngestReport::default();

        // --- daily pipeline ------------------------------------------------
        let days: Vec<Date> = range.days().collect();
        let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        // Cloned so the parallel parse borrows no part of `self` while the
        // sequential apply mutates it. The table is a few KB.
        let road_table = self.road_table.clone();
        for chunk in days.chunks(parallelism.max(1) * 4) {
            // Parse this chunk's files in parallel...
            type Parsed = Result<(Vec<rased_osm_model::UpdateRecord>, CrawlStats), RasedError>;
            let parsed: Vec<Parsed> = std::thread::scope(|scope| {
                let handles: Vec<_> = chunk
                    .iter()
                    .map(|&day| {
                        let diff_path = &diff_path;
                        let changesets_path = &changesets_path;
                        let road_table = &road_table;
                        scope.spawn(move || -> Parsed {
                            let diff = BufReader::new(File::open(diff_path(day))?);
                            let changesets =
                                BufReader::new(File::open(changesets_path(day))?);
                            let crawler = DailyCrawler::new(resolver, road_table);
                            Ok(crawler.crawl(diff, changesets)?)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(RasedError::Io(std::io::Error::other(
                                "crawler thread panicked",
                            )))
                        })
                    })
                    .collect()
            });
            // ...then ingest sequentially in date order.
            for (day, parsed) in chunk.iter().zip(parsed) {
                let (records, stats) = parsed?;
                accumulate(&mut report.daily, stats);
                report.maintenance_ops += self.apply_day(*day, &records)?;
                report.days += 1;
            }
        }

        // --- monthly refinement ---------------------------------------------
        // Only months fully inside the range have a complete full-history
        // dump; refine those.
        for month in range.periods_within(rased_temporal::Granularity::Month) {
            let Period::Month(y, m) = month else { continue };
            let history = BufReader::new(File::open(history_path(y, m))?);
            let mut metas: Vec<ChangesetMeta> = Vec::new();
            for day in month.range().days() {
                let reader =
                    ChangesetReader::new(BufReader::new(File::open(changesets_path(day))?));
                for meta in reader {
                    metas.push(meta.map_err(rased_collector::CollectError::from)?);
                }
            }
            let crawler = MonthlyCrawler::new(resolver, &self.road_table);
            let (by_day, stats) = crawler.crawl(history, metas, y, m)?;
            accumulate(&mut report.monthly, stats);
            report.maintenance_ops += self.apply_month(y, m, &by_day)?;
            report.months += 1;
        }

        self.index.warm_cache()?;
        self.sync()?;
        Ok(report)
    }

    /// Publish one day: expand zones, build the daily cube, append + flush
    /// the warehouse rows, then commit the cube (and its roll-ups) as one
    /// unit carrying the flushed row count as its durable watermark.
    /// Returns the cube maintenance ops performed. Shared by the batch
    /// path above and the streaming [`crate::IngestController`].
    ///
    /// Ordering is the crash-safety contract: warehouse rows become
    /// durable *before* the cube unit that implies them, so a day present
    /// in the index always has its sample rows — which is what lets the
    /// streaming resume check skip already-indexed days. If the cube
    /// commit fails after the rows went in, they are truncated back out
    /// so a retry (or re-enqueue) cannot double-insert them.
    pub(crate) fn apply_day(
        &self,
        day: Date,
        records: &[rased_osm_model::UpdateRecord],
    ) -> Result<usize, RasedError> {
        // Zones (§VI-A): cubes and network sizes credit containing
        // zones too; the warehouse keeps only the original rows.
        let expanded = self.config.zones.expand_all(records);
        let cube = DataCube::from_records(self.config.schema, &expanded)
            .map_err(rased_index::IndexError::from)?;
        let base = self.warehouse.row_count();
        let published = self
            .warehouse
            .insert_batch(records)
            .map_err(RasedError::from)
            .and_then(|_| Ok(self.warehouse.flush()?))
            .and_then(|()| {
                Ok(self.index.ingest_day_marked(day, &cube, self.warehouse.row_count())?)
            });
        match published {
            Ok(maint) => {
                // Bank blocks publish strictly last: a crash here leaves the
                // day on the warehouse-scan fallback path, never a block for
                // a day the index lacks. Blocks are built from the
                // *original* records — geography is explicit in the cell
                // key, so no zone expansion (viewport counts attribute to
                // the actual country, matching the warehouse rows the scan
                // fallback would return).
                self.bank.publish_day(day, records)?;
                self.track_network(&expanded);
                Ok(maint.total_ops())
            }
            Err(e) => {
                // Roll the partial day back; if even that fails the
                // reopen-time trim to the durable watermark (still `base`)
                // repairs it.
                let _ = self.warehouse.truncate_rows(base);
                Err(e)
            }
        }
    }

    /// Publish one month's refinement: rebuild the month's daily cubes from
    /// refined records and commit the rebuild as one unit.
    pub(crate) fn apply_month(
        &self,
        y: i32,
        m: u32,
        by_day: &HashMap<Date, Vec<rased_osm_model::UpdateRecord>>,
    ) -> Result<usize, RasedError> {
        let mut cubes: HashMap<Date, DataCube> = HashMap::new();
        for (day, records) in by_day {
            let expanded = self.config.zones.expand_all(records);
            cubes.insert(
                *day,
                DataCube::from_records(self.config.schema, &expanded)
                    .map_err(rased_index::IndexError::from)?,
            );
        }
        let maint = self.index.rebuild_month(y, m, &cubes)?;
        // The warehouse rows keep the refined types too — otherwise a
        // viewport query's scan fallback (and §IV-B sample drill-downs)
        // would disagree with the rebuilt cubes and blocks.
        let flat: Vec<rased_osm_model::UpdateRecord> =
            by_day.values().flat_map(|rs| rs.iter().copied()).collect();
        self.warehouse.refine_types(&flat)?;
        // Refine the bank's blocks last (original records, same as
        // `apply_day`); only bands with a stake in the month republish.
        let refined: std::collections::BTreeMap<Date, Vec<rased_osm_model::UpdateRecord>> =
            by_day.iter().map(|(d, rs)| (*d, rs.clone())).collect();
        self.bank.rebuild_month(y, m, &refined)?;
        Ok(maint.total_ops())
    }
}

fn accumulate(into: &mut CrawlStats, from: CrawlStats) {
    into.emitted += from.emitted;
    into.skipped_not_road += from.skipped_not_road;
    into.skipped_no_changeset += from.skipped_no_changeset;
    into.skipped_no_country += from.skipped_no_country;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::RasedConfig;
    use rased_cube::CubeSchema;
    use rased_osm_gen::DatasetConfig;
    use rased_osm_model::UpdateType;
    use rased_query::{naive_execute, AnalysisQuery, GroupDim};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rased-core-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn small_dataset(tag: &str) -> Dataset {
        let mut cfg = DatasetConfig::small(21);
        cfg.range = DateRange::new(
            Date::new(2021, 1, 1).unwrap(),
            Date::new(2021, 2, 28).unwrap(),
        );
        cfg.sim.daily_edits_mean = 30.0;
        cfg.seed_nodes_per_country = 12;
        Dataset::generate(&tmpdir(tag).join("osm"), cfg).unwrap()
    }

    fn system_for(tag: &str, dataset: &Dataset) -> Rased {
        let schema = CubeSchema::new(
            dataset.config.world.n_countries,
            dataset.config.sim.n_road_types,
        );
        // Distinct tag: tmpdir() wipes its directory, and the dataset from
        // `small_dataset(tag)` lives under the same-tag path.
        let config = RasedConfig::new(tmpdir(&format!("{tag}-sys"))).with_schema(schema);
        Rased::create(config).unwrap()
    }

    #[test]
    fn end_to_end_counts_match_ground_truth() {
        let dataset = small_dataset("e2e");
        let rased = system_for("e2e", &dataset);
        let report = rased.ingest_dataset(&dataset).unwrap();
        assert_eq!(report.days, 59);
        assert_eq!(report.months, 2, "Jan + Feb are complete months");
        assert_eq!(report.daily.emitted as usize, dataset.truth.len());
        assert_eq!(report.daily.skipped_not_road, 0, "simulator only makes roads");

        // After monthly refinement, the index must agree exactly with the
        // ground truth (exact update types) on a grouped query.
        let q = AnalysisQuery::over(dataset.config.range)
            .group(GroupDim::Country)
            .group(GroupDim::ElementType)
            .group(GroupDim::UpdateType);
        let got = rased.query(&q).unwrap();
        let want = naive_execute(&dataset.truth, &q, None);
        assert_eq!(got.rows, want.rows);
        // Refinement removed every Unclassified count.
        assert!(got
            .rows
            .iter()
            .all(|r| r.key.update_type != Some(UpdateType::Unclassified)));
    }

    #[test]
    fn viewport_query_matches_ground_truth() {
        let dataset = small_dataset("vp");
        let rased = system_for("vp", &dataset);
        rased.ingest_dataset(&dataset).unwrap();
        let atlas = dataset.atlas();
        // One country's box (boundary-heavy cover) and a wide box spanning
        // several countries (interior cells served from bank blocks).
        let one = atlas.countries()[0].polygon.bbox();
        let all = atlas.countries().iter().fold(one, |b, z| b.union(&z.polygon.bbox()));
        for bbox in [one, all] {
            let q = AnalysisQuery::over(dataset.config.range)
                .within(bbox)
                .group(GroupDim::UpdateType)
                .group(GroupDim::Country);
            let got = rased.query(&q).unwrap();
            let want = naive_execute(&dataset.truth, &q, None);
            assert_eq!(got.rows, want.rows, "viewport {bbox:?} diverged from ground truth");
        }
    }

    #[test]
    fn warehouse_holds_every_update() {
        let dataset = small_dataset("wh");
        let rased = system_for("wh", &dataset);
        rased.ingest_dataset(&dataset).unwrap();
        assert_eq!(rased.warehouse().row_count() as usize, dataset.truth.len());

        // Changeset drill-down returns the same rows the truth holds.
        let cs = dataset.truth[0].changeset;
        let expect = dataset.truth.iter().filter(|r| r.changeset == cs).count();
        assert_eq!(rased.by_changeset(cs).unwrap().len(), expect);
    }

    #[test]
    fn sample_region_returns_located_updates() {
        let dataset = small_dataset("sample");
        let rased = system_for("sample", &dataset);
        rased.ingest_dataset(&dataset).unwrap();
        let atlas = dataset.atlas();
        let zone = &atlas.countries()[0];
        let bbox = zone.polygon.bbox();
        let sample = rased.sample_region(&bbox, 50).unwrap();
        assert!(!sample.is_empty());
        for r in &sample {
            assert!(bbox.contains(rased_geo::Point::new(r.lat7, r.lon7)));
        }
    }

    #[test]
    fn query_scoped_sampling_respects_filters() {
        use rased_osm_model::ElementType;
        let dataset = small_dataset("scoped");
        let rased = system_for("scoped", &dataset);
        rased.ingest_dataset(&dataset).unwrap();
        let q = AnalysisQuery::over(dataset.config.range)
            .elements(vec![ElementType::Node])
            .updates(vec![UpdateType::Create]);
        let bbox = rased_geo::BBox::world();
        let samples = rased.sample_for_query(&q, &bbox, 40).unwrap();
        assert!(!samples.is_empty());
        assert!(samples.len() <= 40);
        for r in &samples {
            assert_eq!(r.element_type, ElementType::Node);
            assert_eq!(r.update_type, UpdateType::Create);
            assert!(dataset.config.range.contains(r.date));
        }
        // A window before the data matches nothing.
        let empty_q = AnalysisQuery::over(DateRange::new(
            Date::new(2019, 1, 1).unwrap(),
            Date::new(2019, 12, 31).unwrap(),
        ));
        assert!(rased.sample_for_query(&empty_q, &bbox, 10).unwrap().is_empty());
    }

    #[test]
    fn reopen_preserves_query_results() {
        let dataset = small_dataset("reopen");
        let dir = tmpdir("reopen-sys");
        let schema = CubeSchema::new(
            dataset.config.world.n_countries,
            dataset.config.sim.n_road_types,
        );
        let config = RasedConfig::new(&dir).with_schema(schema);
        let q = AnalysisQuery::over(dataset.config.range).group(GroupDim::Country).percentage();
        let before = {
            let rased = Rased::create(config.clone()).unwrap();
            rased.ingest_dataset(&dataset).unwrap();
            rased.query(&q).unwrap()
        };
        let reopened = Rased::open(config).unwrap();
        let after = reopened.query(&q).unwrap();
        assert_eq!(before.rows, after.rows);
    }
}
