//! [`SpatialConfig`] — knobs for the spatial block bank.
//!
//! Like [`crate::ShardConfig`], the grid geometry and band count are
//! *structural*: they key the blocks on disk (a cell's region code is a
//! function of the grid dimensions) and shape the band layout, so
//! [`crate::RasedConfig::save`] persists them and reopening with different
//! values is an error. The block-cache size is per-process tuning and is
//! not persisted.

use rased_geo::{BBox, CellId, GridSpec};

/// Configuration for the spatial block bank (viewport drill-down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpatialConfig {
    /// Grid rows over the world extent. Structural.
    pub grid_rows: u32,
    /// Grid columns over the world extent. Structural.
    pub grid_cols: u32,
    /// Longitude-band shards the cell space is partitioned across.
    /// Structural. `0` is normalized to `1`.
    pub shards: usize,
    /// Decoded-block cache capacity (entries). Per-process tuning.
    pub cache_blocks: usize,
}

impl Default for SpatialConfig {
    fn default() -> SpatialConfig {
        // 32×64 world cells ≈ 5.6°×5.6° at the equator: coarse enough that
        // a country is a handful of cells, fine enough that a city viewport
        // covers one.
        SpatialConfig { grid_rows: 32, grid_cols: 64, shards: 4, cache_blocks: 256 }
    }
}

impl SpatialConfig {
    /// The effective band count (at least 1).
    pub fn effective_shards(&self) -> usize {
        self.shards.max(1)
    }

    /// The warehouse grid over the full world extent.
    pub fn grid(&self) -> GridSpec {
        GridSpec::new(BBox::world(), self.grid_rows.max(1), self.grid_cols.max(1))
    }

    /// The band owning `cell` — the single assignment function shared by
    /// bank publishing, viewport routing, and response-cache stamping
    /// (delegates to [`rased_index::spatial_shard_for`]).
    pub fn assign(&self, cell: CellId) -> usize {
        rased_index::spatial_shard_for(cell, self.grid_cols.max(1), self.effective_shards())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rased_geo::Point;

    #[test]
    fn default_grid_covers_the_world() {
        let c = SpatialConfig::default();
        let grid = c.grid();
        for p in [Point::new(0, 0), Point::new(899_999_999, -1_799_999_999)] {
            assert!(grid.cell_of(p).is_some());
        }
    }

    #[test]
    fn assignment_matches_index_routing() {
        let c = SpatialConfig { grid_rows: 4, grid_cols: 8, shards: 3, cache_blocks: 16 };
        for col in 0..8u16 {
            let cell = CellId { row: 1, col };
            assert_eq!(c.assign(cell), rased_index::spatial_shard_for(cell, 8, 3));
            assert!(c.assign(cell) < 3);
        }
    }

    #[test]
    fn zero_shards_normalizes_to_one() {
        let c = SpatialConfig { shards: 0, ..SpatialConfig::default() };
        assert_eq!(c.effective_shards(), 1);
        assert_eq!(c.assign(CellId { row: 0, col: 63 }), 0);
    }
}
