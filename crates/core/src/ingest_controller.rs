//! [`IngestController`]: the streaming write path.
//!
//! The batch pipeline ([`Rased::ingest_files`]) assumes a complete dataset
//! on disk and exclusive use of the system. This controller instead drives
//! ingestion *while the system serves queries*: data directories are
//! enqueued (`POST /api/ingest`, `serve --follow`), and one writer thread
//! drains the queue, crawling and publishing one day at a time. Every
//! publish is a crash-safe unit in the index (staged pages + one WAL
//! commit), so a crash mid-stream loses at most the in-flight day.
//!
//! The writer is *resumable*: a day already present in the index (from a
//! prior run, or replayed from the WAL after a crash) is skipped, so
//! re-enqueueing the same directory is idempotent and the natural way to
//! tail a growing dataset. A day whose files do not exist yet cleanly ends
//! the job — the next enqueue picks up from there. Transient I/O errors on
//! a unit retry a fixed number of times with fixed backoff (deterministic
//! constants — no clocks, no jitter); persistent ones fail the job and park
//! the state machine in [`IngestPhase::Failed`] until the next job.

use crate::system::{Rased, RasedError};
use rased_collector::{CrawlStats, DailyCrawler, MonthlyCrawler};
use rased_osm_gen::Dataset;
use rased_osm_model::{ChangesetMeta, UpdateRecord};
use rased_osm_xml::ChangesetReader;
use rased_storage::sync::{Condvar, Mutex};
use rased_temporal::{Date, Period};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::File;
use std::io::{self, BufReader};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How many data directories may wait in the queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 16;

/// Attempts per unit before the job fails (1 initial + retries).
const UNIT_ATTEMPTS: u32 = 3;

/// Backoff between attempts: `UNIT_BACKOFF × attempt`. A fixed constant —
/// the writer is the only sleeper and determinism matters more than
/// congestion avoidance inside a single-writer process.
const UNIT_BACKOFF: Duration = Duration::from_millis(20);

/// Where the writer's state machine is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestPhase {
    /// No job in hand; waiting on the queue.
    #[default]
    Idle,
    /// Loading a job's manifest and deciding which days are pending.
    Scanning,
    /// Parsing a unit's files (daily diff + changesets, or monthly history).
    Crawling,
    /// Committing a unit (cube publish + warehouse append).
    Publishing,
    /// The last job died (see `last_error`); the next job resets this.
    Failed,
}

impl IngestPhase {
    /// Stable lowercase name for APIs and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            IngestPhase::Idle => "idle",
            IngestPhase::Scanning => "scanning",
            IngestPhase::Crawling => "crawling",
            IngestPhase::Publishing => "publishing",
            IngestPhase::Failed => "failed",
        }
    }
}

/// A point-in-time snapshot of the writer's progress.
#[derive(Debug, Clone, Default)]
pub struct IngestStatus {
    /// Current state-machine phase.
    pub phase: IngestPhase,
    /// Data directories waiting behind the current job.
    pub queued: usize,
    /// Directory the writer is working on, if any.
    pub current: Option<String>,
    /// Days published (streaming units) since the controller started.
    pub days_published: u64,
    /// Months refined since the controller started.
    pub months_published: u64,
    /// Jobs fully drained.
    pub jobs_done: u64,
    /// Unit attempts that failed and were retried.
    pub retries: u64,
    /// Error that failed the most recent job, if any.
    pub last_error: Option<String>,
    /// Daily-crawler statistics (includes per-element skip reasons).
    pub daily: CrawlStats,
    /// Monthly-crawler statistics.
    pub monthly: CrawlStats,
}

/// Enqueue rejection: the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ingest queue is full")
    }
}

impl std::error::Error for QueueFull {}

struct Inner {
    system: Arc<Rased>,
    queue: Mutex<VecDeque<PathBuf>>,
    wake: Condvar,
    status: Mutex<IngestStatus>,
    stop: AtomicBool,
    capacity: usize,
}

impl Inner {
    fn set_phase(&self, phase: IngestPhase) {
        self.status.lock().phase = phase;
    }

    fn with_status(&self, f: impl FnOnce(&mut IngestStatus)) {
        f(&mut self.status.lock());
    }
}

/// Owns the writer thread; dropped or [`IngestController::shutdown`], it
/// stops the writer at the next unit boundary and joins it.
pub struct IngestController {
    inner: Arc<Inner>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for IngestController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestController")
            .field("status", &self.status())
            .finish_non_exhaustive()
    }
}

impl IngestController {
    /// Spawn the writer thread over `system` with the default queue bound.
    pub fn start(system: Arc<Rased>) -> io::Result<IngestController> {
        Self::with_capacity(system, DEFAULT_QUEUE_CAPACITY)
    }

    /// Spawn the writer thread with an explicit queue bound.
    pub fn with_capacity(system: Arc<Rased>, capacity: usize) -> io::Result<IngestController> {
        let inner = Arc::new(Inner {
            system,
            queue: Mutex::new_named(VecDeque::new(), "core.ingest_queue"),
            wake: Condvar::new(),
            status: Mutex::new_named(IngestStatus::default(), "core.ingest_status"),
            stop: AtomicBool::new(false),
            capacity: capacity.max(1),
        });
        let worker = Arc::clone(&inner);
        let handle =
            std::thread::Builder::new().name("rased-ingest".into()).spawn(move || run(&worker))?;
        Ok(IngestController { inner, writer: Mutex::new_named(Some(handle), "core.ingest_writer") })
    }

    /// Enqueue a data directory (must hold a `dataset.manifest`). Returns
    /// the queue length after the push, or [`QueueFull`] — the caller
    /// (HTTP handler) turns that into backpressure, never blocking.
    pub fn enqueue(&self, dir: PathBuf) -> Result<usize, QueueFull> {
        let mut q = self.inner.queue.lock();
        if q.len() >= self.inner.capacity {
            return Err(QueueFull);
        }
        q.push_back(dir);
        let depth = q.len();
        drop(q);
        self.inner.wake.notify_one();
        Ok(depth)
    }

    /// Snapshot the writer's progress.
    pub fn status(&self) -> IngestStatus {
        let queued = self.inner.queue.lock().len();
        let mut s = self.inner.status.lock().clone();
        s.queued = queued;
        s
    }

    /// Stop the writer at the next unit boundary and join it. Idempotent.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.wake.notify_all();
        let handle = self.writer.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for IngestController {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The writer loop: pop a directory, stream it in, repeat.
fn run(inner: &Inner) {
    // Months this process already refined: rebuild_month is idempotent on
    // content, so after a restart each month is refined at most once more.
    let mut refined: HashSet<(i32, u32)> = HashSet::new();
    loop {
        let job = {
            let mut q = inner.queue.lock();
            loop {
                if inner.stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = q.pop_front() {
                    break job;
                }
                let (guard, _) = inner.wake.wait_timeout(q, Duration::from_millis(25));
                q = guard;
            }
        };
        inner.with_status(|s| {
            s.phase = IngestPhase::Scanning;
            s.current = Some(job.display().to_string());
            s.last_error = None;
        });
        match ingest_job(inner, &job, &mut refined) {
            Ok(()) => inner.with_status(|s| {
                s.phase = IngestPhase::Idle;
                s.current = None;
                s.jobs_done += 1;
            }),
            Err(e) => inner.with_status(|s| {
                s.phase = IngestPhase::Failed;
                s.current = None;
                s.last_error = Some(e.to_string());
            }),
        }
    }
}

/// Stream one data directory into the system: publish each pending day as
/// its own crash-safe unit, then refine every complete, fully-published
/// month.
fn ingest_job(
    inner: &Inner,
    root: &Path,
    refined: &mut HashSet<(i32, u32)>,
) -> Result<(), RasedError> {
    let dataset = Dataset::load_manifest(root)
        .map_err(|e| RasedError::Io(io::Error::new(io::ErrorKind::InvalidData, e.to_string())))?;
    let atlas = dataset.atlas();
    let sys = &inner.system;

    for day in dataset.config.range.days() {
        if inner.stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        if sys.index().has(Period::Day(day)) {
            // Resumable: published by a prior run or recovered from the
            // WAL. Skipping on index presence alone is sound because
            // `apply_day` flushes the warehouse *before* committing the
            // cube unit (and `Rased::open` trims any rows past the last
            // committed watermark), so an indexed day always has its
            // sample rows too.
            continue;
        }
        if !dataset.paths.diff(day).exists() {
            // The generator hasn't produced this day yet: end the job
            // cleanly. `serve --follow` re-enqueues as data appears.
            break;
        }
        inner.set_phase(IngestPhase::Crawling);
        let (records, stats) = retry_unit(inner, || crawl_day(sys, &atlas, &dataset, day))?;
        inner.with_status(|s| accumulate(&mut s.daily, stats));
        inner.set_phase(IngestPhase::Publishing);
        // The publish itself is not retried: `apply_day` commits the cube
        // unit atomically, and a failure after the commit must not publish
        // the day twice. A failure *before* the commit rolls the day's
        // warehouse rows back out, so the WAL makes "retry by
        // re-enqueueing" safe in either half.
        sys.apply_day(day, &records)?;
        inner.with_status(|s| s.days_published += 1);
    }

    for (y, m) in dataset.months() {
        if inner.stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let month = Period::Month(y, m);
        if refined.contains(&(y, m)) || !month.within(dataset.config.range) {
            continue;
        }
        // Refinement needs every day of the month published and the
        // full-history dump present.
        if !month.range().days().all(|d| sys.index().has(Period::Day(d)))
            || !dataset.paths.history(y, m).exists()
        {
            continue;
        }
        inner.set_phase(IngestPhase::Crawling);
        let (by_day, stats) = retry_unit(inner, || crawl_month(sys, &atlas, &dataset, y, m))?;
        inner.with_status(|s| accumulate(&mut s.monthly, stats));
        inner.set_phase(IngestPhase::Publishing);
        sys.apply_month(y, m, &by_day)?;
        refined.insert((y, m));
        inner.with_status(|s| s.months_published += 1);
    }

    sys.index().warm_cache()?;
    sys.sync()?;
    Ok(())
}

/// Crawl one day's diff + changeset files into records.
fn crawl_day(
    sys: &Rased,
    atlas: &rased_osm_gen::WorldAtlas,
    dataset: &Dataset,
    day: Date,
) -> Result<(Vec<UpdateRecord>, CrawlStats), RasedError> {
    let diff = BufReader::new(File::open(dataset.paths.diff(day))?);
    let changesets = BufReader::new(File::open(dataset.paths.changesets(day))?);
    let crawler = DailyCrawler::new(atlas, sys.roads());
    Ok(crawler.crawl(diff, changesets)?)
}

/// Crawl one month's full-history dump (plus its days' changeset files)
/// into refined per-day records.
fn crawl_month(
    sys: &Rased,
    atlas: &rased_osm_gen::WorldAtlas,
    dataset: &Dataset,
    y: i32,
    m: u32,
) -> Result<(HashMap<Date, Vec<UpdateRecord>>, CrawlStats), RasedError> {
    let history = BufReader::new(File::open(dataset.paths.history(y, m))?);
    let mut metas: Vec<ChangesetMeta> = Vec::new();
    for day in Period::Month(y, m).range().days() {
        let reader = ChangesetReader::new(BufReader::new(File::open(dataset.paths.changesets(day))?));
        for meta in reader {
            metas.push(meta.map_err(rased_collector::CollectError::from)?);
        }
    }
    let crawler = MonthlyCrawler::new(atlas, sys.roads());
    Ok(crawler.crawl(history, metas, y, m)?)
}

/// Run one unit, retrying transient I/O failures with fixed backoff.
fn retry_unit<T>(
    inner: &Inner,
    mut unit: impl FnMut() -> Result<T, RasedError>,
) -> Result<T, RasedError> {
    let mut attempt = 1u32;
    loop {
        match unit() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < UNIT_ATTEMPTS && is_transient(&e) => {
                inner.with_status(|s| s.retries += 1);
                std::thread::sleep(UNIT_BACKOFF * attempt);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Is this worth retrying? I/O and storage errors may be transient (a file
/// mid-write by the generator, a full disk freed up); parse errors are not.
fn is_transient(e: &RasedError) -> bool {
    matches!(e, RasedError::Io(_) | RasedError::Index(_) | RasedError::Warehouse(_))
}

fn accumulate(into: &mut CrawlStats, from: CrawlStats) {
    into.emitted += from.emitted;
    into.skipped_not_road += from.skipped_not_road;
    into.skipped_no_changeset += from.skipped_no_changeset;
    into.skipped_no_country += from.skipped_no_country;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::RasedConfig;
    use rased_cube::CubeSchema;
    use rased_osm_gen::DatasetConfig;
    use rased_query::{naive_execute, AnalysisQuery, GroupDim};
    use rased_temporal::DateRange;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rased-ictl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn dataset_and_system(tag: &str) -> (Dataset, Arc<Rased>) {
        let mut cfg = DatasetConfig::small(31);
        cfg.range = DateRange::new(
            Date::new(2021, 1, 1).unwrap(),
            Date::new(2021, 1, 31).unwrap(),
        );
        cfg.sim.daily_edits_mean = 20.0;
        cfg.seed_nodes_per_country = 10;
        let root = tmpdir(tag);
        let dataset = Dataset::generate(&root.join("osm"), cfg).unwrap();
        let schema = CubeSchema::new(
            dataset.config.world.n_countries,
            dataset.config.sim.n_road_types,
        );
        let config = RasedConfig::new(root.join("system")).with_schema(schema);
        (dataset, Arc::new(Rased::create(config).unwrap()))
    }

    fn wait_idle(ctl: &IngestController) -> IngestStatus {
        for _ in 0..2000 {
            let s = ctl.status();
            if s.queued == 0 && matches!(s.phase, IngestPhase::Idle | IngestPhase::Failed) {
                return s;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("controller never drained: {:?}", ctl.status());
    }

    #[test]
    fn streams_a_dataset_to_the_same_answer_as_batch_ingest() {
        let (dataset, sys) = dataset_and_system("stream");
        let ctl = IngestController::start(Arc::clone(&sys)).unwrap();
        ctl.enqueue(dataset.paths.root.clone()).unwrap();
        let status = wait_idle(&ctl);
        assert_eq!(status.phase, IngestPhase::Idle, "err: {:?}", status.last_error);
        assert_eq!(status.days_published, 31);
        assert_eq!(status.months_published, 1);
        assert_eq!(status.jobs_done, 1);
        assert_eq!(status.daily.emitted as usize, dataset.truth.len());

        let q = AnalysisQuery::over(dataset.config.range)
            .group(GroupDim::Country)
            .group(GroupDim::UpdateType);
        let got = sys.query(&q).unwrap();
        let want = naive_execute(&dataset.truth, &q, None);
        assert_eq!(got.rows, want.rows);
        ctl.shutdown();
    }

    #[test]
    fn re_enqueueing_the_same_directory_is_idempotent() {
        let (dataset, sys) = dataset_and_system("idem");
        let ctl = IngestController::start(Arc::clone(&sys)).unwrap();
        ctl.enqueue(dataset.paths.root.clone()).unwrap();
        wait_idle(&ctl);
        let rows = sys.warehouse().row_count();
        let epoch = sys.index().epoch();
        ctl.enqueue(dataset.paths.root.clone()).unwrap();
        let status = wait_idle(&ctl);
        assert_eq!(status.jobs_done, 2);
        assert_eq!(status.days_published, 31, "no day published twice");
        assert_eq!(sys.warehouse().row_count(), rows, "no duplicate rows");
        assert_eq!(sys.index().epoch(), epoch, "no new publishes");
        ctl.shutdown();
    }

    #[test]
    fn bad_directory_parks_the_machine_in_failed() {
        let (_dataset, sys) = dataset_and_system("badjob");
        let ctl = IngestController::start(Arc::clone(&sys)).unwrap();
        ctl.enqueue(tmpdir("badjob-empty")).unwrap();
        let status = wait_idle(&ctl);
        assert_eq!(status.phase, IngestPhase::Failed);
        assert!(status.last_error.is_some());
        ctl.shutdown();
    }

    #[test]
    fn queue_rejects_beyond_capacity() {
        let (_dataset, sys) = dataset_and_system("cap");
        // Capacity 2; the writer is busy failing the first bogus dir, but
        // enqueue never blocks either way.
        let ctl = IngestController::with_capacity(sys, 2).unwrap();
        let mut accepted = 0;
        let mut rejected = 0;
        for i in 0..20 {
            match ctl.enqueue(PathBuf::from(format!("/nonexistent/{i}"))) {
                Ok(_) => accepted += 1,
                Err(QueueFull) => rejected += 1,
            }
        }
        assert!(accepted >= 2);
        assert!(rejected > 0, "a bounded queue must push back");
        ctl.shutdown();
    }
}
