//! Crash-safety fuzz for the streaming write path: kill the process at
//! *every* byte of the write-ahead log and prove [`Rased::open`] recovers
//! exactly the state of a system that never crashed — a committed prefix
//! of the publish history, never a half-applied unit. A unit that rolls a
//! week up publishes the day *and* the weekly cube together, so a torn
//! tail must take both down or neither.

use dettest::{det_proptest, Rng, TempDir};
use rased_core::model::{
    ChangesetId, CountryId, ElementType, RoadTypeId, UpdateRecord, UpdateType,
};
use rased_core::{CubeSchema, DataCube, Date, Period, Rased, RasedConfig};
use std::path::Path;

fn day_records(rng: &mut Rng, schema: CubeSchema, date: Date) -> Vec<UpdateRecord> {
    (0..(1 + rng.below(6)))
        .map(|_| UpdateRecord {
            element_type: ElementType::ALL[rng.below(ElementType::ALL.len() as u64) as usize],
            update_type: UpdateType::ALL[rng.below(UpdateType::ALL.len() as u64) as usize],
            country: CountryId(rng.below(schema.n_countries() as u64) as u16),
            road_type: RoadTypeId(rng.below(schema.n_road_types() as u64) as u16),
            date,
            lat7: 0,
            lon7: 0,
            changeset: ChangesetId(rng.below(1 << 40)),
        })
        .collect()
}

fn fresh_system(dir: &Path, schema: CubeSchema) -> Rased {
    Rased::create(RasedConfig::new(dir).with_schema(schema)).expect("create system")
}

/// A never-crashed oracle: the first `k` days ingested, nothing else.
fn oracle(dir: &Path, schema: CubeSchema, days: &[(Date, DataCube)], k: usize) -> Rased {
    let sys = fresh_system(dir, schema);
    for (day, cube) in &days[..k] {
        sys.index().ingest_day(*day, cube).expect("oracle ingest");
    }
    sys
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// `Period` sort key (it has no `Ord`): level, then start day.
fn period_key(p: Period) -> (u8, i32) {
    (p.granularity().level(), p.start().days())
}

/// The recovered catalog must be *identical* to the oracle's: same
/// periods, same cube contents.
fn assert_matches_oracle(sys: &Rased, oracle: &Rased) {
    let mut got = sys.index().periods();
    let mut want = oracle.index().periods();
    got.sort_by_key(|p| period_key(*p));
    want.sort_by_key(|p| period_key(*p));
    assert_eq!(got, want, "recovered catalog diverges from the never-crashed oracle");
    for p in got {
        let a = sys.index().fetch_uncached(p).expect("fetch").expect("cube");
        let b = oracle.index().fetch_uncached(p).expect("fetch").expect("cube");
        assert_eq!(*a, *b, "cube for {p} diverges from the never-crashed oracle");
    }
}

/// Build a system, publish `n_days` units WAL-only (no checkpoint — the
/// state an unclean shutdown leaves behind), then reopen after truncating
/// the WAL at each point in `cuts` and compare against the oracle that
/// stopped cleanly after the surviving prefix.
fn check_crash_recovery(seed: u64, n_days: u64, cuts: Option<usize>) {
    let mut rng = Rng::new(seed);
    let schema = CubeSchema::tiny();
    // Start on a Sunday so the span crosses a week boundary: at least one
    // unit publishes a multi-cube (day + roll-up) delta.
    let start = Date::new(2021, 1, 3).expect("date");
    let days: Vec<(Date, DataCube)> = (0..n_days)
        .map(|i| {
            let date = start.add_days(i as i32);
            let recs = day_records(&mut rng, schema, date);
            (date, DataCube::from_records(schema, &recs).expect("cube"))
        })
        .collect();

    let full = TempDir::new("crash-full");
    {
        let sys = fresh_system(full.path(), schema);
        for (day, cube) in &days {
            sys.index().ingest_day(*day, cube).expect("ingest");
        }
        // No sync(): every published unit lives only in the WAL.
    }
    let wal = std::fs::read(full.path().join("index").join("wal.log")).expect("read wal");

    let oracle_dirs: Vec<TempDir> =
        (0..=days.len()).map(|k| TempDir::new(&format!("crash-oracle-{k}"))).collect();
    let oracles: Vec<Rased> = (0..=days.len())
        .map(|k| oracle(oracle_dirs[k].path(), schema, &days, k))
        .collect();

    let points: Vec<usize> = match cuts {
        None => (0..=wal.len()).collect(),
        Some(n) => (0..n).map(|_| rng.below(wal.len() as u64 + 1) as usize).collect(),
    };
    for t in points {
        let scratch = TempDir::new("crash-cut");
        copy_dir(full.path(), scratch.path());
        let wal_path = scratch.path().join("index").join("wal.log");
        let f = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(t as u64).unwrap();
        f.sync_all().unwrap();
        drop(f);

        let config = RasedConfig::load(scratch.path()).expect("load manifest");
        let sys = Rased::open(config).unwrap_or_else(|e| {
            panic!("open must survive truncation at byte {t}: {e}")
        });

        // The surviving days must be exactly a prefix of the publish order.
        let k = sys
            .index()
            .periods()
            .iter()
            .filter(|p| matches!(p, Period::Day(_)))
            .count();
        for (i, (day, _)) in days.iter().enumerate() {
            assert_eq!(
                sys.index().has(Period::Day(*day)),
                i < k,
                "cut at byte {t}: day set is not the prefix of length {k}"
            );
        }
        assert_eq!(sys.index().epoch(), k as u64, "epoch must equal replayed units");
        assert_matches_oracle(&sys, &oracles[k]);
        drop(sys);

        // Recovery truncated the torn tail: a second open is a fixpoint.
        let again = Rased::open(RasedConfig::load(scratch.path()).expect("load")).expect("reopen");
        assert_eq!(again.index().epoch(), k as u64, "second open must see repaired state");
        assert_eq!(again.index().cube_count(), oracles[k].index().cube_count());
    }
}

/// The acceptance pin: every byte boundary, fixed seed.
#[test]
fn truncation_at_every_byte_boundary_recovers_a_committed_prefix() {
    check_crash_recovery(0xC4A5_85AF_E57E_ED01, 10, None);
}

/// Index–warehouse coupling under crashes: drive the `apply_day` protocol
/// (warehouse rows flushed, then the cube unit committed with the row
/// count as its durable watermark), truncate the WAL at every byte, and
/// require the *warehouse* to recover in lockstep with the index — the
/// rows of exactly the surviving day prefix, nothing more. Then replay
/// the missing days the way the streaming resume path would and require
/// the result to equal a never-crashed run: no lost rows, no duplicates.
#[test]
fn warehouse_recovers_in_lockstep_with_the_index() {
    let schema = CubeSchema::tiny();
    let start = Date::new(2021, 1, 3).expect("date");
    // Distinct changeset ranges per day so a row's provenance is checkable:
    // day i uses changesets 1000·(i+1) .. 1000·(i+1)+len.
    let days: Vec<(Date, Vec<UpdateRecord>)> = (0..6u64)
        .map(|i| {
            let date = start.add_days(i as i32);
            let recs: Vec<UpdateRecord> = (0..(2 + i))
                .map(|j| UpdateRecord {
                    element_type: ElementType::Way,
                    update_type: UpdateType::Create,
                    country: CountryId((j % 2) as u16),
                    road_type: RoadTypeId(0),
                    date,
                    lat7: (i as i32) * 1_000_000,
                    lon7: (j as i32) * 1_000_000,
                    changeset: ChangesetId(1_000 * (i + 1) + j),
                })
                .collect();
            (date, recs)
        })
        .collect();
    let prefix_rows = |k: usize| days[..k].iter().map(|(_, r)| r.len() as u64).sum::<u64>();

    // The apply_day publish protocol, via public APIs so the crash can be
    // simulated between any two file writes (no sync(): WAL-only state).
    let publish = |sys: &Rased, day: Date, recs: &[UpdateRecord]| {
        let cube = DataCube::from_records(schema, recs).expect("cube");
        sys.warehouse().insert_batch(recs).expect("insert");
        sys.warehouse().flush().expect("flush");
        sys.index()
            .ingest_day_marked(day, &cube, sys.warehouse().row_count())
            .expect("commit");
    };

    let full = TempDir::new("crash-wh-full");
    {
        let sys = fresh_system(full.path(), schema);
        for (day, recs) in &days {
            publish(&sys, *day, recs);
        }
    }
    let wal = std::fs::read(full.path().join("index").join("wal.log")).expect("read wal");

    for t in 0..=wal.len() {
        let scratch = TempDir::new("crash-wh-cut");
        copy_dir(full.path(), scratch.path());
        let wal_path = scratch.path().join("index").join("wal.log");
        let f = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(t as u64).unwrap();
        f.sync_all().unwrap();
        drop(f);

        let sys = Rased::open(RasedConfig::load(scratch.path()).expect("load"))
            .unwrap_or_else(|e| panic!("open must survive truncation at byte {t}: {e}"));
        let k = (0..days.len())
            .take_while(|&i| sys.index().has(Period::Day(days[i].0)))
            .count();
        assert_eq!(
            sys.warehouse().row_count(),
            prefix_rows(k),
            "cut at byte {t}: warehouse rows must match the surviving {k}-day prefix"
        );
        for (i, (_, recs)) in days.iter().enumerate() {
            let got = sys.by_changeset(recs[0].changeset).expect("by_changeset");
            if i < k {
                assert_eq!(got.len(), 1, "cut at byte {t}: surviving day {i} lost its rows");
            } else {
                assert!(got.is_empty(), "cut at byte {t}: dropped day {i} left rows behind");
            }
        }

        // Resume exactly like the streaming path: skip indexed days,
        // re-publish the rest. The end state must equal a never-crashed
        // run — same row count, no duplicated changesets.
        for (day, recs) in &days {
            if !sys.index().has(Period::Day(*day)) {
                publish(&sys, *day, recs);
            }
        }
        assert_eq!(sys.warehouse().row_count(), prefix_rows(days.len()), "cut at byte {t}");
        for (_, recs) in &days {
            assert_eq!(
                sys.by_changeset(recs[0].changeset).expect("by_changeset").len(),
                1,
                "cut at byte {t}: resume must not duplicate rows"
            );
        }
    }
}

det_proptest! {
    #![det_config(cases = 6)]

    #[test]
    fn random_truncations_recover_committed_prefixes(
        seed in 0u64..u64::MAX,
        n_days in 4u64..13,
    ) {
        check_crash_recovery(seed, n_days, Some(24));
    }
}
