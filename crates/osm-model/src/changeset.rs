//! Changeset metadata (§II-B).

use crate::ids::{ChangesetId, UserId};
use rased_temporal::Date;

/// Metadata describing one changeset: all updates submitted by one user in
/// one session (at most 24 hours in OSM).
///
/// The daily crawler (§V) uses the bounding box to locate `way` and
/// `relation` updates, whose diffs carry no coordinates: the changeset bbox
/// is mapped to a country and its center point becomes the update's
/// latitude/longitude.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangesetMeta {
    pub id: ChangesetId,
    pub user: UserId,
    /// Day the changeset was opened.
    pub created: Date,
    /// Day the changeset was closed (== `created` for same-day sessions).
    pub closed: Date,
    /// Bounding box in 1e-7° fixed point: `(min_lat7, min_lon7, max_lat7, max_lon7)`.
    /// `None` for changesets with no geographic extent (e.g. tag-only bulk edits).
    pub bbox7: Option<(i32, i32, i32, i32)>,
    /// Number of element changes in the changeset.
    pub num_changes: u32,
    /// Free-form comment supplied by the mapper.
    pub comment: String,
}

impl ChangesetMeta {
    /// The bbox center in 1e-7° fixed point, if a bbox is present.
    pub fn center7(&self) -> Option<(i32, i32)> {
        self.bbox7.map(|(min_lat, min_lon, max_lat, max_lon)| {
            // Average in i64 to avoid overflow near the ±214° limits.
            (
                ((min_lat as i64 + max_lat as i64) / 2) as i32,
                ((min_lon as i64 + max_lon as i64) / 2) as i32,
            )
        })
    }

    /// The bbox center in degrees.
    pub fn center_deg(&self) -> Option<(f64, f64)> {
        self.center7().map(|(lat7, lon7)| (lat7 as f64 * 1e-7, lon7 as f64 * 1e-7))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(bbox7: Option<(i32, i32, i32, i32)>) -> ChangesetMeta {
        ChangesetMeta {
            id: ChangesetId(99),
            user: UserId(3),
            created: "2020-05-01".parse().unwrap(),
            closed: "2020-05-01".parse().unwrap(),
            bbox7,
            num_changes: 12,
            comment: "add missing residential roads".into(),
        }
    }

    #[test]
    fn center_of_bbox() {
        let m = meta(Some((100, 200, 300, 400)));
        assert_eq!(m.center7(), Some((200, 300)));
        let (lat, lon) = m.center_deg().unwrap();
        assert!((lat - 2e-5).abs() < 1e-12);
        assert!((lon - 3e-5).abs() < 1e-12);
    }

    #[test]
    fn center_handles_extreme_coordinates() {
        // Near the i32 fixed-point extremes, a naive i32 sum would overflow.
        let m = meta(Some((i32::MAX - 10, i32::MAX - 10, i32::MAX, i32::MAX)));
        let (lat7, lon7) = m.center7().unwrap();
        assert_eq!(lat7, i32::MAX - 5);
        assert_eq!(lon7, i32::MAX - 5);
    }

    #[test]
    fn missing_bbox_has_no_center() {
        assert_eq!(meta(None).center7(), None);
        assert_eq!(meta(None).center_deg(), None);
    }
}
