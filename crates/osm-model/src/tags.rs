//! OSM tags: ordered `key=value` string pairs.

use std::fmt;

/// A collection of OSM tags.
///
/// OSM elements carry at most a handful of tags, so a sorted `Vec` of pairs
/// beats a hash map here: cheaper to build, cache-friendly to scan, and
/// deterministic to serialize (important for the full-history writer, whose
/// output the monthly crawler diffs byte-meaningfully).
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct Tags {
    // Sorted by key; keys are unique.
    pairs: Vec<(String, String)>,
}

impl Tags {
    /// An empty tag set.
    pub fn new() -> Tags {
        Tags::default()
    }

    /// Build from any iterator of pairs; later duplicates win, output sorted.
    pub fn from_pairs<I, K, V>(iter: I) -> Tags
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        let mut t = Tags::new();
        for (k, v) in iter {
            t.set(k, v);
        }
        t
    }

    /// Number of tags.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no tags are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Look up a tag value by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.pairs[i].1.as_str())
    }

    /// True when the key is present.
    #[inline]
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Insert or replace a tag. Returns the previous value, if any.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        let key = key.into();
        let value = value.into();
        match self.pairs.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => Some(std::mem::replace(&mut self.pairs[i].1, value)),
            Err(i) => {
                self.pairs.insert(i, (key, value));
                None
            }
        }
    }

    /// Remove a tag by key, returning its value if it was present.
    pub fn remove(&mut self, key: &str) -> Option<String> {
        match self.pairs.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => Some(self.pairs.remove(i).1),
            Err(_) => None,
        }
    }

    /// Iterate `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// The `highway=*` value, if present — the tag that marks an element as
    /// part of the road network and determines its RASED road type.
    #[inline]
    pub fn highway(&self) -> Option<&str> {
        self.get("highway")
    }
}

impl fmt::Display for Tags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for Tags {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Tags {
        Tags::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut t = Tags::new();
        assert!(t.is_empty());
        assert_eq!(t.set("highway", "residential"), None);
        assert_eq!(t.set("name", "Elm St"), None);
        assert_eq!(t.get("highway"), Some("residential"));
        assert_eq!(t.set("highway", "primary"), Some("residential".to_string()));
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove("name"), Some("Elm St".to_string()));
        assert_eq!(t.remove("name"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn pairs_stay_sorted_and_unique() {
        let t = Tags::from_pairs([("b", "2"), ("a", "1"), ("c", "3"), ("a", "override")]);
        let keys: Vec<&str> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b", "c"]);
        assert_eq!(t.get("a"), Some("override"));
    }

    #[test]
    fn highway_helper() {
        let t = Tags::from_pairs([("highway", "trunk")]);
        assert_eq!(t.highway(), Some("trunk"));
        assert_eq!(Tags::new().highway(), None);
    }

    #[test]
    fn display_is_ordered() {
        let t = Tags::from_pairs([("b", "2"), ("a", "1")]);
        assert_eq!(t.to_string(), "a=1, b=2");
    }
}
