//! Zones of interest (§VI-A): aggregate dimension values.
//!
//! The paper's Country dimension holds "all countries plus some selected
//! zones of interest (e.g., continents and US states)": an update in
//! Germany also counts toward the Europe zone. A [`ZoneMap`] records, per
//! country, which zone ids the update must additionally be attributed to;
//! the ingest pipeline expands records accordingly before cube building
//! (the warehouse keeps only the original row — samples are points, not
//! aggregates).
//!
//! US states are present in the country table as dimension values but
//! receive no counts from the synthetic generator (it does not model
//! sub-national boundaries); this is a documented simplification.

use crate::taxonomy::{CountryId, CountryTable};
use crate::update::UpdateRecord;
use std::collections::HashMap;

/// Continent assignment for the real country list, by country code.
/// Z-AF Africa, Z-AS Asia, Z-EU Europe, Z-NA North America, Z-OC Oceania,
/// Z-SA South America (Z-AN Antarctica holds no countries).
const CONTINENT_OF: &[(&str, &[&str])] = &[
    (
        "Z-EU",
        &[
            "DE", "FR", "GB", "IT", "PL", "ES", "NL", "AT", "CZ", "BE", "CH", "SE", "NO", "FI",
            "DK", "PT", "IE", "IS", "GR", "HU", "RO", "BG", "RS", "HR", "SI", "SK", "BA", "MK",
            "AL", "ME", "XK", "BY", "LT", "LV", "EE", "MD", "LU", "MT", "MC", "AD", "SM", "LI",
            "UA", "RU", "CY", "GI", "VA", "FO",
        ],
    ),
    (
        "Z-AS",
        &[
            "IN", "ID", "JP", "VN", "CN", "PH", "TR", "IR", "TH", "MY", "SG", "QA", "AE", "SA",
            "IQ", "SY", "IL", "JO", "LB", "PK", "BD", "LK", "NP", "MM", "KH", "LA", "KR", "KP",
            "MN", "KZ", "UZ", "TM", "KG", "TJ", "AF", "GE", "AM", "AZ", "BN", "TL", "MV", "BT",
            "OM", "YE", "KW", "BH", "PS", "TW", "HK", "MO",
        ],
    ),
    (
        "Z-NA",
        &[
            "US", "CA", "MX", "CU", "HT", "DO", "JM", "TT", "BS", "BB", "GT", "HN", "SV", "NI",
            "CR", "PA", "BZ", "GL",
        ],
    ),
    ("Z-SA", &["BR", "AR", "CO", "CL", "PE", "VE", "EC", "BO", "PY", "UY", "GY", "SR"]),
    (
        "Z-AF",
        &[
            "NG", "TZ", "CD", "ZA", "EG", "KE", "ET", "MA", "DZ", "TN", "LY", "SD", "SS", "ML",
            "NE", "TD", "MR", "SN", "GM", "GN", "GW", "SL", "LR", "CI", "GH", "TG", "BJ", "BF",
            "CM", "CF", "GA", "CG", "GQ", "AO", "ZM", "ZW", "MW", "MZ", "BW", "NA", "SZ", "LS",
            "MG", "MU", "SC", "KM", "DJ", "ER", "SO", "UG", "RW", "BI", "EH",
        ],
    ),
    (
        "Z-OC",
        &[
            "AU", "NZ", "PG", "FJ", "SB", "VU", "WS", "TO", "FM", "PW", "MH", "KI", "NR", "TV",
        ],
    ),
];

/// Per-country zone membership: expands an update's attribution to the
/// zones containing its country.
#[derive(Debug, Clone, Default)]
pub struct ZoneMap {
    /// `parents[country.index()]` = zone ids to also credit.
    parents: Vec<Vec<CountryId>>,
}

impl ZoneMap {
    /// No zones: every record attributes to its country only.
    pub fn none() -> ZoneMap {
        ZoneMap::default()
    }

    /// Build the continent zone map for a table: countries map to their
    /// continent when both the country and the `Z-*` zone entry are present
    /// in the table (truncated tables silently get partial coverage).
    pub fn continents(table: &CountryTable) -> ZoneMap {
        let mut by_code: HashMap<&str, CountryId> = HashMap::new();
        for (zone_code, members) in CONTINENT_OF {
            if let Some(zone_id) = table.by_code(zone_code) {
                for code in *members {
                    by_code.insert(code, zone_id);
                }
            }
        }
        let mut parents = vec![Vec::new(); table.len()];
        for id in table.ids() {
            let code = table.code(id).expect("id in table");
            if let Some(&zone) = by_code.get(code) {
                parents[id.index()].push(zone);
            }
        }
        ZoneMap { parents }
    }

    /// Build from explicit `(zone, members)` pairs (tests, custom regions).
    pub fn from_members(n_countries: usize, groups: &[(CountryId, &[CountryId])]) -> ZoneMap {
        let mut parents = vec![Vec::new(); n_countries];
        for (zone, members) in groups {
            for m in *members {
                if let Some(slot) = parents.get_mut(m.index()) {
                    slot.push(*zone);
                }
            }
        }
        ZoneMap { parents }
    }

    /// The zones containing `country` (empty when unmapped).
    pub fn parents(&self, country: CountryId) -> &[CountryId] {
        self.parents.get(country.index()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// True when no country has any parent zone.
    pub fn is_empty(&self) -> bool {
        self.parents.iter().all(|p| p.is_empty())
    }

    /// Expand one record into itself plus one copy per containing zone —
    /// the attribution rule for cube building.
    pub fn expand<'a>(&'a self, r: &'a UpdateRecord) -> impl Iterator<Item = UpdateRecord> + 'a {
        std::iter::once(*r).chain(
            self.parents(r.country).iter().map(move |&zone| UpdateRecord { country: zone, ..*r }),
        )
    }

    /// Expand a batch of records (convenience over [`ZoneMap::expand`]).
    pub fn expand_all(&self, records: &[UpdateRecord]) -> Vec<UpdateRecord> {
        let mut out = Vec::with_capacity(records.len());
        for r in records {
            out.extend(self.expand(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementType;
    use crate::ids::ChangesetId;
    use crate::taxonomy::RoadTypeId;
    use crate::update::UpdateType;

    fn rec(country: CountryId) -> UpdateRecord {
        UpdateRecord {
            element_type: ElementType::Way,
            update_type: UpdateType::Create,
            country,
            road_type: RoadTypeId(0),
            date: rased_temporal::Date::from_days(18_700),
            lat7: 0,
            lon7: 0,
            changeset: ChangesetId(1),
        }
    }

    #[test]
    fn continents_cover_every_real_country() {
        let table = CountryTable::full();
        let zones = ZoneMap::continents(&table);
        // Every non-zone entry of the real list must have a continent.
        let mut unmapped = Vec::new();
        for id in table.ids() {
            let code = table.code(id).unwrap();
            let is_zone = code.starts_with("Z-") || code.starts_with("US-");
            if !is_zone && zones.parents(id).is_empty() {
                unmapped.push(code.to_string());
            }
        }
        assert!(unmapped.is_empty(), "countries without a continent: {unmapped:?}");
    }

    #[test]
    fn germany_maps_to_europe() {
        let table = CountryTable::full();
        let zones = ZoneMap::continents(&table);
        let de = table.resolve("DE").unwrap();
        let eu = table.resolve("Z-EU").unwrap();
        assert_eq!(zones.parents(de), &[eu]);
        // Zones themselves have no parents.
        assert!(zones.parents(eu).is_empty());
    }

    #[test]
    fn truncated_table_yields_no_zones() {
        // 12-country table has no Z-* entries → empty map, not a panic.
        let table = CountryTable::with_cardinality(12);
        let zones = ZoneMap::continents(&table);
        assert!(zones.is_empty());
        assert!(zones.parents(CountryId(0)).is_empty());
    }

    #[test]
    fn expansion_duplicates_into_zones() {
        let table = CountryTable::full();
        let zones = ZoneMap::continents(&table);
        let us = table.resolve("US").unwrap();
        let na = table.resolve("Z-NA").unwrap();
        let expanded: Vec<UpdateRecord> = zones.expand(&rec(us)).collect();
        assert_eq!(expanded.len(), 2);
        assert_eq!(expanded[0].country, us);
        assert_eq!(expanded[1].country, na);
        // Everything except the country is preserved.
        assert_eq!(expanded[1].changeset, expanded[0].changeset);

        let batch = zones.expand_all(&[rec(us), rec(na)]);
        assert_eq!(batch.len(), 3, "zone-attributed records do not re-expand");
    }

    #[test]
    fn custom_zone_groups() {
        let zones = ZoneMap::from_members(
            5,
            &[(CountryId(4), &[CountryId(0), CountryId(1)]), (CountryId(3), &[CountryId(0)])],
        );
        assert_eq!(zones.parents(CountryId(0)), &[CountryId(4), CountryId(3)]);
        assert_eq!(zones.parents(CountryId(1)), &[CountryId(4)]);
        assert!(zones.parents(CountryId(2)).is_empty());
        let expanded = zones.expand_all(&[rec(CountryId(0))]);
        assert_eq!(expanded.len(), 3);
    }
}
