//! OSM elements: nodes, ways, relations (§II-A).

use crate::ids::{ChangesetId, ElementId, UserId, Version};
use crate::tags::Tags;
use rased_temporal::Date;
use std::fmt;

/// The three OSM element kinds (§II-A). This is also the first dimension of
/// every RASED data cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ElementType {
    Node = 0,
    Way = 1,
    Relation = 2,
}

impl ElementType {
    /// Number of element types — the cube-dimension cardinality.
    pub const CARDINALITY: usize = 3;
    /// All element types, in cube-dimension order.
    pub const ALL: [ElementType; 3] = [ElementType::Node, ElementType::Way, ElementType::Relation];

    /// Cube-dimension index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`ElementType::index`].
    pub fn from_index(i: usize) -> Option<ElementType> {
        match i {
            0 => Some(ElementType::Node),
            1 => Some(ElementType::Way),
            2 => Some(ElementType::Relation),
            _ => None,
        }
    }

    /// The XML tag name used in OSM files (`node`, `way`, `relation`).
    pub fn xml_name(self) -> &'static str {
        match self {
            ElementType::Node => "node",
            ElementType::Way => "way",
            ElementType::Relation => "relation",
        }
    }

    /// Parse an XML tag name.
    pub fn from_xml_name(s: &str) -> Option<ElementType> {
        match s {
            "node" => Some(ElementType::Node),
            "way" => Some(ElementType::Way),
            "relation" => Some(ElementType::Relation),
            _ => None,
        }
    }
}

impl fmt::Display for ElementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.xml_name())
    }
}

/// Version/audit metadata shared by every element version: who changed it,
/// when, in which changeset, and whether the version is still visible
/// (deleted elements keep a final, invisible version — §V, Monthly Crawler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionInfo {
    pub version: Version,
    pub date: Date,
    pub changeset: ChangesetId,
    pub user: UserId,
    /// `false` exactly for the tombstone version written by a delete.
    pub visible: bool,
}

impl VersionInfo {
    /// Metadata for a creating version.
    pub fn first(date: Date, changeset: ChangesetId, user: UserId) -> VersionInfo {
        VersionInfo { version: Version::FIRST, date, changeset, user, visible: true }
    }
}

/// A node: a point with latitude/longitude in 1e-7° fixed point (the OSM
/// wire precision; `i32` covers ±214° so the whole globe fits).
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    pub id: ElementId,
    pub info: VersionInfo,
    pub lat7: i32,
    pub lon7: i32,
    pub tags: Tags,
}

impl Node {
    /// Latitude in degrees.
    #[inline]
    pub fn lat(&self) -> f64 {
        self.lat7 as f64 * 1e-7
    }

    /// Longitude in degrees.
    #[inline]
    pub fn lon(&self) -> f64 {
        self.lon7 as f64 * 1e-7
    }

    /// Convert degrees to the 1e-7 fixed-point wire representation.
    #[inline]
    pub fn deg_to_fixed(deg: f64) -> i32 {
        (deg * 1e7).round() as i32
    }
}

/// A way: an ordered list of node references forming connected segments.
#[derive(Debug, Clone, PartialEq)]
pub struct Way {
    pub id: ElementId,
    pub info: VersionInfo,
    pub nodes: Vec<ElementId>,
    pub tags: Tags,
}

/// A member of a relation: a typed element reference with a role string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberRef {
    pub element_type: ElementType,
    pub id: ElementId,
    pub role: String,
}

/// A relation: relates elements of any type (used for multi-part roads,
/// routes, turn restrictions, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    pub id: ElementId,
    pub info: VersionInfo,
    pub members: Vec<MemberRef>,
    pub tags: Tags,
}

/// Any OSM element. One version of one entity; full-history files carry many
/// `Element`s per `(type, id)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    Node(Node),
    Way(Way),
    Relation(Relation),
}

impl Element {
    /// The element kind.
    pub fn element_type(&self) -> ElementType {
        match self {
            Element::Node(_) => ElementType::Node,
            Element::Way(_) => ElementType::Way,
            Element::Relation(_) => ElementType::Relation,
        }
    }

    /// The element id (unique within its type).
    pub fn id(&self) -> ElementId {
        match self {
            Element::Node(n) => n.id,
            Element::Way(w) => w.id,
            Element::Relation(r) => r.id,
        }
    }

    /// The version/audit metadata.
    pub fn info(&self) -> &VersionInfo {
        match self {
            Element::Node(n) => &n.info,
            Element::Way(w) => &w.info,
            Element::Relation(r) => &r.info,
        }
    }

    /// Mutable version/audit metadata.
    pub fn info_mut(&mut self) -> &mut VersionInfo {
        match self {
            Element::Node(n) => &mut n.info,
            Element::Way(w) => &mut w.info,
            Element::Relation(r) => &mut r.info,
        }
    }

    /// The element's tags.
    pub fn tags(&self) -> &Tags {
        match self {
            Element::Node(n) => &n.tags,
            Element::Way(w) => &w.tags,
            Element::Relation(r) => &r.tags,
        }
    }

    /// Mutable tags.
    pub fn tags_mut(&mut self) -> &mut Tags {
        match self {
            Element::Node(n) => &mut n.tags,
            Element::Way(w) => &mut w.tags,
            Element::Relation(r) => &mut r.tags,
        }
    }

    /// The "geometry" of an element for update classification (§V, Monthly
    /// Crawler): a node's coordinates, or the member/node-reference list of
    /// a way/relation. Two versions with equal geometry but different tags
    /// constitute a *metadata* update; differing geometry is a *geometry*
    /// update.
    pub fn geometry_eq(&self, other: &Element) -> bool {
        match (self, other) {
            (Element::Node(a), Element::Node(b)) => a.lat7 == b.lat7 && a.lon7 == b.lon7,
            (Element::Way(a), Element::Way(b)) => a.nodes == b.nodes,
            (Element::Relation(a), Element::Relation(b)) => a.members == b.members,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> VersionInfo {
        VersionInfo::first("2021-03-04".parse().unwrap(), ChangesetId(7), UserId(1))
    }

    fn node(lat7: i32, lon7: i32) -> Node {
        Node { id: ElementId(1), info: info(), lat7, lon7, tags: Tags::new() }
    }

    #[test]
    fn element_type_indexing_roundtrip() {
        for t in ElementType::ALL {
            assert_eq!(ElementType::from_index(t.index()), Some(t));
            assert_eq!(ElementType::from_xml_name(t.xml_name()), Some(t));
        }
        assert_eq!(ElementType::from_index(3), None);
        assert_eq!(ElementType::from_xml_name("bogus"), None);
    }

    #[test]
    fn node_fixed_point_conversions() {
        let n = node(Node::deg_to_fixed(44.97), Node::deg_to_fixed(-93.26));
        assert!((n.lat() - 44.97).abs() < 1e-6);
        assert!((n.lon() + 93.26).abs() < 1e-6);
    }

    #[test]
    fn geometry_comparison_per_type() {
        let a = Element::Node(node(10, 20));
        let b = Element::Node(node(10, 20));
        let c = Element::Node(node(10, 21));
        assert!(a.geometry_eq(&b));
        assert!(!a.geometry_eq(&c));

        let w1 = Element::Way(Way { id: ElementId(5), info: info(), nodes: vec![ElementId(1), ElementId(2)], tags: Tags::new() });
        let mut w2 = w1.clone();
        assert!(w1.geometry_eq(&w2));
        if let Element::Way(w) = &mut w2 {
            w.nodes.push(ElementId(3));
        }
        assert!(!w1.geometry_eq(&w2));
        // Cross-type geometry never matches.
        assert!(!a.geometry_eq(&w1));
    }

    #[test]
    fn metadata_vs_geometry_distinction() {
        let mut a = Element::Node(node(10, 20));
        let b = a.clone();
        a.tags_mut().set("name", "somewhere");
        // Same geometry, different tags → the monthly crawler calls this a
        // metadata update.
        assert!(a.geometry_eq(&b));
        assert_ne!(a.tags(), b.tags());
    }

    #[test]
    fn tombstone_visibility() {
        let mut e = Element::Node(node(1, 2));
        assert!(e.info().visible);
        e.info_mut().visible = false;
        e.info_mut().version = e.info().version.next();
        assert!(!e.info().visible);
        assert_eq!(e.info().version, Version(2));
    }
}
