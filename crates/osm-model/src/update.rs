//! The *UpdateList* tuple and update-type vocabulary (§III, §V).

use crate::element::ElementType;
use crate::ids::ChangesetId;
use crate::taxonomy::{CountryId, RoadTypeId};
use rased_temporal::Date;
use std::fmt;

/// Classification of a map update — the fourth cube dimension.
///
/// The paper names four operations: "newly created roads/nodes, deleted
/// roads/nodes, road geometry update, and road metadata update". The daily
/// crawler, however, can only tell *new* from *updated* ("we can only infer
/// whether an update is a new or updated tuple", §V); the refinement into
/// geometry vs. metadata arrives with the monthly full-history crawl. We
/// model that lifecycle explicitly with a fifth variant,
/// [`UpdateType::Unclassified`]: daily cubes hold `Create`/`Delete`/
/// `Unclassified` counts, and the monthly rebuild (§VI-A) replaces
/// `Unclassified` with the `Geometry`/`Metadata` split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum UpdateType {
    /// A newly created element (version 1).
    Create = 0,
    /// A deletion (final, invisible version).
    Delete = 1,
    /// A change to coordinates or member/node lists.
    Geometry = 2,
    /// A change to tags only.
    Metadata = 3,
    /// A modification whose geometry/metadata split is not yet known —
    /// the daily crawler's coarse "update".
    Unclassified = 4,
}

impl UpdateType {
    /// Cube-dimension cardinality (the paper's four classes plus the
    /// pre-refinement `Unclassified` slot; see type docs).
    pub const CARDINALITY: usize = 5;

    /// All update types, in cube-dimension order.
    pub const ALL: [UpdateType; 5] = [
        UpdateType::Create,
        UpdateType::Delete,
        UpdateType::Geometry,
        UpdateType::Metadata,
        UpdateType::Unclassified,
    ];

    /// The set matching the paper's `UpdateType IN [New, Update]` filter:
    /// everything except deletions.
    pub const NEW_OR_UPDATE: [UpdateType; 4] = [
        UpdateType::Create,
        UpdateType::Geometry,
        UpdateType::Metadata,
        UpdateType::Unclassified,
    ];

    /// The set matching a plain "Update" filter: modifications of any kind.
    pub const UPDATE: [UpdateType; 3] =
        [UpdateType::Geometry, UpdateType::Metadata, UpdateType::Unclassified];

    /// Cube-dimension index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`UpdateType::index`].
    pub fn from_index(i: usize) -> Option<UpdateType> {
        Self::ALL.get(i).copied()
    }

    /// Short lowercase label used by file formats and the CLI.
    pub fn label(self) -> &'static str {
        match self {
            UpdateType::Create => "create",
            UpdateType::Delete => "delete",
            UpdateType::Geometry => "geometry",
            UpdateType::Metadata => "metadata",
            UpdateType::Unclassified => "update",
        }
    }

    /// Parse a [`UpdateType::label`].
    pub fn from_label(s: &str) -> Option<UpdateType> {
        match s {
            "create" => Some(UpdateType::Create),
            "delete" => Some(UpdateType::Delete),
            "geometry" => Some(UpdateType::Geometry),
            "metadata" => Some(UpdateType::Metadata),
            "update" => Some(UpdateType::Unclassified),
            _ => None,
        }
    }
}

impl fmt::Display for UpdateType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Serialized size of an [`UpdateRecord`] in bytes.
pub const UPDATE_RECORD_BYTES: usize = 28;

/// One row of the *UpdateList* relation — the eight-attribute tuple produced
/// by the Data Collection module (§V) and consumed by Storage & Indexing:
/// `⟨ElementType, Date, Country, Latitude, Longitude, RoadType, UpdateType,
/// ChangesetID⟩`.
///
/// Coordinates are stored in OSM's 1e-7° fixed point. The record is
/// fixed-width (28 bytes, little-endian) so the warehouse heap file and the
/// row-scan baseline can address rows by offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateRecord {
    pub element_type: ElementType,
    pub update_type: UpdateType,
    pub country: CountryId,
    pub road_type: RoadTypeId,
    pub date: Date,
    pub lat7: i32,
    pub lon7: i32,
    pub changeset: ChangesetId,
}

impl UpdateRecord {
    /// Latitude in degrees.
    #[inline]
    pub fn lat(&self) -> f64 {
        self.lat7 as f64 * 1e-7
    }

    /// Longitude in degrees.
    #[inline]
    pub fn lon(&self) -> f64 {
        self.lon7 as f64 * 1e-7
    }

    /// Encode into the fixed 28-byte little-endian layout.
    ///
    /// Layout: `etype u8 | utype u8 | country u16 | road u16 | date i32 |
    /// lat7 i32 | lon7 i32 | pad u16 | changeset u64` — fields ordered to
    /// keep the u64 8-byte aligned when records are packed back-to-back.
    pub fn encode(&self) -> [u8; UPDATE_RECORD_BYTES] {
        let mut b = [0u8; UPDATE_RECORD_BYTES];
        b[0] = self.element_type as u8;
        b[1] = self.update_type as u8;
        b[2..4].copy_from_slice(&self.country.0.to_le_bytes());
        b[4..6].copy_from_slice(&self.road_type.0.to_le_bytes());
        b[6..10].copy_from_slice(&self.date.days().to_le_bytes());
        b[10..14].copy_from_slice(&self.lat7.to_le_bytes());
        b[14..18].copy_from_slice(&self.lon7.to_le_bytes());
        // b[18..20] is padding, left zero.
        b[20..28].copy_from_slice(&self.changeset.0.to_le_bytes());
        b
    }

    /// Decode a 28-byte buffer; `None` on malformed discriminants.
    pub fn decode(b: &[u8; UPDATE_RECORD_BYTES]) -> Option<UpdateRecord> {
        let element_type = ElementType::from_index(b[0] as usize)?;
        let update_type = UpdateType::from_index(b[1] as usize)?;
        let country = CountryId(u16::from_le_bytes([b[2], b[3]]));
        let road_type = RoadTypeId(u16::from_le_bytes([b[4], b[5]]));
        let date = Date::from_days(i32::from_le_bytes([b[6], b[7], b[8], b[9]]));
        let lat7 = i32::from_le_bytes([b[10], b[11], b[12], b[13]]);
        let lon7 = i32::from_le_bytes([b[14], b[15], b[16], b[17]]);
        let changeset = ChangesetId(u64::from_le_bytes([
            b[20], b[21], b[22], b[23], b[24], b[25], b[26], b[27],
        ]));
        Some(UpdateRecord {
            element_type,
            update_type,
            country,
            road_type,
            date,
            lat7,
            lon7,
            changeset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UpdateRecord {
        UpdateRecord {
            element_type: ElementType::Way,
            update_type: UpdateType::Geometry,
            country: CountryId(42),
            road_type: RoadTypeId(7),
            date: "2021-11-30".parse().unwrap(),
            lat7: 449_700_000,
            lon7: -932_600_000,
            changeset: ChangesetId(123_456_789_012),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = sample();
        let b = r.encode();
        assert_eq!(UpdateRecord::decode(&b), Some(r));
    }

    #[test]
    fn decode_rejects_bad_discriminants() {
        let mut b = sample().encode();
        b[0] = 9; // invalid element type
        assert_eq!(UpdateRecord::decode(&b), None);
        let mut b2 = sample().encode();
        b2[1] = 200; // invalid update type
        assert_eq!(UpdateRecord::decode(&b2), None);
    }

    #[test]
    fn update_type_sets_match_paper_semantics() {
        // "New or Update" excludes exactly Delete.
        assert_eq!(UpdateType::NEW_OR_UPDATE.len(), UpdateType::CARDINALITY - 1);
        assert!(!UpdateType::NEW_OR_UPDATE.contains(&UpdateType::Delete));
        // "Update" excludes Create and Delete.
        assert!(!UpdateType::UPDATE.contains(&UpdateType::Create));
        assert!(!UpdateType::UPDATE.contains(&UpdateType::Delete));
        assert!(UpdateType::UPDATE.contains(&UpdateType::Unclassified));
    }

    #[test]
    fn label_roundtrip() {
        for t in UpdateType::ALL {
            assert_eq!(UpdateType::from_label(t.label()), Some(t));
        }
        assert_eq!(UpdateType::from_label("explode"), None);
    }

    #[test]
    fn index_roundtrip_and_cardinality() {
        for (i, t) in UpdateType::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(UpdateType::from_index(i), Some(*t));
        }
        assert_eq!(UpdateType::from_index(UpdateType::CARDINALITY), None);
    }

    #[test]
    fn coordinates_in_degrees() {
        let r = sample();
        assert!((r.lat() - 44.97).abs() < 1e-6);
        assert!((r.lon() + 93.26).abs() < 1e-6);
    }

    #[test]
    fn negative_dates_and_coords_roundtrip() {
        let mut r = sample();
        r.date = "1969-12-25".parse().unwrap(); // negative day count
        r.lat7 = -900_000_000;
        r.lon7 = -1_800_000_000;
        let b = r.encode();
        assert_eq!(UpdateRecord::decode(&b), Some(r));
    }
}
