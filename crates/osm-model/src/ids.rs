//! Strongly-typed identifiers for OSM entities.
//!
//! Newtypes instead of bare integers so an element id can never be passed
//! where a changeset id is expected — the collector joins diffs against
//! changesets by id and a silent mix-up would corrupt every downstream cube.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty)) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw integer value.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_type! {
    /// Identifier of an OSM element (node, way, or relation). Ids are only
    /// unique *within* an element type, as in OSM itself.
    ElementId(i64)
}

id_type! {
    /// Identifier of a changeset — the unit of update submission (§II-B).
    ChangesetId(u64)
}

id_type! {
    /// Identifier of a contributing user.
    UserId(u64)
}

/// An element version number. OSM versions start at 1 for the creating edit
/// and increase by one per modification; deletion produces a final version
/// with `visible = false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version(pub u32);

impl Version {
    /// The version assigned by the creating edit.
    pub const FIRST: Version = Version(1);

    /// The raw version number.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The next version after this one.
    #[inline]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }

    /// True for the creating version.
    #[inline]
    pub fn is_first(self) -> bool {
        self.0 == 1
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_lifecycle() {
        let v = Version::FIRST;
        assert!(v.is_first());
        assert_eq!(v.next(), Version(2));
        assert!(!v.next().is_first());
    }

    #[test]
    fn ids_are_distinct_types_with_display() {
        let e = ElementId(42);
        let c = ChangesetId(42);
        assert_eq!(e.to_string(), "42");
        assert_eq!(c.to_string(), "42");
        assert_eq!(e.raw(), 42);
        // Ordering and hashing come for free.
        assert!(ElementId(1) < ElementId(2));
    }
}
