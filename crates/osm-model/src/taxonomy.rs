//! Dimension taxonomies: countries/zones and road types (§VI-A).
//!
//! The paper's cube dimensions: *Country* — "300+ values presenting all
//! countries plus some selected zones of interest (e.g., continents and US
//! states)" — and *RoadType* — "150 possible road types, including highway,
//! residential, service, and truck roads".
//!
//! Both tables are **cardinality-parameterized**: the algorithms downstream
//! (cube roll-up, level optimization, caching) are generic over dimension
//! sizes, so tests use tiny tables while the benchmark harness can run
//! paper-scale ones. Ids are dense `u16` indexes into the table — exactly
//! the cube-dimension coordinates.

use std::collections::HashMap;
use std::fmt;

/// Dense id of a country or zone: the cube-dimension coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountryId(pub u16);

impl CountryId {
    /// Cube-dimension index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CountryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Dense id of a road type: the cube-dimension coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoadTypeId(pub u16);

impl RoadTypeId {
    /// Cube-dimension index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RoadTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Real countries: `(ISO-like code, display name)`. The first entries are the
/// world's most actively mapped countries (per OSM edit statistics), so a
/// truncated table still exercises realistic names.
const COUNTRIES: &[(&str, &str)] = &[
    ("US", "United States"),
    ("DE", "Germany"),
    ("FR", "France"),
    ("IN", "India"),
    ("BR", "Brazil"),
    ("RU", "Russia"),
    ("GB", "United Kingdom"),
    ("IT", "Italy"),
    ("PL", "Poland"),
    ("ID", "Indonesia"),
    ("JP", "Japan"),
    ("CA", "Canada"),
    ("ES", "Spain"),
    ("MX", "Mexico"),
    ("NL", "Netherlands"),
    ("VN", "Vietnam"),
    ("CN", "China"),
    ("AU", "Australia"),
    ("UA", "Ukraine"),
    ("PH", "Philippines"),
    ("AT", "Austria"),
    ("CZ", "Czechia"),
    ("BE", "Belgium"),
    ("CH", "Switzerland"),
    ("SE", "Sweden"),
    ("NO", "Norway"),
    ("FI", "Finland"),
    ("DK", "Denmark"),
    ("TR", "Turkey"),
    ("IR", "Iran"),
    ("NG", "Nigeria"),
    ("TZ", "Tanzania"),
    ("CD", "DR Congo"),
    ("AR", "Argentina"),
    ("CO", "Colombia"),
    ("CL", "Chile"),
    ("PE", "Peru"),
    ("ZA", "South Africa"),
    ("EG", "Egypt"),
    ("KE", "Kenya"),
    ("ET", "Ethiopia"),
    ("TH", "Thailand"),
    ("MY", "Malaysia"),
    ("SG", "Singapore"),
    ("QA", "Qatar"),
    ("AE", "United Arab Emirates"),
    ("SA", "Saudi Arabia"),
    ("IQ", "Iraq"),
    ("SY", "Syria"),
    ("IL", "Israel"),
    ("JO", "Jordan"),
    ("LB", "Lebanon"),
    ("PK", "Pakistan"),
    ("BD", "Bangladesh"),
    ("LK", "Sri Lanka"),
    ("NP", "Nepal"),
    ("MM", "Myanmar"),
    ("KH", "Cambodia"),
    ("LA", "Laos"),
    ("KR", "South Korea"),
    ("KP", "North Korea"),
    ("MN", "Mongolia"),
    ("KZ", "Kazakhstan"),
    ("UZ", "Uzbekistan"),
    ("TM", "Turkmenistan"),
    ("KG", "Kyrgyzstan"),
    ("TJ", "Tajikistan"),
    ("AF", "Afghanistan"),
    ("PT", "Portugal"),
    ("IE", "Ireland"),
    ("IS", "Iceland"),
    ("GR", "Greece"),
    ("HU", "Hungary"),
    ("RO", "Romania"),
    ("BG", "Bulgaria"),
    ("RS", "Serbia"),
    ("HR", "Croatia"),
    ("SI", "Slovenia"),
    ("SK", "Slovakia"),
    ("BA", "Bosnia and Herzegovina"),
    ("MK", "North Macedonia"),
    ("AL", "Albania"),
    ("ME", "Montenegro"),
    ("XK", "Kosovo"),
    ("BY", "Belarus"),
    ("LT", "Lithuania"),
    ("LV", "Latvia"),
    ("EE", "Estonia"),
    ("MD", "Moldova"),
    ("GE", "Georgia"),
    ("AM", "Armenia"),
    ("AZ", "Azerbaijan"),
    ("LU", "Luxembourg"),
    ("MT", "Malta"),
    ("CY", "Cyprus"),
    ("MC", "Monaco"),
    ("AD", "Andorra"),
    ("SM", "San Marino"),
    ("LI", "Liechtenstein"),
    ("VE", "Venezuela"),
    ("EC", "Ecuador"),
    ("BO", "Bolivia"),
    ("PY", "Paraguay"),
    ("UY", "Uruguay"),
    ("GY", "Guyana"),
    ("SR", "Suriname"),
    ("CU", "Cuba"),
    ("HT", "Haiti"),
    ("DO", "Dominican Republic"),
    ("JM", "Jamaica"),
    ("TT", "Trinidad and Tobago"),
    ("BS", "Bahamas"),
    ("BB", "Barbados"),
    ("GT", "Guatemala"),
    ("HN", "Honduras"),
    ("SV", "El Salvador"),
    ("NI", "Nicaragua"),
    ("CR", "Costa Rica"),
    ("PA", "Panama"),
    ("BZ", "Belize"),
    ("MA", "Morocco"),
    ("DZ", "Algeria"),
    ("TN", "Tunisia"),
    ("LY", "Libya"),
    ("SD", "Sudan"),
    ("SS", "South Sudan"),
    ("ML", "Mali"),
    ("NE", "Niger"),
    ("TD", "Chad"),
    ("MR", "Mauritania"),
    ("SN", "Senegal"),
    ("GM", "Gambia"),
    ("GN", "Guinea"),
    ("GW", "Guinea-Bissau"),
    ("SL", "Sierra Leone"),
    ("LR", "Liberia"),
    ("CI", "Ivory Coast"),
    ("GH", "Ghana"),
    ("TG", "Togo"),
    ("BJ", "Benin"),
    ("BF", "Burkina Faso"),
    ("CM", "Cameroon"),
    ("CF", "Central African Republic"),
    ("GA", "Gabon"),
    ("CG", "Congo-Brazzaville"),
    ("GQ", "Equatorial Guinea"),
    ("AO", "Angola"),
    ("ZM", "Zambia"),
    ("ZW", "Zimbabwe"),
    ("MW", "Malawi"),
    ("MZ", "Mozambique"),
    ("BW", "Botswana"),
    ("NA", "Namibia"),
    ("SZ", "Eswatini"),
    ("LS", "Lesotho"),
    ("MG", "Madagascar"),
    ("MU", "Mauritius"),
    ("SC", "Seychelles"),
    ("KM", "Comoros"),
    ("DJ", "Djibouti"),
    ("ER", "Eritrea"),
    ("SO", "Somalia"),
    ("UG", "Uganda"),
    ("RW", "Rwanda"),
    ("BI", "Burundi"),
    ("NZ", "New Zealand"),
    ("PG", "Papua New Guinea"),
    ("FJ", "Fiji"),
    ("SB", "Solomon Islands"),
    ("VU", "Vanuatu"),
    ("WS", "Samoa"),
    ("TO", "Tonga"),
    ("FM", "Micronesia"),
    ("PW", "Palau"),
    ("MH", "Marshall Islands"),
    ("KI", "Kiribati"),
    ("NR", "Nauru"),
    ("TV", "Tuvalu"),
    ("BN", "Brunei"),
    ("TL", "Timor-Leste"),
    ("MV", "Maldives"),
    ("BT", "Bhutan"),
    ("OM", "Oman"),
    ("YE", "Yemen"),
    ("KW", "Kuwait"),
    ("BH", "Bahrain"),
    ("PS", "Palestine"),
    ("EH", "Western Sahara"),
    ("GL", "Greenland"),
    ("FO", "Faroe Islands"),
    ("GI", "Gibraltar"),
    ("VA", "Vatican City"),
    ("TW", "Taiwan"),
    ("HK", "Hong Kong"),
    ("MO", "Macao"),
];

/// Zones of interest appended after the countries (paper: continents and US
/// states). `(code, name)`.
const ZONES: &[(&str, &str)] = &[
    ("Z-AF", "Africa"),
    ("Z-AN", "Antarctica"),
    ("Z-AS", "Asia"),
    ("Z-EU", "Europe"),
    ("Z-NA", "North America"),
    ("Z-OC", "Oceania"),
    ("Z-SA", "South America"),
    ("US-AL", "Alabama"),
    ("US-AK", "Alaska"),
    ("US-AZ", "Arizona"),
    ("US-AR", "Arkansas"),
    ("US-CA", "California"),
    ("US-CO", "Colorado"),
    ("US-CT", "Connecticut"),
    ("US-DE", "Delaware"),
    ("US-FL", "Florida"),
    ("US-GA", "Georgia (US)"),
    ("US-HI", "Hawaii"),
    ("US-ID", "Idaho"),
    ("US-IL", "Illinois"),
    ("US-IN", "Indiana"),
    ("US-IA", "Iowa"),
    ("US-KS", "Kansas"),
    ("US-KY", "Kentucky"),
    ("US-LA", "Louisiana"),
    ("US-ME", "Maine"),
    ("US-MD", "Maryland"),
    ("US-MA", "Massachusetts"),
    ("US-MI", "Michigan"),
    ("US-MN", "Minnesota"),
    ("US-MS", "Mississippi"),
    ("US-MO", "Missouri"),
    ("US-MT", "Montana"),
    ("US-NE", "Nebraska"),
    ("US-NV", "Nevada"),
    ("US-NH", "New Hampshire"),
    ("US-NJ", "New Jersey"),
    ("US-NM", "New Mexico"),
    ("US-NY", "New York"),
    ("US-NC", "North Carolina"),
    ("US-ND", "North Dakota"),
    ("US-OH", "Ohio"),
    ("US-OK", "Oklahoma"),
    ("US-OR", "Oregon"),
    ("US-PA", "Pennsylvania"),
    ("US-RI", "Rhode Island"),
    ("US-SC", "South Carolina"),
    ("US-SD", "South Dakota"),
    ("US-TN", "Tennessee"),
    ("US-TX", "Texas"),
    ("US-UT", "Utah"),
    ("US-VT", "Vermont"),
    ("US-VA", "Virginia"),
    ("US-WA", "Washington"),
    ("US-WV", "West Virginia"),
    ("US-WI", "Wisconsin"),
    ("US-WY", "Wyoming"),
    ("US-DC", "District of Columbia"),
];

/// Real countries + zones available without synthetic padding.
pub const COUNTRY_COUNT_FULL: usize = COUNTRIES.len() + ZONES.len();

/// Real OSM `highway=*` values, ordered roughly by importance. Sub-typed
/// entries (`service:driveway`, `track:grade1`) mirror OSM's secondary tags
/// that RASED folds into its road-type dimension.
const ROAD_TYPES: &[&str] = &[
    "motorway",
    "trunk",
    "primary",
    "secondary",
    "tertiary",
    "unclassified",
    "residential",
    "service",
    "motorway_link",
    "trunk_link",
    "primary_link",
    "secondary_link",
    "tertiary_link",
    "living_street",
    "pedestrian",
    "track",
    "busway",
    "bus_guideway",
    "escape",
    "raceway",
    "road",
    "footway",
    "bridleway",
    "steps",
    "corridor",
    "path",
    "cycleway",
    "construction",
    "proposed",
    "abandoned",
    "platform",
    "rest_area",
    "services",
    "elevator",
    "emergency_bay",
    "crossing",
    "mini_roundabout",
    "motorway_junction",
    "passing_place",
    "speed_camera",
    "street_lamp",
    "stop",
    "give_way",
    "traffic_signals",
    "turning_circle",
    "turning_loop",
    "toll_gantry",
    "milestone",
    "service:driveway",
    "service:parking_aisle",
    "service:alley",
    "service:emergency_access",
    "service:drive-through",
    "track:grade1",
    "track:grade2",
    "track:grade3",
    "track:grade4",
    "track:grade5",
    "footway:sidewalk",
    "footway:crossing",
    "cycleway:lane",
    "cycleway:track",
    "path:mtb",
    "disused",
    "razed",
    "planned",
    "trailhead",
    "ford",
    "traffic_mirror",
    "ladder",
];

/// Real road types available without synthetic padding.
pub const ROAD_TYPE_COUNT_FULL: usize = ROAD_TYPES.len();

/// Maps a coordinate to the country/zone containing it.
///
/// The daily crawler (§V) resolves way/relation updates to countries via
/// their changeset's bounding-box center; the generator's synthetic world
/// atlas implements this trait, and tests can plug in trivial resolvers.
pub trait CountryResolver {
    /// Locate a point given in 1e-7° fixed-point coordinates. `None` when
    /// the point is in no known country (e.g. open ocean).
    fn locate7(&self, lat7: i32, lon7: i32) -> Option<CountryId>;
}

impl<F> CountryResolver for F
where
    F: Fn(i32, i32) -> Option<CountryId>,
{
    fn locate7(&self, lat7: i32, lon7: i32) -> Option<CountryId> {
        self(lat7, lon7)
    }
}

/// A dense table mapping [`CountryId`]s to codes/names and back.
#[derive(Debug, Clone)]
pub struct CountryTable {
    codes: Vec<String>,
    names: Vec<String>,
    by_code: HashMap<String, CountryId>,
    by_name: HashMap<String, CountryId>,
}

impl CountryTable {
    /// The full paper-scale table: every real country followed by every zone
    /// (continents, US states).
    pub fn full() -> CountryTable {
        Self::with_cardinality(COUNTRY_COUNT_FULL)
    }

    /// A table with exactly `n` entries. `n` up to [`COUNTRY_COUNT_FULL`]
    /// takes a prefix of the real list; beyond that, synthetic
    /// `ZZn`/`Region n` entries are appended (documented substitution — the
    /// cube algorithms only care about cardinality).
    pub fn with_cardinality(n: usize) -> CountryTable {
        assert!(n >= 1, "country table must have at least one entry");
        assert!(n <= u16::MAX as usize, "country cardinality exceeds u16 id space");
        let mut codes = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        for i in 0..n {
            let (code, name) = if i < COUNTRIES.len() {
                let (c, nm) = COUNTRIES[i];
                (c.to_string(), nm.to_string())
            } else if i < COUNTRY_COUNT_FULL {
                let (c, nm) = ZONES[i - COUNTRIES.len()];
                (c.to_string(), nm.to_string())
            } else {
                (format!("ZZ{i}"), format!("Region {i}"))
            };
            codes.push(code);
            names.push(name);
        }
        let by_code = codes
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), CountryId(i as u16)))
            .collect();
        let by_name = names
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), CountryId(i as u16)))
            .collect();
        CountryTable { codes, names, by_code, by_name }
    }

    /// Number of entries (the cube-dimension cardinality).
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when empty (never, given the constructor assertion).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The code for an id, or `None` if out of range.
    pub fn code(&self, id: CountryId) -> Option<&str> {
        self.codes.get(id.index()).map(|s| s.as_str())
    }

    /// The display name for an id.
    pub fn name(&self, id: CountryId) -> Option<&str> {
        self.names.get(id.index()).map(|s| s.as_str())
    }

    /// Resolve a code (`"US"`) to an id.
    pub fn by_code(&self, code: &str) -> Option<CountryId> {
        self.by_code.get(code).copied()
    }

    /// Resolve a display name (`"United States"`) to an id.
    pub fn by_name(&self, name: &str) -> Option<CountryId> {
        self.by_name.get(name).copied()
    }

    /// Resolve either a code or a display name.
    pub fn resolve(&self, s: &str) -> Option<CountryId> {
        self.by_code(s).or_else(|| self.by_name(s))
    }

    /// Iterate all ids in table order.
    pub fn ids(&self) -> impl Iterator<Item = CountryId> + '_ {
        (0..self.codes.len() as u16).map(CountryId)
    }
}

/// A dense table mapping [`RoadTypeId`]s to `highway=*` values and back.
#[derive(Debug, Clone)]
pub struct RoadTypeTable {
    values: Vec<String>,
    by_value: HashMap<String, RoadTypeId>,
}

impl RoadTypeTable {
    /// The paper-scale table (150 road types): every real value plus
    /// synthetic `special_n` padding.
    pub fn paper_scale() -> RoadTypeTable {
        Self::with_cardinality(150)
    }

    /// The table of real `highway=*` values only.
    pub fn full() -> RoadTypeTable {
        Self::with_cardinality(ROAD_TYPE_COUNT_FULL)
    }

    /// A table with exactly `n` entries; a prefix of the real values,
    /// extended with synthetic `special_n` values when `n` exceeds
    /// [`ROAD_TYPE_COUNT_FULL`].
    pub fn with_cardinality(n: usize) -> RoadTypeTable {
        assert!(n >= 1, "road-type table must have at least one entry");
        assert!(n <= u16::MAX as usize, "road-type cardinality exceeds u16 id space");
        let mut values: Vec<String> =
            ROAD_TYPES.iter().take(n).map(|v| v.to_string()).collect();
        for i in values.len()..n {
            values.push(format!("special_{i}"));
        }
        let by_value = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), RoadTypeId(i as u16)))
            .collect();
        RoadTypeTable { values, by_value }
    }

    /// Number of entries (the cube-dimension cardinality).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty (never, given the constructor assertion).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `highway=*` value for an id.
    pub fn value(&self, id: RoadTypeId) -> Option<&str> {
        self.values.get(id.index()).map(|s| s.as_str())
    }

    /// Resolve a `highway=*` value to an id.
    pub fn by_value(&self, value: &str) -> Option<RoadTypeId> {
        self.by_value.get(value).copied()
    }

    /// Iterate all ids in table order.
    pub fn ids(&self) -> impl Iterator<Item = RoadTypeId> + '_ {
        (0..self.values.len() as u16).map(RoadTypeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_tables_meet_paper_cardinalities() {
        let c = CountryTable::full();
        // "300+ values presenting all countries plus some selected zones".
        assert!(c.len() >= 240, "got {}", c.len());
        let r = RoadTypeTable::paper_scale();
        assert_eq!(r.len(), 150);
    }

    #[test]
    fn code_and_name_lookups_roundtrip() {
        let t = CountryTable::full();
        for id in t.ids() {
            assert_eq!(t.by_code(t.code(id).unwrap()), Some(id));
            assert_eq!(t.by_name(t.name(id).unwrap()), Some(id));
        }
    }

    #[test]
    fn resolve_accepts_code_or_name() {
        let t = CountryTable::full();
        let us = t.resolve("US").unwrap();
        assert_eq!(t.resolve("United States"), Some(us));
        assert_eq!(t.name(us), Some("United States"));
        assert_eq!(t.resolve("Atlantis"), None);
    }

    #[test]
    fn zones_follow_countries() {
        let t = CountryTable::full();
        let africa = t.resolve("Africa").unwrap();
        assert!(africa.index() >= COUNTRIES.len());
        let mn = t.resolve("US-MN").unwrap();
        assert_eq!(t.name(mn), Some("Minnesota"));
    }

    #[test]
    fn truncated_and_padded_tables() {
        let small = CountryTable::with_cardinality(10);
        assert_eq!(small.len(), 10);
        assert_eq!(small.code(CountryId(0)), Some("US"));
        assert_eq!(small.code(CountryId(10)), None);

        let padded = CountryTable::with_cardinality(COUNTRY_COUNT_FULL + 5);
        assert!(padded.code(CountryId((COUNTRY_COUNT_FULL + 2) as u16)).unwrap().starts_with("ZZ"));
    }

    #[test]
    fn road_type_lookups() {
        let t = RoadTypeTable::paper_scale();
        let res = t.by_value("residential").unwrap();
        assert_eq!(t.value(res), Some("residential"));
        assert!(t.by_value("special_149").is_some());
        assert_eq!(t.by_value("not_a_road"), None);
        // Dense ids.
        assert_eq!(t.ids().count(), 150);
    }

    #[test]
    fn road_type_values_are_unique() {
        let t = RoadTypeTable::paper_scale();
        let mut seen = std::collections::HashSet::new();
        for id in t.ids() {
            assert!(seen.insert(t.value(id).unwrap().to_string()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_cardinality_rejected() {
        let _ = RoadTypeTable::with_cardinality(0);
    }
}
