//! OSM conceptual data model and RASED vocabulary.
//!
//! This crate mirrors §II-A of the paper — the OSM element model
//! (nodes / ways / relations with tags and versions), changeset metadata —
//! plus the RASED-specific vocabulary of §III/§V: the dimension taxonomies
//! (countries & zones, road types, update types) and the eight-attribute
//! `UpdateList` tuple ([`UpdateRecord`]) that flows from the Data Collection
//! module into Storage & Indexing:
//!
//! ```text
//! ⟨ElementType, Date, Country, Latitude, Longitude,
//!   RoadType, UpdateType, ChangesetID⟩
//! ```

mod changeset;
mod element;
mod ids;
mod tags;
mod taxonomy;
mod update;
mod zones;

pub use changeset::ChangesetMeta;
pub use element::{Element, ElementType, MemberRef, Node, Relation, VersionInfo, Way};
pub use ids::{ChangesetId, ElementId, UserId, Version};
pub use tags::Tags;
pub use taxonomy::{
    CountryId, CountryResolver, CountryTable, RoadTypeId, RoadTypeTable, COUNTRY_COUNT_FULL,
    ROAD_TYPE_COUNT_FULL,
};
pub use update::{UpdateRecord, UpdateType, UPDATE_RECORD_BYTES};
pub use zones::ZoneMap;
