//! Bounds-checked little-endian readers for on-disk structures.
//!
//! Every persistent format in the workspace (page-file headers, hash-index
//! buckets, the cube catalog) decodes fixed-width integers from byte
//! slices. `slice[a..b].try_into().expect("len")` is panic-correct only
//! while every caller pre-validates lengths — a contract corrupted files
//! break. These helpers make the length check part of the read: a short
//! slice yields `None`, which decoders map to their own typed
//! corrupt-input error.

/// Read a `u64` from 8 little-endian bytes at `offset`, if in bounds.
#[inline]
pub fn read_u64_le(buf: &[u8], offset: usize) -> Option<u64> {
    let bytes = buf.get(offset..offset.checked_add(8)?)?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(bytes);
    Some(u64::from_le_bytes(raw))
}

/// Read a `u32` from 4 little-endian bytes at `offset`, if in bounds.
#[inline]
pub fn read_u32_le(buf: &[u8], offset: usize) -> Option<u32> {
    let bytes = buf.get(offset..offset.checked_add(4)?)?;
    let mut raw = [0u8; 4];
    raw.copy_from_slice(bytes);
    Some(u32::from_le_bytes(raw))
}

/// Read a `u16` from 2 little-endian bytes at `offset`, if in bounds.
#[inline]
pub fn read_u16_le(buf: &[u8], offset: usize) -> Option<u16> {
    let bytes = buf.get(offset..offset.checked_add(2)?)?;
    let mut raw = [0u8; 2];
    raw.copy_from_slice(bytes);
    Some(u16::from_le_bytes(raw))
}

/// Read an `f64` from 8 little-endian bytes at `offset`, if in bounds.
#[inline]
pub fn read_f64_le(buf: &[u8], offset: usize) -> Option<f64> {
    read_u64_le(buf, offset).map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_bounds_reads_decode_le() {
        let mut buf = vec![0u8; 16];
        buf[4..12].copy_from_slice(&0xDEAD_BEEF_0102_0304u64.to_le_bytes());
        assert_eq!(read_u64_le(&buf, 4), Some(0xDEAD_BEEF_0102_0304));
        assert_eq!(read_u32_le(&buf, 4), Some(0x0102_0304));
        assert_eq!(read_u16_le(&buf, 4), Some(0x0304));
    }

    #[test]
    fn short_or_overflowing_reads_are_none() {
        let buf = [1u8; 8];
        assert_eq!(read_u64_le(&buf, 1), None);
        assert_eq!(read_u32_le(&buf, 5), None);
        assert_eq!(read_u16_le(&buf, 7), None);
        assert_eq!(read_u64_le(&buf, usize::MAX), None, "offset overflow");
        assert_eq!(read_u64_le(&[], 0), None);
    }

    #[test]
    fn f64_round_trips_bits() {
        let mut buf = vec![0u8; 8];
        buf.copy_from_slice(&1234.5678f64.to_le_bytes());
        assert_eq!(read_f64_le(&buf, 0), Some(1234.5678));
    }
}
