//! Physical-I/O accounting and the deterministic I/O cost model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Thread-safe physical I/O counters, attached to a [`crate::PageFile`].
///
/// "Modeled time" is the I/O latency the configured [`IoCostModel`] assigns
/// to the operations performed — a simulated wall clock that stands in for
/// the spinning-disk testbed of the paper's evaluation.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    modeled_micros: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> IoStats {
        IoStats::default()
    }

    pub(crate) fn record_read(&self, bytes: u64, model: &IoCostModel) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.modeled_micros.fetch_add(model.micros(bytes), Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, bytes: u64, model: &IoCostModel) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.modeled_micros.fetch_add(model.micros(bytes), Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            modeled: Duration::from_micros(self.modeled_micros.load(Ordering::Relaxed)),
        }
    }
}

/// An immutable copy of [`IoStats`]; subtract two to get the I/O performed
/// by one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Accumulated modeled I/O latency.
    pub modeled: Duration,
}

impl IoSnapshot {
    /// Counter deltas `self - earlier` (saturating, for safety under races).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            modeled: self.modeled.saturating_sub(earlier.modeled),
        }
    }
}

/// Deterministic I/O latency model: every physical operation costs one seek
/// plus transfer time at a fixed bandwidth.
///
/// Defaults approximate the paper's 2014-era testbed disk. The model is a
/// documented substitution (DESIGN.md §1): it never sleeps — the cost is
/// accumulated into [`IoStats`] and reported as "modeled time".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoCostModel {
    /// Fixed per-operation latency in microseconds (seek + rotation).
    pub seek_micros: u64,
    /// Sustained transfer bandwidth in bytes per second. Zero means
    /// "infinitely fast transfer" (only seeks cost).
    pub bytes_per_sec: u64,
}

impl IoCostModel {
    /// A 7200 rpm hard disk: 5 ms seek, 150 MB/s transfer.
    pub fn hdd() -> IoCostModel {
        IoCostModel { seek_micros: 5_000, bytes_per_sec: 150_000_000 }
    }

    /// A SATA SSD: 100 µs access, 500 MB/s transfer.
    pub fn ssd() -> IoCostModel {
        IoCostModel { seek_micros: 100, bytes_per_sec: 500_000_000 }
    }

    /// No modeled cost (counters only).
    pub fn free() -> IoCostModel {
        IoCostModel { seek_micros: 0, bytes_per_sec: 0 }
    }

    /// Modeled cost of transferring `bytes`, in microseconds.
    pub fn micros(&self, bytes: u64) -> u64 {
        let transfer =
            bytes.saturating_mul(1_000_000).checked_div(self.bytes_per_sec).unwrap_or(0);
        self.seek_micros + transfer
    }

    /// Modeled cost as a [`Duration`].
    pub fn cost(&self, bytes: u64) -> Duration {
        Duration::from_micros(self.micros(bytes))
    }
}

impl Default for IoCostModel {
    fn default() -> Self {
        IoCostModel::hdd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_model_costs() {
        let m = IoCostModel::hdd();
        // A 4 MB cube page: 5 ms seek + ~28 ms transfer.
        let c = m.micros(4 << 20);
        assert_eq!(c, 5_000 + (4 << 20) * 1_000_000 / 150_000_000);
        assert!(c > 30_000 && c < 40_000, "{c}");
        // Seek dominates small reads.
        assert_eq!(m.micros(0), 5_000);
    }

    #[test]
    fn free_model_is_zero() {
        let m = IoCostModel::free();
        assert_eq!(m.micros(1 << 30), 0);
        assert_eq!(m.cost(12345), Duration::ZERO);
    }

    #[test]
    fn stats_accumulate_and_diff() {
        let s = IoStats::new();
        let m = IoCostModel { seek_micros: 10, bytes_per_sec: 1_000_000 };
        s.record_read(1_000_000, &m); // 10 + 1_000_000 µs
        let a = s.snapshot();
        assert_eq!(a.reads, 1);
        assert_eq!(a.bytes_read, 1_000_000);
        assert_eq!(a.modeled, Duration::from_micros(1_000_010));

        s.record_write(500, &m);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.reads, 0);
        assert_eq!(d.writes, 1);
        assert_eq!(d.bytes_written, 500);
        // 10 µs seek + 500 µs transfer at 1 MB/s.
        assert_eq!(d.modeled, Duration::from_micros(510));
    }

    #[test]
    fn overflow_resistant_transfer_cost() {
        let m = IoCostModel { seek_micros: 0, bytes_per_sec: 1 };
        // bytes * 1e6 would overflow u64 for huge byte counts; must saturate,
        // not wrap.
        assert!(m.micros(u64::MAX / 2) > 0);
    }
}
