//! [`LruCache`]: an O(1) least-recently-used map.
//!
//! The buffer pool and the cube cache both started life with a
//! "tick + linear scan" eviction: every entry carried a last-use counter
//! and eviction scanned the whole map for the minimum. That is O(n) per
//! eviction and, worse, the scan runs under the cache's shard lock — under
//! a parallel executor every evicting miss would serialize behind it.
//!
//! This is the classic replacement: a `HashMap<K, slot>` into a slab-backed
//! doubly-linked recency list. `get`/`insert`/`remove`/`pop_lru` are all
//! O(1). The slab (`Vec<Option<Node>>` plus a free list) keeps the list
//! links as plain indices, so there is no unsafe pointer juggling; `NIL`
//! (`usize::MAX`) terminates the list on both ends. All internal link
//! updates go through `get`/`get_mut`, so a corrupted index degrades into a
//! no-op rather than a panic — this crate is on the request path and is
//! denied panic points outright.
//!
//! Capacity policy lives in the *caller* (the pool decides when to
//! [`LruCache::pop_lru`]): the two call sites enforce different bounds
//! (per-shard page budgets vs. cube-slot quotas) and count evictions in
//! their own metrics.

use std::collections::HashMap;
use std::hash::Hash;

/// List terminator for both ends of the recency list.
const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    /// Towards the most-recently-used end.
    prev: usize,
    /// Towards the least-recently-used end.
    next: usize,
}

/// An unbounded LRU map with O(1) touch and eviction. See the module docs
/// for why capacity is the caller's job.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Option<Node<K, V>>>,
    free: Vec<usize>,
    /// Most recently used, or `NIL` when empty.
    head: usize,
    /// Least recently used, or `NIL` when empty.
    tail: usize,
}

impl<K: Clone + Eq + Hash, V> Default for LruCache<K, V> {
    fn default() -> Self {
        LruCache::new()
    }
}

impl<K: Clone + Eq + Hash, V> LruCache<K, V> {
    /// An empty cache.
    pub fn new() -> LruCache<K, V> {
        LruCache { map: HashMap::new(), nodes: Vec::new(), free: Vec::new(), head: NIL, tail: NIL }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up and touch (the entry becomes most recently used).
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        self.nodes.get(idx)?.as_ref().map(|n| &n.value)
    }

    /// Look up without touching (recency order is unchanged).
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.nodes.get(idx)?.as_ref().map(|n| &n.value)
    }

    /// True when the key is present (no recency update).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Insert or replace, touching the entry. Returns the previous value on
    /// replacement.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(&idx) = self.map.get(&key) {
            self.detach(idx);
            self.attach_front(idx);
            return self
                .nodes
                .get_mut(idx)
                .and_then(|slot| slot.as_mut())
                .map(|n| std::mem::replace(&mut n.value, value));
        }
        let idx = self.alloc(Node { key: key.clone(), value, prev: NIL, next: NIL });
        self.attach_front(idx);
        self.map.insert(key, idx);
        None
    }

    /// Remove an entry, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        let node = self.nodes.get_mut(idx)?.take()?;
        self.free.push(idx);
        Some(node.value)
    }

    /// Evict and return the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        let idx = self.tail;
        self.detach(idx);
        let node = self.nodes.get_mut(idx)?.take()?;
        self.free.push(idx);
        self.map.remove(&node.key);
        Some((node.key, node.value))
    }

    /// Drop every entry (slab storage is released too).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Visit every entry, most recently used first (no recency update).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        let mut idx = self.head;
        while let Some(node) = self.nodes.get(idx).and_then(|slot| slot.as_ref()) {
            f(&node.key, &node.value);
            idx = node.next;
        }
    }

    /// Claim a slab slot for `node`, reusing the free list when possible.
    fn alloc(&mut self, node: Node<K, V>) -> usize {
        match self.free.pop() {
            Some(idx) => {
                if let Some(slot) = self.nodes.get_mut(idx) {
                    *slot = Some(node);
                }
                idx
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        }
    }

    /// Unlink `idx` from the recency list. `get(NIL)` (and a vacated slot)
    /// yield `None`, which doubles as the head/tail update path.
    fn detach(&mut self, idx: usize) {
        let (prev, next) = match self.nodes.get(idx).and_then(|slot| slot.as_ref()) {
            Some(n) => (n.prev, n.next),
            None => return,
        };
        match self.nodes.get_mut(prev).and_then(|slot| slot.as_mut()) {
            Some(p) => p.next = next,
            None => self.head = next,
        }
        match self.nodes.get_mut(next).and_then(|slot| slot.as_mut()) {
            Some(n) => n.prev = prev,
            None => self.tail = prev,
        }
    }

    /// Link `idx` in as the most-recently-used entry.
    fn attach_front(&mut self, idx: usize) {
        let old_head = self.head;
        if let Some(n) = self.nodes.get_mut(idx).and_then(|slot| slot.as_mut()) {
            n.prev = NIL;
            n.next = old_head;
        }
        match self.nodes.get_mut(old_head).and_then(|slot| slot.as_mut()) {
            Some(h) => h.prev = idx,
            None => self.tail = idx,
        }
        self.head = idx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recency_order(c: &LruCache<u64, u64>) -> Vec<u64> {
        let mut order = Vec::new();
        c.for_each(|k, _| order.push(*k));
        order
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = LruCache::new();
        assert!(c.is_empty());
        assert_eq!(c.insert(1, 10), None);
        assert_eq!(c.insert(2, 20), None);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_touches_and_pop_evicts_coldest() {
        let mut c = LruCache::new();
        for k in [1u64, 2, 3] {
            c.insert(k, k * 10);
        }
        // Order is 3, 2, 1 (most → least recent); touching 1 moves it up.
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(recency_order(&c), [1, 3, 2]);
        assert_eq!(c.pop_lru(), Some((2, 20)));
        assert_eq!(c.pop_lru(), Some((3, 30)));
        assert_eq!(c.pop_lru(), Some((1, 10)));
        assert_eq!(c.pop_lru(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_and_contains_do_not_touch() {
        let mut c = LruCache::new();
        c.insert(1u64, 10u64);
        c.insert(2, 20);
        assert_eq!(c.peek(&1), Some(&10));
        assert!(c.contains(&1));
        // 1 was not touched: it is still the LRU victim.
        assert_eq!(c.pop_lru(), Some((1, 10)));
    }

    #[test]
    fn insert_replaces_and_touches() {
        let mut c = LruCache::new();
        c.insert(1u64, 10u64);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), Some(10));
        assert_eq!(recency_order(&c), [1, 2]);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_unlinks_middle_entry() {
        let mut c = LruCache::new();
        for k in [1u64, 2, 3] {
            c.insert(k, k);
        }
        assert_eq!(c.remove(&2), Some(2));
        assert_eq!(c.remove(&2), None);
        assert_eq!(recency_order(&c), [3, 1]);
        // Slab slot is reused by the next insert.
        c.insert(4, 4);
        assert_eq!(recency_order(&c), [4, 3, 1]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = LruCache::new();
        for k in 0..10u64 {
            c.insert(k, k);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.pop_lru(), None);
        c.insert(7, 7);
        assert_eq!(c.get(&7), Some(&7));
    }

    /// Exhaustive cross-check against a naive model over a scripted op mix.
    #[test]
    fn matches_naive_model_over_op_sequence() {
        let mut c: LruCache<u64, u64> = LruCache::new();
        // Model: Vec ordered most → least recent.
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut state = 0x5eed_5eed_5eed_5eedu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..4000 {
            let k = next() % 16;
            match next() % 5 {
                0 | 1 => {
                    let v = next();
                    let got = c.insert(k, v);
                    let pos = model.iter().position(|(mk, _)| *mk == k);
                    let want = pos.map(|i| model.remove(i).1);
                    model.insert(0, (k, v));
                    assert_eq!(got, want, "insert mismatch at step {step}");
                }
                2 => {
                    let got = c.get(&k).copied();
                    let pos = model.iter().position(|(mk, _)| *mk == k);
                    let want = pos.map(|i| {
                        let e = model.remove(i);
                        model.insert(0, e);
                        e.1
                    });
                    assert_eq!(got, want, "get mismatch at step {step}");
                }
                3 => {
                    let got = c.remove(&k);
                    let pos = model.iter().position(|(mk, _)| *mk == k);
                    let want = pos.map(|i| model.remove(i).1);
                    assert_eq!(got, want, "remove mismatch at step {step}");
                }
                _ => {
                    let got = c.pop_lru();
                    let want = model.pop();
                    assert_eq!(got, want, "pop mismatch at step {step}");
                }
            }
            assert_eq!(c.len(), model.len(), "len mismatch at step {step}");
        }
    }
}
