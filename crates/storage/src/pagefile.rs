//! [`PageFile`]: a file of fixed-size pages with explicit allocation.

use crate::stats::{IoCostModel, IoStats};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a page within a [`PageFile`] (zero-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Storage-level error.
#[derive(Debug)]
pub enum StorageError {
    Io(io::Error),
    /// The file header is missing or does not match this format/version.
    BadHeader(String),
    /// A page id at or beyond the allocation watermark.
    PageOutOfBounds { page: PageId, page_count: u64 },
    /// A buffer whose length does not equal the page size.
    WrongBufferSize { expected: usize, got: usize },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::BadHeader(m) => write!(f, "bad page-file header: {m}"),
            StorageError::PageOutOfBounds { page, page_count } => {
                write!(f, "page {page} out of bounds (page count {page_count})")
            }
            StorageError::WrongBufferSize { expected, got } => {
                write!(f, "buffer size {got} does not match page size {expected}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

const MAGIC: &[u8; 8] = b"RASEDPG1";
/// Fixed-size header region before page 0. Kept separate from the page grid
/// so multi-megabyte cube pages don't waste a page on the header.
const HEADER_BYTES: u64 = 4096;

/// A file of fixed-size pages.
///
/// * Pages are allocated with [`PageFile::allocate`] and addressed by
///   [`PageId`]; reads of unallocated pages are rejected.
/// * All physical operations are positioned (`pread`/`pwrite`), so the file
///   is shared freely across threads; the allocation watermark is atomic.
/// * Every physical read/write is recorded in the attached [`IoStats`] with
///   the configured [`IoCostModel`].
pub struct PageFile {
    file: File,
    // (Debug derived manually below to avoid dumping raw fds.)
    page_size: usize,
    page_count: AtomicU64,
    stats: Arc<IoStats>,
    model: IoCostModel,
}

impl fmt::Debug for PageFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageFile")
            .field("page_size", &self.page_size)
            .field("page_count", &self.page_count())
            .finish_non_exhaustive()
    }
}

impl PageFile {
    /// Create a new page file (truncating any existing one).
    pub fn create(path: &Path, page_size: usize, model: IoCostModel) -> Result<PageFile, StorageError> {
        assert!(page_size > 0, "page size must be positive");
        let file = OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let pf = PageFile {
            file,
            page_size,
            page_count: AtomicU64::new(0),
            stats: Arc::new(IoStats::new()),
            model,
        };
        pf.write_header()?;
        Ok(pf)
    }

    /// Open an existing page file, validating its header.
    pub fn open(path: &Path, model: IoCostModel) -> Result<PageFile, StorageError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut header = [0u8; 24];
        file.read_exact_at(&mut header, 0)
            .map_err(|e| StorageError::BadHeader(format!("short header: {e}")))?;
        if &header[0..8] != MAGIC {
            return Err(StorageError::BadHeader("wrong magic".into()));
        }
        let corrupt = || StorageError::BadHeader("truncated header fields".into());
        let page_size = crate::bytes::read_u64_le(&header, 8).ok_or_else(corrupt)? as usize;
        let page_count = crate::bytes::read_u64_le(&header, 16).ok_or_else(corrupt)?;
        if page_size == 0 {
            return Err(StorageError::BadHeader("zero page size".into()));
        }
        Ok(PageFile {
            file,
            page_size,
            page_count: AtomicU64::new(page_count),
            stats: Arc::new(IoStats::new()),
            model,
        })
    }

    fn write_header(&self) -> Result<(), StorageError> {
        let mut header = [0u8; 24];
        header[0..8].copy_from_slice(MAGIC);
        header[8..16].copy_from_slice(&(self.page_size as u64).to_le_bytes());
        header[16..24].copy_from_slice(&self.page_count.load(Ordering::SeqCst).to_le_bytes());
        self.file.write_all_at(&header, 0)?;
        Ok(())
    }

    /// The fixed page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages.
    #[inline]
    pub fn page_count(&self) -> u64 {
        self.page_count.load(Ordering::SeqCst)
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// The configured I/O cost model.
    pub fn cost_model(&self) -> IoCostModel {
        self.model
    }

    fn offset_of(&self, page: PageId) -> u64 {
        HEADER_BYTES + page.0 * self.page_size as u64
    }

    fn check_bounds(&self, page: PageId) -> Result<(), StorageError> {
        let count = self.page_count();
        if page.0 >= count {
            return Err(StorageError::PageOutOfBounds { page, page_count: count });
        }
        Ok(())
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&self) -> Result<PageId, StorageError> {
        let id = PageId(self.page_count.fetch_add(1, Ordering::SeqCst));
        // Extend the file so reads of the new page succeed.
        let zeros = vec![0u8; self.page_size];
        self.file.write_all_at(&zeros, self.offset_of(id))?;
        self.stats.record_write(self.page_size as u64, &self.model);
        self.write_header()?;
        Ok(id)
    }

    /// Read a full page into `buf` (must be exactly one page long).
    pub fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<(), StorageError> {
        if buf.len() != self.page_size {
            return Err(StorageError::WrongBufferSize { expected: self.page_size, got: buf.len() });
        }
        self.check_bounds(page)?;
        self.file.read_exact_at(buf, self.offset_of(page))?;
        self.stats.record_read(self.page_size as u64, &self.model);
        Ok(())
    }

    /// Read a full page into a fresh buffer.
    pub fn read_page_vec(&self, page: PageId) -> Result<Vec<u8>, StorageError> {
        let mut buf = vec![0u8; self.page_size];
        self.read_page(page, &mut buf)?;
        Ok(buf)
    }

    /// Write a full page (must be exactly one page long).
    pub fn write_page(&self, page: PageId, buf: &[u8]) -> Result<(), StorageError> {
        if buf.len() != self.page_size {
            return Err(StorageError::WrongBufferSize { expected: self.page_size, got: buf.len() });
        }
        self.check_bounds(page)?;
        self.file.write_all_at(buf, self.offset_of(page))?;
        self.stats.record_write(self.page_size as u64, &self.model);
        Ok(())
    }

    /// Allocate and immediately write a page.
    pub fn append_page(&self, buf: &[u8]) -> Result<PageId, StorageError> {
        if buf.len() != self.page_size {
            return Err(StorageError::WrongBufferSize { expected: self.page_size, got: buf.len() });
        }
        let id = PageId(self.page_count.fetch_add(1, Ordering::SeqCst));
        self.file.write_all_at(buf, self.offset_of(id))?;
        self.stats.record_write(self.page_size as u64, &self.model);
        self.write_header()?;
        Ok(id)
    }

    /// Shrink the file to its first `keep` pages (no-op when `keep` is at
    /// or beyond the current count). Dropped ids become unallocated again:
    /// bounds checks reject them and future [`PageFile::allocate`] calls
    /// reuse them — callers holding caches keyed by `PageId` must drop any
    /// entries past the cut. The shrink is synced before returning so a
    /// crash cannot resurrect the dropped pages.
    pub fn truncate_pages(&self, keep: u64) -> Result<(), StorageError> {
        let current = self.page_count.load(Ordering::SeqCst);
        if keep >= current {
            return Ok(());
        }
        self.page_count.store(keep, Ordering::SeqCst);
        self.file.set_len(HEADER_BYTES + keep * self.page_size as u64)?;
        self.write_header()?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Flush file contents and metadata to stable storage.
    pub fn sync(&self) -> Result<(), StorageError> {
        self.write_header()?;
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dettest::TempDir;

    #[test]
    fn create_write_read_roundtrip() {
        let dir = TempDir::new("pagefile");
        let path = dir.file("a.pg");
        let pf = PageFile::create(&path, 128, IoCostModel::free()).unwrap();
        let p0 = pf.allocate().unwrap();
        let p1 = pf.allocate().unwrap();
        assert_eq!((p0, p1), (PageId(0), PageId(1)));

        let data: Vec<u8> = (0..128).map(|i| i as u8).collect();
        pf.write_page(p1, &data).unwrap();
        assert_eq!(pf.read_page_vec(p1).unwrap(), data);
        // Fresh pages read back zeroed.
        assert_eq!(pf.read_page_vec(p0).unwrap(), vec![0u8; 128]);
    }

    #[test]
    fn reopen_preserves_pages() {
        let dir = TempDir::new("pagefile");
        let path = dir.file("b.pg");
        let data = vec![7u8; 64];
        {
            let pf = PageFile::create(&path, 64, IoCostModel::free()).unwrap();
            let p = pf.append_page(&data).unwrap();
            assert_eq!(p, PageId(0));
            pf.sync().unwrap();
        }
        let pf = PageFile::open(&path, IoCostModel::free()).unwrap();
        assert_eq!(pf.page_size(), 64);
        assert_eq!(pf.page_count(), 1);
        assert_eq!(pf.read_page_vec(PageId(0)).unwrap(), data);
    }

    #[test]
    fn open_rejects_corrupt_header() {
        let dir = TempDir::new("pagefile");
        let path = dir.file("c.pg");
        std::fs::write(&path, b"definitely not a page file").unwrap();
        match PageFile::open(&path, IoCostModel::free()) {
            Err(StorageError::BadHeader(_)) => {}
            other => panic!("expected BadHeader, got {other:?}"),
        }
        // Too-short file.
        let path2 = dir.file("d.pg");
        std::fs::write(&path2, b"x").unwrap();
        assert!(matches!(PageFile::open(&path2, IoCostModel::free()), Err(StorageError::BadHeader(_))));
    }

    #[test]
    fn bounds_and_size_checks() {
        let dir = TempDir::new("pagefile");
        let path = dir.file("e.pg");
        let pf = PageFile::create(&path, 32, IoCostModel::free()).unwrap();
        pf.allocate().unwrap();
        assert!(matches!(
            pf.read_page_vec(PageId(5)),
            Err(StorageError::PageOutOfBounds { .. })
        ));
        assert!(matches!(
            pf.write_page(PageId(0), &[0u8; 31]),
            Err(StorageError::WrongBufferSize { .. })
        ));
        let mut small = [0u8; 16];
        assert!(matches!(
            pf.read_page(PageId(0), &mut small),
            Err(StorageError::WrongBufferSize { .. })
        ));
    }

    #[test]
    fn stats_count_physical_io() {
        let dir = TempDir::new("pagefile");
        let path = dir.file("f.pg");
        let model = IoCostModel { seek_micros: 100, bytes_per_sec: 0 };
        let pf = PageFile::create(&path, 16, model).unwrap();
        let base = pf.stats().snapshot();
        let p = pf.allocate().unwrap(); // one write (zero-fill)
        pf.write_page(p, &[1u8; 16]).unwrap();
        pf.read_page_vec(p).unwrap();
        let d = pf.stats().snapshot().since(&base);
        assert_eq!(d.writes, 2);
        assert_eq!(d.reads, 1);
        assert_eq!(d.bytes_read, 16);
        assert_eq!(d.modeled, std::time::Duration::from_micros(300));
    }

    #[test]
    fn truncate_pages_drops_the_suffix_and_survives_reopen() {
        let dir = TempDir::new("pagefile");
        let path = dir.file("t.pg");
        let pf = PageFile::create(&path, 32, IoCostModel::free()).unwrap();
        for i in 0..5u8 {
            pf.append_page(&[i; 32]).unwrap();
        }
        pf.truncate_pages(2).unwrap();
        assert_eq!(pf.page_count(), 2);
        assert_eq!(pf.read_page_vec(PageId(1)).unwrap(), vec![1u8; 32]);
        assert!(matches!(
            pf.read_page_vec(PageId(2)),
            Err(StorageError::PageOutOfBounds { .. })
        ));
        // Reallocation reuses the dropped ids and reads back zeroed.
        assert_eq!(pf.allocate().unwrap(), PageId(2));
        assert_eq!(pf.read_page_vec(PageId(2)).unwrap(), vec![0u8; 32]);
        pf.truncate_pages(2).unwrap();
        drop(pf);
        let pf = PageFile::open(&path, IoCostModel::free()).unwrap();
        assert_eq!(pf.page_count(), 2);
        // Truncating to >= the count is a no-op.
        pf.truncate_pages(10).unwrap();
        assert_eq!(pf.page_count(), 2);
    }

    #[test]
    fn concurrent_appends_get_distinct_pages() {
        let dir = TempDir::new("pagefile");
        let path = dir.file("g.pg");
        let pf = Arc::new(PageFile::create(&path, 8, IoCostModel::free()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let pf = Arc::clone(&pf);
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for _ in 0..25 {
                    ids.push(pf.append_page(&[t; 8]).unwrap());
                }
                ids
            }));
        }
        let mut all: Vec<PageId> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100, "page ids must be unique");
        assert_eq!(pf.page_count(), 100);
    }
}
