//! Paged storage engine for RASED (§VI).
//!
//! The paper stores every data cube in "one disk page" of ~4 MB and reasons
//! about query cost in *number of cubes retrieved from disk* (§VII). This
//! crate provides that abstraction:
//!
//! * [`PageFile`] — a file of fixed-size pages with explicit allocation,
//!   positioned reads/writes, and a persistent header;
//! * [`IoStats`] — exact physical-I/O counters (reads, writes, bytes);
//! * [`IoCostModel`] — a deterministic latency model (seek + transfer)
//!   accumulated alongside the counters. On a modern dev box the OS page
//!   cache hides the disk/memory asymmetry that Figures 7, 9 and 10 of the
//!   paper measure; the model restores it reproducibly. Raw counters are
//!   always reported too, so no result depends on trusting the model.
//! * [`BufferPool`] — a sharded LRU page cache with hit/miss accounting and
//!   single-flight miss coalescing, used by the warehouse and the row-scan
//!   baseline (the cube index has its own level-aware cache per §VII-A);
//! * [`LruCache`] / [`FlightGroup`] — the concurrency-grade building
//!   blocks behind both caches: an O(1) recency list and a
//!   leader/follower in-flight-miss coalescer, reused by `rased-index`;
//! * [`DiskHashIndex`] — a persistent extendible hash index (the
//!   warehouse's ChangesetID index, §VI-B).

mod buffer;
pub mod bytes;
mod flight;
mod hash_index;
mod lru;
mod pagefile;
mod stats;
pub mod sync;

pub use buffer::{BufferPool, PoolStats};
pub use flight::FlightGroup;
pub use hash_index::DiskHashIndex;
pub use lru::LruCache;
pub use pagefile::{PageFile, PageId, StorageError};
pub use stats::{IoCostModel, IoStats, IoSnapshot};
