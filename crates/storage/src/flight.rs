//! [`FlightGroup`]: single-flight coalescing of concurrent cache misses.
//!
//! When N threads miss the same key at once (a cold-start stampede — the
//! dashboard's worker pool fanning one hot query across connections, or the
//! parallel executor's workers racing into a shared page), the naive miss
//! path performs N identical physical reads and N identical deserializes.
//! Single-flight (the lease scheme memcached deployments use for thundering
//! herds) fixes that: the first thread to register an in-flight slot for the
//! key becomes the *leader* and computes the value; the other N−1 become
//! *followers* and block on the slot until the leader publishes the result.
//! Exactly one physical read happens.
//!
//! Error policy: results are shared only on success. A leader's failure
//! marks the slot `Failed` and wakes the followers, which *retry* from
//! scratch (one of them becomes the next leader). Each caller therefore
//! returns an error produced by its own attempt — nothing requires the
//! error type to be `Clone`, and a transient failure is retried instead of
//! being fanned out N times. (`compute` is `FnMut` for exactly this reason:
//! a follower that outlives a failed leader may be promoted and compute
//! after all.)
//!
//! Lock discipline: the group never holds two locks at once. The shard map
//! lock is dropped before the slot lock is taken, and the leader computes
//! with no lock held at all; followers wait on the slot's condvar, which
//! acquires nothing new. Both lock classes carry explicit names (given at
//! construction) so the debug-build lock-order detector and the static
//! rank table see them.

use crate::sync::{Condvar, Mutex};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// The published state of one in-flight computation.
enum FlightState<V> {
    /// The leader is still computing.
    Pending,
    /// The leader succeeded; followers clone this value.
    Done(V),
    /// The leader failed (or unwound); followers must retry.
    Failed,
}

/// One in-flight slot: the leader publishes into `state`, followers wait on
/// `arrived`.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    arrived: Condvar,
}

/// Coalesces concurrent computations of the same key. See the module docs
/// for the protocol.
pub struct FlightGroup<K, V> {
    shards: Vec<Mutex<HashMap<K, Arc<Flight<V>>>>>,
    slot_name: &'static str,
}

impl<K: Clone + Eq + Hash, V: Clone> FlightGroup<K, V> {
    /// A group with `shards` independent key maps (1 is fine for most
    /// callers; the maps are only held long enough to register a slot).
    ///
    /// `map_name` / `slot_name` name the two lock classes for the runtime
    /// lock-order detector; use distinct names per embedding (e.g.
    /// `"storage.page_flight.map"` in the buffer pool vs.
    /// `"index.cube_flight.map"` in the cube store) so their order graphs
    /// stay separate.
    pub fn new(shards: usize, map_name: &'static str, slot_name: &'static str) -> FlightGroup<K, V> {
        let shards = shards.max(1);
        FlightGroup {
            shards: (0..shards).map(|_| Mutex::new_named(HashMap::new(), map_name)).collect(),
            slot_name,
        }
    }

    /// Number of computations currently in flight (diagnostic).
    pub fn in_flight(&self) -> usize {
        let mut n = 0;
        for shard in &self.shards {
            n += shard.lock().len();
        }
        n
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Arc<Flight<V>>>> {
        let i = (mix(fxhash(key)) as usize) % self.shards.len();
        // lint: allow(slice_index, "i is reduced mod shards.len(), which new() keeps >= 1")
        &self.shards[i]
    }

    /// Cancel the in-flight computation for `key`, if any: the slot is
    /// deregistered and marked `Failed`, so followers wake up and *retry*
    /// from scratch (re-resolving the key first — which is the point: the
    /// caller cancels because the key's backing data was just replaced, and
    /// a retry observes the replacement). The leader, if one is mid-compute,
    /// still returns its own result to its own caller; its later attempt to
    /// deregister is a no-op because the slot it owns is no longer in the
    /// map. Returns true when a flight was actually cancelled.
    ///
    /// Lock discipline matches `run`: the map lock is released before the
    /// slot lock is taken.
    pub fn cancel(&self, key: &K) -> bool {
        let flight = {
            let shard = self.shard(key);
            let mut map = shard.lock();
            map.remove(key)
        };
        match flight {
            Some(f) => {
                {
                    let mut state = f.state.lock();
                    if matches!(*state, FlightState::Pending) {
                        *state = FlightState::Failed;
                    }
                }
                f.arrived.notify_all();
                true
            }
            None => false,
        }
    }

    /// Compute (or wait for) the value for `key`.
    ///
    /// Exactly one concurrent caller per key runs `compute` at a time; the
    /// rest block and clone its successful result. On failure the computing
    /// caller gets its own error back and waiting callers retry (one of
    /// them re-running `compute`).
    pub fn run<E>(&self, key: K, mut compute: impl FnMut() -> Result<V, E>) -> Result<V, E> {
        loop {
            // Register or join the in-flight slot. The map lock covers only
            // the HashMap operation; it is released before any wait or work.
            let (flight, leader) = {
                let shard = self.shard(&key);
                let mut map = shard.lock();
                match map.get(&key) {
                    Some(f) => (Arc::clone(f), false),
                    None => {
                        let f = Arc::new(Flight {
                            state: Mutex::new_named(FlightState::Pending, self.slot_name),
                            arrived: Condvar::new(),
                        });
                        map.insert(key.clone(), Arc::clone(&f));
                        (f, true)
                    }
                }
            };

            if leader {
                // If `compute` unwinds, the guard's Drop publishes `Failed`
                // and deregisters the slot so followers retry instead of
                // waiting on a flight nobody will finish.
                let guard = LeaderGuard { group: self, key, flight: &flight, published: false };
                return guard.publish(compute());
            }

            // Follower: wait for the leader's verdict.
            let mut state = flight.state.lock();
            loop {
                match &*state {
                    FlightState::Pending => state = flight.arrived.wait(state),
                    FlightState::Done(v) => return Ok(v.clone()),
                    FlightState::Failed => break,
                }
            }
            // Leader failed: retry. The failed flight was deregistered, so
            // the next registration starts a fresh computation.
        }
    }
}

/// Publishes the leader's outcome exactly once, even across unwinds.
struct LeaderGuard<'a, K: Clone + Eq + Hash, V: Clone> {
    group: &'a FlightGroup<K, V>,
    key: K,
    flight: &'a Arc<Flight<V>>,
    published: bool,
}

impl<K: Clone + Eq + Hash, V: Clone> LeaderGuard<'_, K, V> {
    /// Publish the computed result: followers see `Done`/`Failed`, the slot
    /// is deregistered, and the result passes through to the caller.
    fn publish<E>(mut self, result: Result<V, E>) -> Result<V, E> {
        self.finish(match &result {
            Ok(v) => FlightState::Done(v.clone()),
            Err(_) => FlightState::Failed,
        });
        self.published = true;
        result
    }

    /// Store the verdict, wake the followers, deregister the slot. Never
    /// holds two locks at once. Deregistration only removes the map entry if
    /// it is still *this* flight: a `cancel` may already have removed it and
    /// a fresh flight for the same key may have been registered since —
    /// removing that one would strand its followers.
    fn finish(&self, verdict: FlightState<V>) {
        {
            let mut state = self.flight.state.lock();
            *state = verdict;
        }
        self.flight.arrived.notify_all();
        let shard = self.group.shard(&self.key);
        let mut map = shard.lock();
        if map.get(&self.key).is_some_and(|f| Arc::ptr_eq(f, self.flight)) {
            map.remove(&self.key);
        }
    }
}

impl<K: Clone + Eq + Hash, V: Clone> Drop for LeaderGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.published {
            // The leader unwound mid-compute: fail the flight so followers
            // retry rather than wait forever.
            self.finish(FlightState::Failed);
        }
    }
}

/// A small deterministic key hash (byte-fold over the value's `Hash`
/// output). Deterministic across runs, unlike `RandomState`, so shard
/// placement is reproducible.
fn fxhash<K: Hash>(key: &K) -> u64 {
    struct Fold(u64);
    impl std::hash::Hasher for Fold {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
            }
        }
    }
    let mut h = Fold(0);
    key.hash(&mut h);
    std::hash::Hasher::finish(&h)
}

/// 64-bit finalizer spreading low-entropy keys across shards.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 32;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    #[test]
    fn single_caller_computes_once() {
        let g: FlightGroup<u64, u64> = FlightGroup::new(4, "flight.test_map", "flight.test_slot");
        let v = g.run(7, || Ok::<_, ()>(42)).unwrap();
        assert_eq!(v, 42);
        assert_eq!(g.in_flight(), 0, "slot must be deregistered");
    }

    #[test]
    fn stampede_coalesces_to_one_compute() {
        let g: Arc<FlightGroup<u64, u64>> =
            Arc::new(FlightGroup::new(4, "flight.stampede_map", "flight.stampede_slot"));
        let computes = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (g, computes, barrier) = (Arc::clone(&g), Arc::clone(&computes), Arc::clone(&barrier));
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                g.run(1, || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    // Hold the flight open long enough for the stragglers
                    // to join as followers.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    Ok::<_, ()>(99)
                })
                .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 99);
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one compute");
        assert_eq!(g.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let g: Arc<FlightGroup<u64, u64>> =
            Arc::new(FlightGroup::new(4, "flight.distinct_map", "flight.distinct_slot"));
        let computes = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for k in 0..6u64 {
            let (g, computes) = (Arc::clone(&g), Arc::clone(&computes));
            handles.push(std::thread::spawn(move || {
                g.run(k, || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    Ok::<_, ()>(k * 2)
                })
                .unwrap()
            }));
        }
        let mut got: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, [0, 2, 4, 6, 8, 10]);
        assert_eq!(computes.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn leader_failure_lets_followers_retry() {
        let g: Arc<FlightGroup<u64, u64>> =
            Arc::new(FlightGroup::new(1, "flight.fail_map", "flight.fail_slot"));
        let attempts = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (g, attempts, barrier) = (Arc::clone(&g), Arc::clone(&attempts), Arc::clone(&barrier));
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                g.run(5, || {
                    let n = attempts.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    // First attempt fails; whoever retries succeeds.
                    if n == 0 {
                        Err("transient")
                    } else {
                        Ok(77)
                    }
                })
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // The failing leader got its own error; everyone who returned Ok
        // saw the retried value.
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
        assert!(results.iter().all(|r| !matches!(r, Ok(v) if *v != 77)));
        let n = attempts.load(Ordering::SeqCst);
        assert!(n >= 2, "a retry must have happened, saw {n} attempts");
        assert_eq!(g.in_flight(), 0);
    }

    #[test]
    fn cancel_of_idle_key_is_a_noop() {
        let g: FlightGroup<u64, u64> = FlightGroup::new(4, "flight.cancel_map", "flight.cancel_slot");
        assert!(!g.cancel(&42));
    }

    #[test]
    fn cancel_wakes_followers_into_a_retry() {
        let g: Arc<FlightGroup<u64, u64>> =
            Arc::new(FlightGroup::new(1, "flight.cxl_map", "flight.cxl_slot"));
        // Three-way rendezvous: leader (inside its compute), follower, and
        // the main thread all meet before the timing-sensitive part starts.
        let barrier = Arc::new(Barrier::new(3));

        // Leader enters the flight, rendezvouses, then sleeps long enough
        // for the cancel to land mid-compute.
        let leader = {
            let (g, barrier) = (Arc::clone(&g), Arc::clone(&barrier));
            std::thread::spawn(move || {
                g.run(3, || {
                    barrier.wait();
                    std::thread::sleep(std::time::Duration::from_millis(40));
                    Ok::<_, ()>(1)
                })
            })
        };
        let follower = {
            let (g, barrier) = (Arc::clone(&g), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                // Give the leader time to register before we join.
                std::thread::sleep(std::time::Duration::from_millis(5));
                g.run(3, || Ok::<_, ()>(2))
            })
        };
        barrier.wait();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(g.cancel(&3), "a flight was in progress");

        // The leader's own caller still gets the leader's value; the
        // follower was woken by the cancel and retried, computing the fresh
        // value itself (or joined the leader before the cancel landed —
        // either way it terminates with a value).
        assert_eq!(leader.join().unwrap(), Ok(1));
        let f = follower.join().unwrap().unwrap();
        assert!(f == 1 || f == 2, "follower saw {f}");
        assert_eq!(g.in_flight(), 0, "no slot leaks after cancel + finish");
    }

    #[test]
    fn cancelled_leader_does_not_deregister_successor_flight() {
        let g: Arc<FlightGroup<u64, u64>> =
            Arc::new(FlightGroup::new(1, "flight.succ_map", "flight.succ_slot"));
        let barrier = Arc::new(Barrier::new(2));

        let old_leader = {
            let (g, barrier) = (Arc::clone(&g), Arc::clone(&barrier));
            std::thread::spawn(move || {
                g.run(8, || {
                    barrier.wait();
                    // Stay in flight until the main thread has cancelled us
                    // and registered a successor flight.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    Ok::<_, ()>(10)
                })
            })
        };
        barrier.wait();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(g.cancel(&8));

        // Register a successor flight for the same key and hold it open
        // past the old leader's finish. If the old leader's deregistration
        // were unconditional it would remove *this* flight from the map.
        let done = Arc::new(AtomicU64::new(0));
        let successor = {
            let (g, done) = (Arc::clone(&g), Arc::clone(&done));
            std::thread::spawn(move || {
                g.run(8, || {
                    std::thread::sleep(std::time::Duration::from_millis(80));
                    done.fetch_add(1, Ordering::SeqCst);
                    Ok::<_, ()>(20)
                })
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(g.in_flight(), 1, "successor flight registered");
        assert_eq!(old_leader.join().unwrap(), Ok(10));
        // Old leader finished (and would have deregistered); the successor
        // slot must still be in the map so late arrivals coalesce onto it.
        assert_eq!(g.in_flight(), 1, "successor flight survived the old leader's finish");
        assert_eq!(successor.join().unwrap(), Ok(20));
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(g.in_flight(), 0);
    }

    #[test]
    fn panicking_leader_does_not_strand_followers() {
        let g: Arc<FlightGroup<u64, u64>> =
            Arc::new(FlightGroup::new(1, "flight.panic_map", "flight.panic_slot"));
        let barrier = Arc::new(Barrier::new(2));

        let leader = {
            let (g, barrier) = (Arc::clone(&g), Arc::clone(&barrier));
            std::thread::spawn(move || {
                let _ = g.run(9, || {
                    // Rendezvous inside the flight so the other thread is
                    // guaranteed to join as a follower.
                    barrier.wait();
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    panic!("leader dies mid-compute");
                    #[allow(unreachable_code)]
                    Ok::<u64, ()>(0)
                });
            })
        };
        let follower = {
            let (g, barrier) = (Arc::clone(&g), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                std::thread::sleep(std::time::Duration::from_millis(2));
                g.run(9, || Ok::<_, ()>(11))
            })
        };
        assert!(leader.join().is_err(), "leader must have panicked");
        assert_eq!(follower.join().unwrap(), Ok(11), "follower retried after the unwind");
        assert_eq!(g.in_flight(), 0);
    }
}
