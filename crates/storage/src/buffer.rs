//! [`BufferPool`]: an LRU page cache over a [`PageFile`].

use crate::pagefile::{PageFile, PageId, StorageError};
use crate::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hit/miss counters for a buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// A fixed-capacity LRU cache of pages, write-through.
///
/// Pages are shared as `Arc<Vec<u8>>`, so a reader keeps its page alive even
/// if the pool evicts it concurrently. Write-through keeps the pool trivially
/// crash-consistent (the paper's cubes are written once per maintenance run,
/// so delayed write-back would buy nothing).
pub struct BufferPool {
    file: Arc<PageFile>,
    capacity: usize,
    inner: Mutex<Lru>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct Lru {
    /// page -> (data, last-use tick)
    map: HashMap<u64, (Arc<Vec<u8>>, u64)>,
    tick: u64,
}

impl BufferPool {
    /// Create a pool over `file` holding at most `capacity` pages.
    /// Capacity zero is legal: every access is a miss (useful as the
    /// "no caching" experimental configuration).
    pub fn new(file: Arc<PageFile>, capacity: usize) -> BufferPool {
        BufferPool {
            file,
            capacity,
            inner: Mutex::new_named(Lru { map: HashMap::new(), tick: 0 }, "storage.buffer_pool"),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The underlying page file.
    pub fn file(&self) -> &Arc<PageFile> {
        &self.file
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Read a page through the cache.
    pub fn read(&self, page: PageId) -> Result<Arc<Vec<u8>>, StorageError> {
        {
            let mut lru = self.inner.lock();
            lru.tick += 1;
            let tick = lru.tick;
            if let Some((data, last)) = lru.map.get_mut(&page.0) {
                *last = tick;
                let data = Arc::clone(data);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(data);
            }
        }
        // Miss: fetch outside the lock so concurrent hits are not blocked
        // behind disk latency.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(self.file.read_page_vec(page)?);
        self.admit(page, Arc::clone(&data));
        Ok(data)
    }

    /// Write a page through the cache (updates the cached copy and the file).
    pub fn write(&self, page: PageId, data: Vec<u8>) -> Result<(), StorageError> {
        self.file.write_page(page, &data)?;
        self.admit(page, Arc::new(data));
        Ok(())
    }

    /// Pre-load a page into the cache without counting a hit or miss — the
    /// cache *warming* step of the paper's caching strategy (§VII-A).
    pub fn prefetch(&self, page: PageId) -> Result<(), StorageError> {
        let already = { self.inner.lock().map.contains_key(&page.0) };
        if !already {
            let data = Arc::new(self.file.read_page_vec(page)?);
            self.admit(page, data);
        }
        Ok(())
    }

    /// True when the page is currently cached (no LRU update).
    pub fn contains(&self, page: PageId) -> bool {
        self.inner.lock().map.contains_key(&page.0)
    }

    /// Drop every cached page.
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn admit(&self, page: PageId, data: Arc<Vec<u8>>) {
        if self.capacity == 0 {
            return;
        }
        let mut lru = self.inner.lock();
        lru.tick += 1;
        let tick = lru.tick;
        lru.map.insert(page.0, (data, tick));
        while lru.map.len() > self.capacity {
            // Evict the least-recently-used entry. Linear scan is fine: the
            // pool holds at most a few thousand multi-megabyte pages, so the
            // scan is noise next to one page transfer.
            if let Some((&victim, _)) = lru.map.iter().min_by_key(|(_, (_, last))| *last) {
                lru.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoCostModel;

    fn pool(capacity: usize) -> (BufferPool, Arc<PageFile>) {
        let dir = std::env::temp_dir().join(format!(
            "rased-buffer-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.pg");
        let pf = Arc::new(PageFile::create(&path, 8, IoCostModel::free()).unwrap());
        for i in 0..10u8 {
            pf.append_page(&[i; 8]).unwrap();
        }
        (BufferPool::new(Arc::clone(&pf), capacity), pf)
    }

    #[test]
    fn hit_after_miss() {
        let (pool, pf) = pool(4);
        let before = pf.stats().snapshot();
        let a = pool.read(PageId(3)).unwrap();
        assert_eq!(**a, vec![3u8; 8]);
        let b = pool.read(PageId(3)).unwrap();
        assert_eq!(a, b);
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Only one physical read happened.
        assert_eq!(pf.stats().snapshot().since(&before).reads, 1);
    }

    #[test]
    fn lru_evicts_coldest() {
        let (pool, _pf) = pool(3);
        for p in [0u64, 1, 2] {
            pool.read(PageId(p)).unwrap();
        }
        pool.read(PageId(0)).unwrap(); // refresh page 0
        pool.read(PageId(3)).unwrap(); // evicts page 1 (coldest)
        assert!(pool.contains(PageId(0)));
        assert!(!pool.contains(PageId(1)));
        assert!(pool.contains(PageId(2)));
        assert!(pool.contains(PageId(3)));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_never_caches() {
        let (pool, _pf) = pool(0);
        pool.read(PageId(1)).unwrap();
        pool.read(PageId(1)).unwrap();
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (0, 2));
        assert!(pool.is_empty());
    }

    #[test]
    fn write_through_updates_cache_and_disk() {
        let (pool, pf) = pool(4);
        pool.write(PageId(2), vec![9u8; 8]).unwrap();
        // Cached copy present: no physical read needed.
        let before = pf.stats().snapshot();
        assert_eq!(**pool.read(PageId(2)).unwrap(), vec![9u8; 8]);
        assert_eq!(pf.stats().snapshot().since(&before).reads, 0);
        // And the file sees it too.
        assert_eq!(pf.read_page_vec(PageId(2)).unwrap(), vec![9u8; 8]);
    }

    #[test]
    fn prefetch_counts_neither_hit_nor_miss() {
        let (pool, _pf) = pool(4);
        pool.prefetch(PageId(5)).unwrap();
        assert!(pool.contains(PageId(5)));
        assert_eq!(pool.stats(), PoolStats { hits: 0, misses: 0, evictions: 0 });
        pool.read(PageId(5)).unwrap();
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn clear_empties_pool() {
        let (pool, _pf) = pool(4);
        pool.read(PageId(0)).unwrap();
        assert_eq!(pool.len(), 1);
        pool.clear();
        assert!(pool.is_empty());
    }

    #[test]
    fn bad_page_propagates_error() {
        let (pool, _pf) = pool(4);
        assert!(pool.read(PageId(999)).is_err());
    }
}
