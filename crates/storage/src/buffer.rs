//! [`BufferPool`]: a sharded LRU page cache over a [`PageFile`].

use crate::flight::{mix, FlightGroup};
use crate::lru::LruCache;
use crate::pagefile::{PageFile, PageId, StorageError};
use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hit/miss counters for a buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// Most shards a pool will spread its capacity over.
const MAX_SHARDS: usize = 16;
/// Minimum per-shard page budget before another shard is worth having.
const PAGES_PER_SHARD: usize = 8;

/// How many shards a cache of `capacity` entries gets: one per
/// `PAGES_PER_SHARD` entries, between 1 and `MAX_SHARDS`. Small pools get a
/// single shard, which keeps their eviction behavior *globally* LRU —
/// several unit tests (and the zero/1-slot experimental configurations)
/// rely on that.
pub(crate) fn shards_for(capacity: usize) -> usize {
    (capacity / PAGES_PER_SHARD).clamp(1, MAX_SHARDS)
}

/// A fixed-capacity LRU cache of pages, write-through.
///
/// Pages are shared as `Arc<Vec<u8>>`, so a reader keeps its page alive even
/// if the pool evicts it concurrently. Write-through keeps the pool trivially
/// crash-consistent (the paper's cubes are written once per maintenance run,
/// so delayed write-back would buy nothing).
///
/// Concurrency: the page map is split into shards (by multiplicative hash of
/// the page number), each under its own named mutex, so the parallel
/// executor's workers don't serialize behind one pool-wide lock; capacity is
/// divided across shards. Misses go through a [`FlightGroup`], so N threads
/// missing the same page perform exactly one physical read — the others
/// block on the in-flight slot and share the `Arc`.
pub struct BufferPool {
    file: Arc<PageFile>,
    capacity: usize,
    shards: Vec<Shard>,
    flights: FlightGroup<u64, Arc<Vec<u8>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct Shard {
    /// This shard's slice of the pool capacity.
    cap: usize,
    pages: Mutex<LruCache<u64, Arc<Vec<u8>>>>,
}

impl BufferPool {
    /// Create a pool over `file` holding at most `capacity` pages.
    /// Capacity zero is legal: every access is a miss (useful as the
    /// "no caching" experimental configuration).
    pub fn new(file: Arc<PageFile>, capacity: usize) -> BufferPool {
        BufferPool::with_shards(file, capacity, shards_for(capacity))
    }

    /// Like [`BufferPool::new`] with an explicit shard count (clamped to at
    /// least 1). Capacity is split evenly across shards, the remainder going
    /// to the first shards.
    pub fn with_shards(file: Arc<PageFile>, capacity: usize, shards: usize) -> BufferPool {
        let n = shards.max(1);
        let shards = (0..n)
            .map(|i| Shard {
                cap: capacity / n + usize::from(i < capacity % n),
                pages: Mutex::new_named(LruCache::new(), "storage.buffer_pool"),
            })
            .collect();
        BufferPool {
            file,
            capacity,
            shards,
            flights: FlightGroup::new(n, "storage.page_flight_map", "storage.page_flight_slot"),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The underlying page file.
    pub fn file(&self) -> &Arc<PageFile> {
        &self.file
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards the capacity is spread over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: u64) -> &Shard {
        let i = (mix(key) as usize) % self.shards.len();
        // lint: allow(slice_index, "i is reduced mod shards.len(), which with_shards keeps >= 1")
        &self.shards[i]
    }

    /// Read a page through the cache.
    pub fn read(&self, page: PageId) -> Result<Arc<Vec<u8>>, StorageError> {
        let shard = self.shard(page.0);
        {
            let mut pages = shard.pages.lock();
            if let Some(data) = pages.get(&page.0) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(data));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.fetch(page, shard)
    }

    /// The coalesced miss path: whoever wins the flight performs the one
    /// physical read and admits the page; everyone else shares the `Arc`.
    /// (The pre-flight recheck catches the race where another thread
    /// completed the same miss between our lookup and the flight.)
    fn fetch(&self, page: PageId, shard: &Shard) -> Result<Arc<Vec<u8>>, StorageError> {
        self.flights.run(page.0, || {
            if let Some(data) = shard.pages.lock().get(&page.0) {
                return Ok(Arc::clone(data));
            }
            let data = Arc::new(self.file.read_page_vec(page)?);
            self.admit(page, Arc::clone(&data));
            Ok(data)
        })
    }

    /// Write a page through the cache (updates the cached copy and the file).
    pub fn write(&self, page: PageId, data: Vec<u8>) -> Result<(), StorageError> {
        self.file.write_page(page, &data)?;
        self.admit(page, Arc::new(data));
        Ok(())
    }

    /// Pre-load a page into the cache without counting a hit or miss — the
    /// cache *warming* step of the paper's caching strategy (§VII-A).
    pub fn prefetch(&self, page: PageId) -> Result<(), StorageError> {
        let shard = self.shard(page.0);
        let already = shard.pages.lock().contains(&page.0);
        if !already {
            self.fetch(page, shard)?;
        }
        Ok(())
    }

    /// True when the page is currently cached (no LRU update).
    pub fn contains(&self, page: PageId) -> bool {
        self.shard(page.0).pages.lock().contains(&page.0)
    }

    /// Surgically drop one page: the cached copy (if any) is removed and an
    /// in-flight miss for the page is cancelled so its followers re-resolve
    /// rather than adopt a read of superseded bytes. Used by the write path
    /// when a publish rewrites a page. Returns true when a cached copy was
    /// actually evicted.
    pub fn invalidate(&self, page: PageId) -> bool {
        let removed = self.shard(page.0).pages.lock().remove(&page.0).is_some();
        self.flights.cancel(&page.0);
        removed
    }

    /// Drop every cached page.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.pages.lock().clear();
        }
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.pages.lock().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn admit(&self, page: PageId, data: Arc<Vec<u8>>) {
        let shard = self.shard(page.0);
        if shard.cap == 0 {
            return;
        }
        let mut pages = shard.pages.lock();
        pages.insert(page.0, data);
        while pages.len() > shard.cap {
            if pages.pop_lru().is_none() {
                break;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoCostModel;
    use dettest::TempDir;
    use std::sync::Barrier;

    fn pool(capacity: usize) -> (TempDir, BufferPool, Arc<PageFile>) {
        let dir = TempDir::new("buffer");
        let pf = Arc::new(PageFile::create(&dir.file("pool.pg"), 8, IoCostModel::free()).unwrap());
        for i in 0..10u8 {
            pf.append_page(&[i; 8]).unwrap();
        }
        (dir, BufferPool::new(Arc::clone(&pf), capacity), pf)
    }

    #[test]
    fn hit_after_miss() {
        let (_dir, pool, pf) = pool(4);
        let before = pf.stats().snapshot();
        let a = pool.read(PageId(3)).unwrap();
        assert_eq!(**a, vec![3u8; 8]);
        let b = pool.read(PageId(3)).unwrap();
        assert_eq!(a, b);
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Only one physical read happened.
        assert_eq!(pf.stats().snapshot().since(&before).reads, 1);
    }

    #[test]
    fn lru_evicts_coldest() {
        let (_dir, pool, _pf) = pool(3);
        // Capacity 3 stays on one shard, so eviction is globally LRU.
        assert_eq!(pool.shard_count(), 1);
        for p in [0u64, 1, 2] {
            pool.read(PageId(p)).unwrap();
        }
        pool.read(PageId(0)).unwrap(); // refresh page 0
        pool.read(PageId(3)).unwrap(); // evicts page 1 (coldest)
        assert!(pool.contains(PageId(0)));
        assert!(!pool.contains(PageId(1)));
        assert!(pool.contains(PageId(2)));
        assert!(pool.contains(PageId(3)));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn sharded_pool_respects_total_capacity() {
        let (_dir, _pool, pf) = pool(4);
        let pool = BufferPool::with_shards(pf, 6, 4);
        assert_eq!(pool.shard_count(), 4);
        for p in 0..10u64 {
            pool.read(PageId(p)).unwrap();
        }
        // Per-shard budgets are 2,2,1,1 — never exceeded, so the pool holds
        // at most 6 pages however the hash spread the keys.
        assert!(pool.len() <= 6, "len {} exceeds capacity", pool.len());
        let stats = pool.stats();
        assert_eq!(stats.misses, 10);
        assert_eq!(stats.evictions as usize, 10 - pool.len());
    }

    #[test]
    fn zero_capacity_never_caches() {
        let (_dir, pool, _pf) = pool(0);
        pool.read(PageId(1)).unwrap();
        pool.read(PageId(1)).unwrap();
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (0, 2));
        assert!(pool.is_empty());
    }

    #[test]
    fn write_through_updates_cache_and_disk() {
        let (_dir, pool, pf) = pool(4);
        pool.write(PageId(2), vec![9u8; 8]).unwrap();
        // Cached copy present: no physical read needed.
        let before = pf.stats().snapshot();
        assert_eq!(**pool.read(PageId(2)).unwrap(), vec![9u8; 8]);
        assert_eq!(pf.stats().snapshot().since(&before).reads, 0);
        // And the file sees it too.
        assert_eq!(pf.read_page_vec(PageId(2)).unwrap(), vec![9u8; 8]);
    }

    #[test]
    fn prefetch_counts_neither_hit_nor_miss() {
        let (_dir, pool, _pf) = pool(4);
        pool.prefetch(PageId(5)).unwrap();
        assert!(pool.contains(PageId(5)));
        assert_eq!(pool.stats(), PoolStats { hits: 0, misses: 0, evictions: 0 });
        pool.read(PageId(5)).unwrap();
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn clear_empties_pool() {
        let (_dir, pool, _pf) = pool(4);
        pool.read(PageId(0)).unwrap();
        assert_eq!(pool.len(), 1);
        pool.clear();
        assert!(pool.is_empty());
    }

    #[test]
    fn invalidate_drops_cached_copy_and_forces_reread() {
        let (_dir, pool, pf) = pool(4);
        pool.read(PageId(2)).unwrap();
        assert!(pool.contains(PageId(2)));
        // Rewrite the page behind the pool's back, then invalidate.
        pf.write_page(PageId(2), &[0xAB; 8]).unwrap();
        assert!(pool.invalidate(PageId(2)), "cached copy was evicted");
        assert!(!pool.contains(PageId(2)));
        // Next read faults the fresh bytes in.
        assert_eq!(**pool.read(PageId(2)).unwrap(), vec![0xAB; 8]);
        // Invalidating an uncached page reports false and is harmless.
        assert!(!pool.invalidate(PageId(7)));
    }

    #[test]
    fn bad_page_propagates_error() {
        let (_dir, pool, _pf) = pool(4);
        assert!(pool.read(PageId(999)).is_err());
    }

    /// Regression test for the duplicate-physical-read bug: the old miss
    /// path fetched outside the lock with no coalescing, so N threads
    /// missing the same cold page all called `read_page_vec`. With
    /// single-flight, 8 simultaneous misses must produce exactly 1 read.
    #[test]
    fn concurrent_miss_performs_one_physical_read() {
        let (_dir, pool, pf) = pool(4);
        let before = pf.stats().snapshot();
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                handles.push(scope.spawn(|| {
                    barrier.wait();
                    pool.read(PageId(6)).unwrap()
                }));
            }
            for h in handles {
                assert_eq!(**h.join().unwrap(), vec![6u8; 8]);
            }
        });
        let delta = pf.stats().snapshot().since(&before);
        assert_eq!(delta.reads, 1, "stampede must coalesce to one physical read");
        // Every thread either missed (and was coalesced) or arrived after
        // the admit and hit; none performed a second read.
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, 8);
        assert!(stats.misses >= 1);
        assert!(pool.contains(PageId(6)));
    }
}
