//! [`DiskHashIndex`]: a persistent extendible hash index.
//!
//! The warehouse's hash index on `ChangesetID` (§VI-B) must survive
//! restarts without rescanning the heap, so it lives on disk: classic
//! extendible hashing — an in-memory directory of bucket-page ids doubling
//! on demand, bucket pages splitting by one more hash bit at a time, and
//! overflow chains for pathological single-key pile-ups. Keys and values
//! are `u64` (multi-valued: one key maps to many values).

use crate::pagefile::{PageFile, PageId, StorageError};
use crate::stats::IoCostModel;
use std::path::{Path, PathBuf};

/// Bucket page size. 4 KB holds 254 entries plus the header.
const BUCKET_BYTES: usize = 4096;
/// Bucket header: local_depth u16 | count u16 | pad u32 | overflow u64.
const BUCKET_HEADER: usize = 16;
/// 16 bytes per (key, value) entry.
const ENTRY_BYTES: usize = 16;
/// Entries per bucket page.
const BUCKET_CAPACITY: usize = (BUCKET_BYTES - BUCKET_HEADER) / ENTRY_BYTES;
/// "No overflow page" sentinel.
const NO_OVERFLOW: u64 = u64::MAX;

const DIR_MAGIC: &[u8; 8] = b"RASEDHX1";

/// A bucket page decoded into memory.
struct Bucket {
    local_depth: u16,
    entries: Vec<(u64, u64)>,
    overflow: u64, // PageId or NO_OVERFLOW
}

impl Bucket {
    fn empty(local_depth: u16) -> Bucket {
        Bucket { local_depth, entries: Vec::new(), overflow: NO_OVERFLOW }
    }

    fn decode(page: &[u8]) -> Result<Bucket, StorageError> {
        let corrupt = || StorageError::BadHeader("truncated hash bucket page".into());
        let local_depth = crate::bytes::read_u16_le(page, 0).ok_or_else(corrupt)?;
        let count = crate::bytes::read_u16_le(page, 2).ok_or_else(corrupt)? as usize;
        let overflow = crate::bytes::read_u64_le(page, 8).ok_or_else(corrupt)?;
        let mut entries = Vec::with_capacity(count.min(BUCKET_CAPACITY));
        for i in 0..count.min(BUCKET_CAPACITY) {
            let o = BUCKET_HEADER + i * ENTRY_BYTES;
            let k = crate::bytes::read_u64_le(page, o).ok_or_else(corrupt)?;
            let v = crate::bytes::read_u64_le(page, o + 8).ok_or_else(corrupt)?;
            entries.push((k, v));
        }
        Ok(Bucket { local_depth, entries, overflow })
    }

    fn encode(&self) -> Vec<u8> {
        debug_assert!(self.entries.len() <= BUCKET_CAPACITY);
        let mut page = vec![0u8; BUCKET_BYTES];
        page[0..2].copy_from_slice(&self.local_depth.to_le_bytes());
        page[2..4].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        page[8..16].copy_from_slice(&self.overflow.to_le_bytes());
        for (i, (k, v)) in self.entries.iter().enumerate() {
            let o = BUCKET_HEADER + i * ENTRY_BYTES;
            page[o..o + 8].copy_from_slice(&k.to_le_bytes());
            page[o + 8..o + 16].copy_from_slice(&v.to_le_bytes());
        }
        page
    }
}

/// Fibonacci hashing: spreads sequential ids (changeset ids are sequential)
/// across the full 64-bit space; the directory uses the *top* bits so
/// doubling refines, never reshuffles.
#[inline]
fn hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A persistent extendible hash index mapping `u64 → many u64`.
pub struct DiskHashIndex {
    file: PageFile,
    /// `directory[top global_depth bits of hash]` = bucket page.
    directory: Vec<PageId>,
    global_depth: u8,
    dir_path: PathBuf,
    len: u64,
}

impl DiskHashIndex {
    /// Create a fresh index at `path` (bucket pages) + a `.dir` sidecar.
    pub fn create(path: &Path, model: IoCostModel) -> Result<DiskHashIndex, StorageError> {
        let file = PageFile::create(path, BUCKET_BYTES, model)?;
        let first = file.allocate()?;
        file.write_page(first, &Bucket::empty(0).encode())?;
        let index = DiskHashIndex {
            file,
            directory: vec![first],
            global_depth: 0,
            dir_path: path.with_extension("dir"),
            len: 0,
        };
        index.save_directory()?;
        Ok(index)
    }

    /// Open an existing index.
    pub fn open(path: &Path, model: IoCostModel) -> Result<DiskHashIndex, StorageError> {
        let file = PageFile::open(path, model)?;
        let dir_path = path.with_extension("dir");
        let bytes = std::fs::read(&dir_path)?;
        if bytes.len() < 17 || &bytes[..8] != DIR_MAGIC {
            return Err(StorageError::BadHeader("hash directory sidecar corrupt".into()));
        }
        let global_depth = bytes[8];
        if global_depth > 32 {
            return Err(StorageError::BadHeader("hash directory depth out of range".into()));
        }
        let len = crate::bytes::read_u64_le(&bytes, 9)
            .ok_or_else(|| StorageError::BadHeader("hash directory sidecar corrupt".into()))?;
        let want = 1usize << global_depth;
        let body = &bytes[17..];
        if body.len() < want * 8 {
            return Err(StorageError::BadHeader("hash directory truncated".into()));
        }
        let mut directory = Vec::with_capacity(want);
        for slot in 0..want {
            let raw = crate::bytes::read_u64_le(body, slot * 8)
                .ok_or_else(|| StorageError::BadHeader("hash directory truncated".into()))?;
            directory.push(PageId(raw));
        }
        Ok(DiskHashIndex { file, directory, global_depth, dir_path, len })
    }

    /// Persist the directory sidecar (bucket pages are write-through).
    pub fn sync(&self) -> Result<(), StorageError> {
        self.file.sync()?;
        self.save_directory()
    }

    fn save_directory(&self) -> Result<(), StorageError> {
        let mut out = Vec::with_capacity(17 + self.directory.len() * 8);
        out.extend_from_slice(DIR_MAGIC);
        out.push(self.global_depth);
        out.extend_from_slice(&self.len.to_le_bytes());
        for p in &self.directory {
            out.extend_from_slice(&p.0.to_le_bytes());
        }
        std::fs::write(&self.dir_path, out)?;
        Ok(())
    }

    /// Number of (key, value) entries stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current directory fan-out (diagnostics).
    pub fn directory_size(&self) -> usize {
        self.directory.len()
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        if self.global_depth == 0 {
            0
        } else {
            (hash(key) >> (64 - self.global_depth as u32)) as usize
        }
    }

    fn load(&self, page: PageId) -> Result<Bucket, StorageError> {
        Bucket::decode(&self.file.read_page_vec(page)?)
    }

    fn store(&self, page: PageId, bucket: &Bucket) -> Result<(), StorageError> {
        self.file.write_page(page, &bucket.encode())
    }

    /// All values stored under `key` (bucket + overflow chain scan).
    pub fn get(&self, key: u64) -> Result<Vec<u64>, StorageError> {
        let mut out = Vec::new();
        let mut page = self.directory[self.slot_of(key)];
        loop {
            let bucket = self.load(page)?;
            out.extend(bucket.entries.iter().filter(|(k, _)| *k == key).map(|(_, v)| *v));
            if bucket.overflow == NO_OVERFLOW {
                return Ok(out);
            }
            page = PageId(bucket.overflow);
        }
    }

    /// Insert one (key, value) pair. Duplicate pairs are stored again — the
    /// index is a multimap.
    pub fn insert(&mut self, key: u64, value: u64) -> Result<(), StorageError> {
        loop {
            let page = self.directory[self.slot_of(key)];
            let mut bucket = self.load(page)?;
            if bucket.entries.len() < BUCKET_CAPACITY {
                bucket.entries.push((key, value));
                self.store(page, &bucket)?;
                self.len += 1;
                return Ok(());
            }
            // Full primary bucket. If every entry shares this key's hash
            // prefix at local_depth+1, splitting cannot help — chase or
            // extend the overflow chain instead.
            if bucket.local_depth as u8 >= 63 || self.all_same_side(&bucket) {
                let mut page = page;
                let mut bucket = bucket;
                loop {
                    if bucket.entries.len() < BUCKET_CAPACITY {
                        bucket.entries.push((key, value));
                        self.store(page, &bucket)?;
                        self.len += 1;
                        return Ok(());
                    }
                    if bucket.overflow == NO_OVERFLOW {
                        let fresh = self.file.allocate()?;
                        let mut fresh_bucket = Bucket::empty(bucket.local_depth);
                        fresh_bucket.entries.push((key, value));
                        self.store(fresh, &fresh_bucket)?;
                        bucket.overflow = fresh.0;
                        self.store(page, &bucket)?;
                        self.len += 1;
                        return Ok(());
                    }
                    page = PageId(bucket.overflow);
                    bucket = self.load(page)?;
                }
            }
            self.split(page, bucket)?;
            // Retry: the directory now distinguishes one more bit.
        }
    }

    /// True when all entries of a full bucket would land in the same child
    /// after a split (hash-prefix collision).
    fn all_same_side(&self, bucket: &Bucket) -> bool {
        let bit = 63 - bucket.local_depth as u32;
        let mut sides = bucket.entries.iter().map(|(k, _)| (hash(*k) >> bit) & 1);
        let Some(first) = sides.next() else { return false };
        sides.all(|s| s == first)
    }

    /// Split a full bucket one bit deeper, doubling the directory if the
    /// bucket is already at global depth.
    fn split(&mut self, page: PageId, bucket: Bucket) -> Result<(), StorageError> {
        if bucket.local_depth as u8 == self.global_depth {
            // Double the directory.
            assert!(self.global_depth < 32, "directory over 2^32 slots");
            let mut doubled = Vec::with_capacity(self.directory.len() * 2);
            for &p in &self.directory {
                doubled.push(p);
                doubled.push(p);
            }
            self.directory = doubled;
            self.global_depth += 1;
        }

        let new_depth = bucket.local_depth + 1;
        let bit = 64 - new_depth as u32;
        let mut zero = Bucket::empty(new_depth);
        let mut one = Bucket::empty(new_depth);
        // The overflow chain (if any) belongs to entries that all hash to
        // one side (that is the only way a chain forms), so it follows its
        // side's first entry.
        for (k, v) in &bucket.entries {
            if (hash(*k) >> bit) & 1 == 0 {
                zero.entries.push((*k, *v));
            } else {
                one.entries.push((*k, *v));
            }
        }
        if bucket.overflow != NO_OVERFLOW {
            // Chains only form over same-side collisions; attach to the
            // side holding those entries (zero side if both empty).
            if one.entries.is_empty() {
                zero.overflow = bucket.overflow;
            } else if zero.entries.is_empty() {
                one.overflow = bucket.overflow;
            } else {
                // Mixed chain: fold the chain's entries back in. Rare, but
                // possible after deletions in future extensions; handle by
                // draining the chain into the two sides.
                let mut next = bucket.overflow;
                while next != NO_OVERFLOW {
                    let chained = self.load(PageId(next))?;
                    for (k, v) in &chained.entries {
                        if (hash(*k) >> bit) & 1 == 0 {
                            zero.entries.push((*k, *v));
                        } else {
                            one.entries.push((*k, *v));
                        }
                    }
                    next = chained.overflow;
                }
            }
        }

        let one_page = self.file.allocate()?;
        // Update every directory slot that pointed at the old page: slots
        // whose (new_depth)-th bit is 1 move to the new page.
        for slot in 0..self.directory.len() {
            if self.directory[slot] == page {
                let slot_bit = (slot >> (self.global_depth as usize - new_depth as usize)) & 1;
                if slot_bit == 1 {
                    self.directory[slot] = one_page;
                }
            }
        }
        // Splits can overfill a side past page capacity when entries skew;
        // spill the excess into a fresh overflow chain.
        self.store_with_spill(page, zero)?;
        self.store_with_spill(one_page, one)?;
        Ok(())
    }

    /// Store a bucket, spilling entries beyond page capacity into overflow
    /// pages (preserving any existing chain pointer at the tail).
    fn store_with_spill(&mut self, page: PageId, mut bucket: Bucket) -> Result<(), StorageError> {
        if bucket.entries.len() <= BUCKET_CAPACITY {
            return self.store(page, &bucket);
        }
        let spill: Vec<(u64, u64)> = bucket.entries.split_off(BUCKET_CAPACITY);
        let tail_overflow = bucket.overflow;
        let mut chain: Vec<Bucket> = spill
            .chunks(BUCKET_CAPACITY)
            .map(|chunk| Bucket {
                local_depth: bucket.local_depth,
                entries: chunk.to_vec(),
                overflow: NO_OVERFLOW,
            })
            .collect();
        if let Some(last) = chain.last_mut() {
            last.overflow = tail_overflow;
        }
        // Allocate chain pages and link front to back.
        let mut next = NO_OVERFLOW;
        for b in chain.iter_mut().rev() {
            let p = self.file.allocate()?;
            let tail = b.overflow;
            b.overflow = if tail == NO_OVERFLOW { next } else { tail };
            self.store(p, b)?;
            next = p.0;
        }
        bucket.overflow = next;
        self.store(page, &bucket)
    }
}

impl std::fmt::Debug for DiskHashIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskHashIndex")
            .field("len", &self.len)
            .field("global_depth", &self.global_depth)
            .field("directory_size", &self.directory.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tmppath(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "rased-hashidx-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d.join("index.pg")
    }

    #[test]
    fn insert_and_get_multivalued() {
        let mut idx = DiskHashIndex::create(&tmppath("basic"), IoCostModel::free()).unwrap();
        idx.insert(5, 100).unwrap();
        idx.insert(5, 101).unwrap();
        idx.insert(9, 200).unwrap();
        assert_eq!(idx.len(), 3);
        let mut got = idx.get(5).unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![100, 101]);
        assert_eq!(idx.get(9).unwrap(), vec![200]);
        assert!(idx.get(42).unwrap().is_empty());
    }

    #[test]
    fn grows_past_many_splits_and_matches_model() {
        let mut idx = DiskHashIndex::create(&tmppath("grow"), IoCostModel::free()).unwrap();
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        // Sequential keys with several values each — the changeset pattern.
        for key in 0..3000u64 {
            for j in 0..(key % 4 + 1) {
                let value = key * 10 + j;
                idx.insert(key, value).unwrap();
                model.entry(key).or_default().push(value);
            }
        }
        assert!(idx.directory_size() > 1, "directory must have doubled");
        for (key, want) in &model {
            let mut got = idx.get(*key).unwrap();
            got.sort_unstable();
            let mut want = want.clone();
            want.sort_unstable();
            assert_eq!(got, want, "key {key}");
        }
    }

    #[test]
    fn hot_key_overflow_chain() {
        let mut idx = DiskHashIndex::create(&tmppath("hot"), IoCostModel::free()).unwrap();
        // One key with far more values than a bucket holds.
        let n = (BUCKET_CAPACITY * 3 + 7) as u64;
        for v in 0..n {
            idx.insert(777, v).unwrap();
        }
        // And some other keys around it.
        for k in 0..100u64 {
            idx.insert(k, k).unwrap();
        }
        let mut got = idx.get(777).unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
        assert_eq!(idx.get(50).unwrap(), vec![50]);
    }

    #[test]
    fn persistence_roundtrip() {
        let path = tmppath("persist");
        {
            let mut idx = DiskHashIndex::create(&path, IoCostModel::free()).unwrap();
            for key in 0..500u64 {
                idx.insert(key, key * 2).unwrap();
            }
            idx.sync().unwrap();
        }
        let idx = DiskHashIndex::open(&path, IoCostModel::free()).unwrap();
        assert_eq!(idx.len(), 500);
        for key in 0..500u64 {
            assert_eq!(idx.get(key).unwrap(), vec![key * 2], "key {key}");
        }
    }

    #[test]
    fn corrupt_directory_sidecar_rejected() {
        let path = tmppath("corrupt");
        {
            let idx = DiskHashIndex::create(&path, IoCostModel::free()).unwrap();
            idx.sync().unwrap();
        }
        std::fs::write(path.with_extension("dir"), b"nonsense").unwrap();
        assert!(matches!(
            DiskHashIndex::open(&path, IoCostModel::free()),
            Err(StorageError::BadHeader(_))
        ));
    }

    #[test]
    fn lookups_touch_few_pages() {
        let mut idx = DiskHashIndex::create(&tmppath("iocount"), IoCostModel::free()).unwrap();
        for key in 0..5_000u64 {
            idx.insert(key, key).unwrap();
        }
        let before = idx.file.stats().snapshot();
        for key in 0..100u64 {
            idx.get(key * 7).unwrap();
        }
        let reads = idx.file.stats().snapshot().since(&before).reads;
        assert!(reads <= 110, "expected ~1 page per probe, got {reads} for 100 probes");
    }
}
