//! Poison-transparent locks over `std::sync`, with observability and a
//! debug-build lock-order cycle detector.
//!
//! The workspace used `parking_lot` for its non-poisoning `lock()` API.
//! These wrappers restore that contract on top of the standard library: a
//! panicked holder does not wedge every later caller, because all state
//! guarded here (caches, catalogs, counters) is rebuilt from disk on
//! restart and stays internally consistent under the panic points (no
//! multi-step invariants are held across unwinds).
//!
//! Two operability layers sit on top of that contract:
//!
//! * **Observability** — every lock carries a debug name (explicit via
//!   [`Mutex::new_named`]/[`RwLock::new_named`], or the creation site via
//!   `#[track_caller]`), and every poison recovery increments a global
//!   [`poison_recoveries_total`] counter which the dashboard surfaces at
//!   `GET /api/metrics`. A worker panic is recoverable but must never be
//!   silent.
//! * **Deadlock detection** — under `debug_assertions` every acquisition is
//!   recorded in a process-wide lock-order graph keyed by lock name. The
//!   first acquisition that would close a cycle (an AB/BA inversion across
//!   any number of intermediate locks) panics immediately with a report
//!   naming the locks on the cycle, instead of deadlocking some future run
//!   under exactly the wrong interleaving. The `dettest`/concurrency suites
//!   run in debug builds, so the detector audits every live-server storm in
//!   CI for free; release builds compile it out entirely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{self, MutexGuard as StdMutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Process-wide count of lock acquisitions that recovered a poisoned lock.
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// How many times any [`Mutex`]/[`RwLock`]/[`Condvar`] in this process
/// recovered from poisoning (a holder panicked while the lock was held).
/// Served at `GET /api/metrics` as `sync.poison_recoveries`.
pub fn poison_recoveries_total() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

fn recover<G>(r: Result<G, sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(|e| {
        POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
        e.into_inner()
    })
}

/// The name a lock reports in cycle panics and debug output: an explicit
/// `new_named` label, or the `file:line` of the creation site.
fn site_name(file: &'static str, line: u32) -> LockName {
    LockName { label: file, line }
}

/// Identity of a lock *class* in the order graph. Two locks created at the
/// same site (or given the same explicit name) are the same class: they are
/// expected to obey one consistent acquisition order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LockName {
    label: &'static str,
    /// Creation line, or 0 for explicitly named locks.
    line: u32,
}

impl std::fmt::Display for LockName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.label)
        } else {
            write!(f, "{}:{}", self.label, self.line)
        }
    }
}

impl std::fmt::Debug for LockName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

// --- lock-order detector (debug builds only) -------------------------------

#[cfg(debug_assertions)]
mod order {
    //! A process-wide directed graph of observed acquisition orders.
    //!
    //! Nodes are [`LockName`]s (lock classes). Holding `A` while acquiring
    //! `B` inserts the edge `A → B`. An acquisition whose new edges would
    //! make the graph cyclic is a latent deadlock: some pair of threads can
    //! interleave those two chains and block forever. We panic on the
    //! *first* such acquisition, naming the cycle, which turns a
    //! probabilistic hang into a deterministic test failure.

    use super::LockName;
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::{Mutex, OnceLock};

    /// Edges observed so far, process-wide.
    static GRAPH: OnceLock<Mutex<HashMap<LockName, HashSet<LockName>>>> = OnceLock::new();

    thread_local! {
        /// Lock classes currently held by this thread, in acquisition order.
        static HELD: RefCell<Vec<LockName>> = const { RefCell::new(Vec::new()) };
    }

    fn graph() -> &'static Mutex<HashMap<LockName, HashSet<LockName>>> {
        GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Is `to` reachable from `from` along recorded edges?
    fn path(
        edges: &HashMap<LockName, HashSet<LockName>>,
        from: LockName,
        to: LockName,
        trace: &mut Vec<LockName>,
    ) -> bool {
        if from == to {
            trace.push(from);
            return true;
        }
        let Some(next) = edges.get(&from) else { return false };
        trace.push(from);
        for &n in next {
            if !trace.contains(&n) && path(edges, n, to, trace) {
                return true;
            }
        }
        trace.pop();
        false
    }

    /// Record that this thread is acquiring `new` while holding whatever it
    /// holds; panic if that closes a cycle in the order graph.
    pub(super) fn acquiring(new: LockName) {
        HELD.with(|held| {
            let held = held.borrow();
            if held.is_empty() {
                return;
            }
            let mut edges = match graph().lock() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            for &h in held.iter() {
                // Adding h → new closes a cycle iff new already reaches h.
                let mut trace = Vec::new();
                if path(&edges, new, h, &mut trace) {
                    let chain: Vec<String> =
                        trace.iter().map(|n| format!("`{n}`")).collect();
                    drop(edges);
                    // lint: allow(panic, "the lock-order detector's whole job is to panic with a cycle report")
                    panic!(
                        "lock-order cycle: acquiring `{new}` while holding `{h}`, but the \
                         established order is {} → `{h}` — an AB/BA deadlock waiting for the \
                         right interleaving",
                        chain.join(" → "),
                    );
                }
                edges.entry(h).or_default().insert(new);
            }
        });
    }

    /// The acquisition succeeded; the guard now exists.
    pub(super) fn acquired(name: LockName) {
        HELD.with(|held| held.borrow_mut().push(name));
    }

    /// A guard of class `name` was dropped.
    pub(super) fn released(name: LockName) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(i) = held.iter().rposition(|&h| h == name) {
                held.remove(i);
            }
        });
    }
}

#[cfg(not(debug_assertions))]
mod order {
    use super::LockName;
    #[inline(always)]
    pub(super) fn acquiring(_: LockName) {}
    #[inline(always)]
    pub(super) fn acquired(_: LockName) {}
    #[inline(always)]
    pub(super) fn released(_: LockName) {}
}

// --- Mutex -----------------------------------------------------------------

/// A mutex whose `lock` never fails: poisoning is cleared (and counted) on
/// acquisition. Debug builds track every acquisition in the lock-order
/// graph.
#[derive(Debug)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
    name: LockName,
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex named after its creation site.
    #[track_caller]
    pub fn new(value: T) -> Mutex<T> {
        let loc = std::panic::Location::caller();
        Mutex { inner: sync::Mutex::new(value), name: site_name(loc.file(), loc.line()) }
    }

    /// Create a new mutex with an explicit debug name (shown in lock-order
    /// cycle reports and deadlock diagnostics).
    pub fn new_named(value: T, name: &'static str) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value), name: LockName { label: name, line: 0 } }
    }

    /// The lock's debug name.
    pub fn name(&self) -> LockName {
        self.name
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        order::acquiring(self.name);
        let guard = recover(self.inner.lock());
        order::acquired(self.name);
        MutexGuard { inner: Some(guard), name: self.name }
    }
}

/// Guard returned by [`Mutex::lock`]; releases the lock (and its slot in
/// the order-detector's held set) on drop.
pub struct MutexGuard<'a, T> {
    /// `Some` except transiently inside [`Condvar::wait`].
    inner: Option<StdMutexGuard<'a, T>>,
    name: LockName,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            // lint: allow(panic, "unreachable: the inner guard is only vacated inside Condvar::wait, which restores it before returning")
            None => unreachable!("mutex guard vacated outside Condvar::wait"),
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            // lint: allow(panic, "unreachable: the inner guard is only vacated inside Condvar::wait, which restores it before returning")
            None => unreachable!("mutex guard vacated outside Condvar::wait"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        order::released(self.name);
    }
}

// --- RwLock ----------------------------------------------------------------

/// A reader-writer lock whose `read`/`write` never fail: poisoning is
/// cleared (and counted) on acquisition. Debug builds track acquisitions in
/// the lock-order graph — including read-after-read on the same lock, which
/// can deadlock against a queued writer under `std::sync::RwLock`.
#[derive(Debug)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
    name: LockName,
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T> RwLock<T> {
    /// Create a new lock named after its creation site.
    #[track_caller]
    pub fn new(value: T) -> RwLock<T> {
        let loc = std::panic::Location::caller();
        RwLock { inner: sync::RwLock::new(value), name: site_name(loc.file(), loc.line()) }
    }

    /// Create a new lock with an explicit debug name.
    pub fn new_named(value: T, name: &'static str) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value), name: LockName { label: name, line: 0 } }
    }

    /// The lock's debug name.
    pub fn name(&self) -> LockName {
        self.name
    }

    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        order::acquiring(self.name);
        let guard = recover(self.inner.read());
        order::acquired(self.name);
        RwLockReadGuard { inner: guard, name: self.name }
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        order::acquiring(self.name);
        let guard = recover(self.inner.write());
        order::acquired(self.name);
        RwLockWriteGuard { inner: guard, name: self.name }
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    inner: sync::RwLockReadGuard<'a, T>,
    name: LockName,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        order::released(self.name);
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    inner: sync::RwLockWriteGuard<'a, T>,
    name: LockName,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        order::released(self.name);
    }
}

// --- Condvar ---------------------------------------------------------------

/// A condition variable whose waits recover from poisoning, paired with
/// [`Mutex`] (the dashboard's connection queue blocks on this).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing and reacquiring the mutex.
    ///
    /// The guard keeps its slot in the order-detector's held set across the
    /// wait: a waiting thread acquires nothing, so it can add no edges, and
    /// on wake it holds the same lock it held before.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let name = guard.name;
        // Move the std guard out without running our Drop (the lock is
        // conceptually still this thread's — it reacquires before
        // returning), then re-wrap the guard std hands back.
        let Some(inner) = guard.inner.take() else {
            // lint: allow(panic, "unreachable: guards in user hands always carry their inner guard")
            unreachable!("mutex guard vacated outside Condvar::wait")
        };
        std::mem::forget(guard);
        let inner = recover(self.0.wait(inner));
        MutexGuard { inner: Some(inner), name }
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let name = guard.name;
        let Some(inner) = guard.inner.take() else {
            // lint: allow(panic, "unreachable: guards in user hands always carry their inner guard")
            unreachable!("mutex guard vacated outside Condvar::wait_timeout")
        };
        std::mem::forget(guard);
        let (inner, result) = recover(self.0.wait_timeout(inner, timeout));
        (MutexGuard { inner: Some(inner), name }, result)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers_and_counts() {
        let m = Arc::new(Mutex::new(10));
        let m2 = Arc::clone(&m);
        let before = poison_recoveries_total();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A std Mutex would now return Err on lock; the wrapper recovers.
        assert_eq!(*m.lock(), 10);
        *m.lock() = 11;
        assert_eq!(*m.lock(), 11);
        assert!(poison_recoveries_total() > before, "recovery must be counted");
    }

    #[test]
    fn poisoned_rwlock_recovers() {
        let l = Arc::new(RwLock::new(5));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn names_report_creation_site_or_label() {
        let named = Mutex::new_named((), "storage.test_lock");
        assert_eq!(named.name().to_string(), "storage.test_lock");
        let sited = Mutex::new(());
        let name = sited.name().to_string();
        assert!(name.contains("sync.rs"), "{name}");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new_named(false, "cv.flag"), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut flag = m.lock();
            while !*flag {
                flag = cv.wait(flag);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (m, cv) = &*pair.clone();
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().expect("waiter joins"));
    }

    #[test]
    fn condvar_wait_timeout_returns() {
        let m = Mutex::new_named(0u32, "cv.timeout_value");
        let cv = Condvar::new();
        let (guard, result) = cv.wait_timeout(m.lock(), Duration::from_millis(5));
        assert!(result.timed_out());
        assert_eq!(*guard, 0);
    }

    /// Consistent-order nesting across threads must not trip the detector.
    #[cfg(debug_assertions)]
    #[test]
    fn consistent_nesting_is_clean() {
        let a = Arc::new(Mutex::new_named(0, "order.clean_a"));
        let b = Arc::new(Mutex::new_named(0, "order.clean_b"));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let ga = a.lock();
                    let gb = b.lock();
                    drop(gb);
                    drop(ga);
                }
            }));
        }
        for h in handles {
            h.join().expect("clean nesting");
        }
    }

    /// The acceptance-criteria test: an AB then BA acquisition panics with a
    /// cycle report naming both locks.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order cycle")]
    fn ab_ba_inversion_panics_with_cycle_report() {
        let a = Mutex::new_named(0, "order.test_a");
        let b = Mutex::new_named(0, "order.test_b");
        {
            let _ga = a.lock();
            let _gb = b.lock(); // establishes a → b
        }
        let _gb = b.lock();
        let _ga = a.lock(); // b → a closes the cycle: panic
    }

    /// The panic message names both locks on the cycle.
    #[cfg(debug_assertions)]
    #[test]
    fn cycle_report_names_both_locks() {
        let result = std::thread::spawn(|| {
            let a = Mutex::new_named(0, "order.report_a");
            let b = Mutex::new_named(0, "order.report_b");
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .join();
        let Err(payload) = result else {
            panic!("inversion must panic");
        };
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string");
        assert!(msg.contains("order.report_a"), "{msg}");
        assert!(msg.contains("order.report_b"), "{msg}");
    }

    /// Longer cycles (A→B, B→C, then C→A) are caught too.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order cycle")]
    fn three_lock_cycle_is_detected() {
        let a = Mutex::new_named(0, "order.tri_a");
        let b = Mutex::new_named(0, "order.tri_b");
        let c = Mutex::new_named(0, "order.tri_c");
        {
            let _ga = a.lock();
            let _gb = b.lock(); // a → b
        }
        {
            let _gb = b.lock();
            let _gc = c.lock(); // b → c
        }
        let _gc = c.lock();
        let _ga = a.lock(); // c → a: cycle through b
    }

    /// Re-reading the same RwLock on one thread is flagged: a queued writer
    /// between the two reads deadlocks both.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order cycle")]
    fn nested_read_of_same_rwlock_is_flagged() {
        let l = RwLock::new_named(0, "order.reentrant_read");
        let _g1 = l.read();
        let _g2 = l.read();
    }
}
