//! Poison-transparent locks over `std::sync`.
//!
//! The workspace used `parking_lot` for its non-poisoning `lock()` API.
//! These wrappers restore that contract on top of the standard library: a
//! panicked holder does not wedge every later caller, because all state
//! guarded here (caches, catalogs, counters) is rebuilt from disk on
//! restart and stays internally consistent under the panic points (no
//! multi-step invariants are held across unwinds).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never fails: poisoning is cleared on acquisition.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` never fail: poisoning is
/// cleared on acquisition.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(10));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A std Mutex would now return Err on lock; the wrapper recovers.
        assert_eq!(*m.lock(), 10);
        *m.lock() = 11;
        assert_eq!(*m.lock(), 11);
    }

    #[test]
    fn poisoned_rwlock_recovers() {
        let l = Arc::new(RwLock::new(5));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
