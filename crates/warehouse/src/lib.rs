//! The sample-update warehouse (§IV-B, §VI-B).
//!
//! Alongside the cube index, RASED dumps the whole *UpdateList* into "a
//! standard database table indexed by (a) a hash index on ChangesetID …
//! and (b) a spatial index on ⟨Latitude, Longitude⟩". Sample-update queries
//! pick N updates in a region to plot on the map and jump from a sample to
//! its changeset.
//!
//! This crate implements that table: a heap file of fixed-width 28-byte
//! [`UpdateRecord`](rased_osm_model::UpdateRecord) rows over 8 KB pages, read through a [`BufferPool`](rased_storage::BufferPool),
//! with an in-memory hash index (changeset → rows) and a uniform-grid
//! spatial index (lat/lon → rows). The heap file is also the relation the
//! row-scan DBMS baseline (Fig. 10) scans — both systems see the same
//! physical data.

mod heap;
mod warehouse;

pub use heap::{HeapFile, RowId, HEAP_PAGE_BYTES, ROWS_PER_PAGE};
pub use warehouse::{Warehouse, WarehouseError};
