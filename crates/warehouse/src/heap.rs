//! [`HeapFile`]: fixed-width update records packed into 8 KB pages.

use rased_osm_model::{UpdateRecord, UPDATE_RECORD_BYTES};
use rased_storage::{BufferPool, IoCostModel, PageFile, PageId, StorageError};
use std::path::Path;
use std::sync::Arc;

/// Heap page size. 8 KB matches the PostgreSQL default, which matters for
/// the Fig. 10 comparison: the baseline scans the same pages a real DBMS
/// would.
pub const HEAP_PAGE_BYTES: usize = 8192;

/// Records per page (full records only; the page tail is padding).
pub const ROWS_PER_PAGE: usize = HEAP_PAGE_BYTES / UPDATE_RECORD_BYTES;

/// Ordinal of a row in the heap (dense, append-order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

impl RowId {
    fn page(self) -> PageId {
        PageId(self.0 / ROWS_PER_PAGE as u64)
    }

    fn slot(self) -> usize {
        (self.0 % ROWS_PER_PAGE as u64) as usize
    }
}

/// An append-only heap file of [`UpdateRecord`]s.
///
/// Appends accumulate in an in-memory tail page that is written once when
/// full (bulk loads cost one physical write per page, not per row). Call
/// [`HeapFile::flush`] before dropping to persist a partial tail — rows in
/// an unflushed tail are lost on reopen.
pub struct HeapFile {
    file: Arc<PageFile>,
    pool: BufferPool,
    row_count: u64,
    tail: Vec<u8>,
    tail_rows: usize,
    /// True when the current partial tail has been written to disk (so the
    /// next flush overwrites instead of appending).
    tail_on_disk: bool,
}

impl HeapFile {
    /// Create a fresh heap file; `pool_pages` sizes the read cache.
    pub fn create(path: &Path, model: IoCostModel, pool_pages: usize) -> Result<HeapFile, StorageError> {
        let file = Arc::new(PageFile::create(path, HEAP_PAGE_BYTES, model)?);
        Ok(HeapFile {
            pool: BufferPool::new(Arc::clone(&file), pool_pages),
            file,
            row_count: 0,
            tail: vec![0u8; HEAP_PAGE_BYTES],
            tail_rows: 0,
            tail_on_disk: false,
        })
    }

    /// Reopen an existing heap file. The row count is derived from the page
    /// count and a scan of the final page (a slot of zero bytes decodes to
    /// a row with changeset 0 — a pattern real rows cannot produce because
    /// changeset ids start at 1).
    pub fn open(path: &Path, model: IoCostModel, pool_pages: usize) -> Result<HeapFile, StorageError> {
        let file = Arc::new(PageFile::open(path, model)?);
        let pages = file.page_count();
        let mut row_count = 0u64;
        let mut tail = vec![0u8; HEAP_PAGE_BYTES];
        let mut tail_rows = 0usize;
        let mut tail_on_disk = false;
        if pages > 0 {
            let last = PageId(pages - 1);
            let data = file.read_page_vec(last)?;
            let mut used = 0usize;
            for slot in 0..ROWS_PER_PAGE {
                let start = slot * UPDATE_RECORD_BYTES;
                if data[start..start + UPDATE_RECORD_BYTES].iter().all(|&b| b == 0) {
                    break;
                }
                used += 1;
            }
            row_count = (pages - 1) * ROWS_PER_PAGE as u64 + used as u64;
            if used < ROWS_PER_PAGE {
                // Partial tail: keep editing it in memory.
                tail.copy_from_slice(&data);
                tail_rows = used;
                tail_on_disk = true;
            }
        }
        Ok(HeapFile {
            pool: BufferPool::new(Arc::clone(&file), pool_pages),
            file,
            row_count,
            tail,
            tail_rows,
            tail_on_disk,
        })
    }

    /// Number of rows stored (including unflushed tail rows).
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// Number of pages on disk.
    pub fn page_count(&self) -> u64 {
        self.file.page_count()
    }

    /// The backing page file (I/O stats live there).
    pub fn file(&self) -> &Arc<PageFile> {
        &self.file
    }

    /// The read cache.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// First row held in the in-memory tail buffer.
    fn tail_first_row(&self) -> u64 {
        self.row_count - self.tail_rows as u64
    }

    /// Append one record, returning its row id.
    pub fn append(&mut self, record: &UpdateRecord) -> Result<RowId, StorageError> {
        let rid = RowId(self.row_count);
        let start = self.tail_rows * UPDATE_RECORD_BYTES;
        self.tail[start..start + UPDATE_RECORD_BYTES].copy_from_slice(&record.encode());
        self.tail_rows += 1;
        self.row_count += 1;
        if self.tail_rows == ROWS_PER_PAGE {
            self.write_tail()?;
            self.tail.fill(0);
            self.tail_rows = 0;
            self.tail_on_disk = false;
        }
        Ok(rid)
    }

    fn write_tail(&mut self) -> Result<(), StorageError> {
        if self.tail_on_disk {
            let page = PageId(self.file.page_count() - 1);
            self.file.write_page(page, &self.tail)?;
        } else {
            self.file.append_page(&self.tail)?;
            self.tail_on_disk = true;
        }
        Ok(())
    }

    /// Persist a partial tail page (no-op when the tail is empty or full
    /// pages were already written).
    pub fn flush(&mut self) -> Result<(), StorageError> {
        if self.tail_rows > 0 {
            self.write_tail()?;
        }
        self.file.sync()
    }

    /// Drop every row at or beyond `keep` (no-op when `keep >= row_count`).
    /// The crash-repair path: the warehouse is trimmed back to the durable
    /// watermark recorded with the last committed cube unit. If the cut
    /// lands mid-page, the boundary page's surviving prefix becomes the
    /// in-memory tail again (call [`HeapFile::flush`] to persist it); the
    /// read cache is cleared because page ids past the cut get reused.
    pub fn truncate_rows(&mut self, keep: u64) -> Result<(), StorageError> {
        if keep >= self.row_count {
            return Ok(());
        }
        let keep_full_pages = keep / ROWS_PER_PAGE as u64;
        let rem = (keep % ROWS_PER_PAGE as u64) as usize;
        let mut new_tail = vec![0u8; HEAP_PAGE_BYTES];
        if rem > 0 {
            // The boundary page starts at a page-aligned row, so it is
            // either the current in-memory tail or a full page on disk.
            let src = if keep_full_pages * ROWS_PER_PAGE as u64 == self.tail_first_row() {
                std::mem::take(&mut self.tail)
            } else {
                self.file.read_page_vec(PageId(keep_full_pages))?
            };
            let prefix = rem * UPDATE_RECORD_BYTES;
            for (d, s) in new_tail.iter_mut().zip(src.iter()).take(prefix) {
                *d = *s;
            }
        }
        self.file.truncate_pages(keep_full_pages)?;
        self.pool.clear();
        self.tail = new_tail;
        self.tail_rows = rem;
        self.tail_on_disk = false;
        self.row_count = keep;
        Ok(())
    }

    /// Overwrite existing rows in place. Batched: one read-modify-write
    /// per touched disk page; tail rows are patched in memory (the next
    /// [`HeapFile::flush`] persists them). Row ids at or beyond the heap
    /// are ignored. Returns the number of rows rewritten.
    ///
    /// Callers must not move a row spatially or across changesets — the
    /// grid and hash indexes reference rows by id and are not updated
    /// here. The monthly-refinement path only upgrades update types.
    pub fn rewrite(&mut self, changes: &[(RowId, UpdateRecord)]) -> Result<usize, StorageError> {
        let mut by_page: std::collections::BTreeMap<PageId, Vec<(usize, UpdateRecord)>> =
            std::collections::BTreeMap::new();
        let mut done = 0usize;
        for (rid, rec) in changes {
            if rid.0 >= self.row_count {
                continue;
            }
            if rid.0 >= self.tail_first_row() {
                let slot = (rid.0 - self.tail_first_row()) as usize;
                let start = slot * UPDATE_RECORD_BYTES;
                if let Some(dst) = self.tail.get_mut(start..start + UPDATE_RECORD_BYTES) {
                    dst.copy_from_slice(&rec.encode());
                    done += 1;
                }
                continue;
            }
            by_page.entry(rid.page()).or_default().push((rid.slot(), *rec));
        }
        let touched_disk = !by_page.is_empty();
        for (page, slots) in by_page {
            let mut data = self.file.read_page_vec(page)?;
            for (slot, rec) in slots {
                let start = slot * UPDATE_RECORD_BYTES;
                if let Some(dst) = data.get_mut(start..start + UPDATE_RECORD_BYTES) {
                    dst.copy_from_slice(&rec.encode());
                    done += 1;
                }
            }
            self.file.write_page(page, &data)?;
        }
        if touched_disk {
            // Page ids keep their meaning but contents changed; drop any
            // cached copies rather than tracking them individually.
            self.pool.clear();
        }
        Ok(done)
    }

    /// Read one row.
    pub fn get(&self, rid: RowId) -> Result<Option<UpdateRecord>, StorageError> {
        if rid.0 >= self.row_count {
            return Ok(None);
        }
        if rid.0 >= self.tail_first_row() {
            let slot = (rid.0 - self.tail_first_row()) as usize;
            let chunk = record_chunk(&self.tail, slot)?;
            return Ok(UpdateRecord::decode(chunk));
        }
        let page = self.pool.read(rid.page())?;
        let chunk = record_chunk(page.as_slice(), rid.slot())?;
        Ok(UpdateRecord::decode(chunk))
    }

    /// Visit every row in append order: sequential page reads through the
    /// pool (the physical access path of the row-scan baseline), then the
    /// in-memory tail.
    pub fn scan(&self, mut visit: impl FnMut(RowId, &UpdateRecord)) -> Result<(), StorageError> {
        let full_rows = self.tail_first_row();
        let mut rid = 0u64;
        let full_pages = full_rows.div_ceil(ROWS_PER_PAGE as u64);
        for p in 0..full_pages {
            let page = self.pool.read(PageId(p))?;
            for slot in 0..ROWS_PER_PAGE {
                if rid >= full_rows {
                    break;
                }
                let chunk = record_chunk(page.as_slice(), slot)?;
                if let Some(rec) = UpdateRecord::decode(chunk) {
                    visit(RowId(rid), &rec);
                }
                rid += 1;
            }
        }
        for slot in 0..self.tail_rows {
            let chunk = record_chunk(&self.tail, slot)?;
            if let Some(rec) = UpdateRecord::decode(chunk) {
                visit(RowId(rid), &rec);
            }
            rid += 1;
        }
        Ok(())
    }
}

/// The fixed-size record slice at `slot` in `buf`, bounds-checked: a slot
/// beyond the buffer means a corrupt page or tail and surfaces as an error
/// instead of a panic on the request path.
fn record_chunk(buf: &[u8], slot: usize) -> Result<&[u8; UPDATE_RECORD_BYTES], StorageError> {
    slot.checked_mul(UPDATE_RECORD_BYTES)
        .and_then(|start| buf.get(start..start.checked_add(UPDATE_RECORD_BYTES)?))
        .and_then(|c| <&[u8; UPDATE_RECORD_BYTES]>::try_from(c).ok())
        .ok_or(StorageError::WrongBufferSize {
            expected: (slot + 1) * UPDATE_RECORD_BYTES,
            got: buf.len(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rased_osm_model::{ChangesetId, CountryId, ElementType, RoadTypeId, UpdateType};

    fn rec(i: u64) -> UpdateRecord {
        UpdateRecord {
            element_type: ElementType::ALL[(i % 3) as usize],
            update_type: UpdateType::ALL[(i % 5) as usize],
            country: CountryId((i % 7) as u16),
            road_type: RoadTypeId((i % 11) as u16),
            date: rased_temporal::Date::from_days(18_000 + i as i32),
            lat7: (i as i32) * 1000,
            lon7: -(i as i32) * 500,
            changeset: ChangesetId(i + 1), // ids start at 1 (see HeapFile::open)
        }
    }

    fn tmppath(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "rased-heap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d.join("heap.pg")
    }

    #[test]
    fn append_and_get_across_pages() {
        let mut h = HeapFile::create(&tmppath("basic"), IoCostModel::free(), 8).unwrap();
        let mut rids = Vec::new();
        for i in 0..700u64 {
            // spans multiple pages (292 rows per 8 KB page)
            rids.push(h.append(&rec(i)).unwrap());
        }
        assert_eq!(h.row_count(), 700);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap().unwrap(), rec(i as u64), "row {i}");
        }
        assert_eq!(h.get(RowId(700)).unwrap(), None);
    }

    #[test]
    fn bulk_load_writes_one_page_per_page() {
        let mut h = HeapFile::create(&tmppath("bulk"), IoCostModel::free(), 8).unwrap();
        let before = h.file().stats().snapshot();
        for i in 0..(3 * ROWS_PER_PAGE as u64) {
            h.append(&rec(i)).unwrap();
        }
        let d = h.file().stats().snapshot().since(&before);
        assert_eq!(d.writes, 3, "exactly one physical write per full page");
    }

    #[test]
    fn scan_visits_all_rows_in_order_including_tail() {
        let mut h = HeapFile::create(&tmppath("scan"), IoCostModel::free(), 8).unwrap();
        for i in 0..400u64 {
            h.append(&rec(i)).unwrap();
        }
        let mut seen = Vec::new();
        h.scan(|rid, r| seen.push((rid.0, r.changeset.raw()))).unwrap();
        assert_eq!(seen.len(), 400);
        for (i, (rid, cs)) in seen.iter().enumerate() {
            assert_eq!(*rid, i as u64);
            assert_eq!(*cs, i as u64 + 1);
        }
    }

    #[test]
    fn reopen_recovers_flushed_tail() {
        let path = tmppath("reopen");
        {
            let mut h = HeapFile::create(&path, IoCostModel::free(), 8).unwrap();
            for i in 0..300u64 {
                h.append(&rec(i)).unwrap();
            }
            h.flush().unwrap();
        }
        let mut h = HeapFile::open(&path, IoCostModel::free(), 8).unwrap();
        assert_eq!(h.row_count(), 300);
        assert_eq!(h.get(RowId(299)).unwrap().unwrap(), rec(299));
        // Appending after reopen continues the tail page.
        let rid = h.append(&rec(300)).unwrap();
        assert_eq!(rid, RowId(300));
        assert_eq!(h.get(rid).unwrap().unwrap(), rec(300));
        h.flush().unwrap();
        let h2 = HeapFile::open(&path, IoCostModel::free(), 8).unwrap();
        assert_eq!(h2.row_count(), 301);
    }

    #[test]
    fn reopen_exact_page_boundary() {
        let path = tmppath("boundary");
        let n = ROWS_PER_PAGE as u64; // exactly one full page
        {
            let mut h = HeapFile::create(&path, IoCostModel::free(), 8).unwrap();
            for i in 0..n {
                h.append(&rec(i)).unwrap();
            }
            h.flush().unwrap();
        }
        let mut h = HeapFile::open(&path, IoCostModel::free(), 8).unwrap();
        assert_eq!(h.row_count(), n);
        let rid = h.append(&rec(n)).unwrap();
        assert_eq!(rid.0, n);
        h.flush().unwrap();
        assert_eq!(h.page_count(), 2);
    }

    #[test]
    fn unflushed_tail_is_lost_on_reopen() {
        let path = tmppath("lost");
        {
            let mut h = HeapFile::create(&path, IoCostModel::free(), 8).unwrap();
            for i in 0..10u64 {
                h.append(&rec(i)).unwrap();
            }
            // no flush
        }
        let h = HeapFile::open(&path, IoCostModel::free(), 8).unwrap();
        assert_eq!(h.row_count(), 0, "documented: unflushed tail does not survive");
    }

    #[test]
    fn truncate_rows_mid_page_keeps_exact_prefix() {
        let path = tmppath("trunc-mid");
        let n = 2 * ROWS_PER_PAGE as u64 + 50; // 2 full pages + tail
        let mut h = HeapFile::create(&path, IoCostModel::free(), 8).unwrap();
        for i in 0..n {
            h.append(&rec(i)).unwrap();
        }
        h.flush().unwrap();
        // Cut mid-way through page 1.
        let keep = ROWS_PER_PAGE as u64 + 7;
        h.truncate_rows(keep).unwrap();
        assert_eq!(h.row_count(), keep);
        assert_eq!(h.get(RowId(keep - 1)).unwrap().unwrap(), rec(keep - 1));
        assert_eq!(h.get(RowId(keep)).unwrap(), None);
        // Appends continue from the cut, and the state survives a flush +
        // reopen (dropped pages must not resurrect).
        assert_eq!(h.append(&rec(keep)).unwrap(), RowId(keep));
        h.flush().unwrap();
        let h2 = HeapFile::open(&path, IoCostModel::free(), 8).unwrap();
        assert_eq!(h2.row_count(), keep + 1);
        let mut seen = 0u64;
        h2.scan(|rid, r| {
            assert_eq!((rid.0, *r), (seen, rec(seen)));
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, keep + 1);
    }

    #[test]
    fn truncate_rows_boundary_and_zero() {
        let path = tmppath("trunc-edge");
        let mut h = HeapFile::create(&path, IoCostModel::free(), 8).unwrap();
        for i in 0..(ROWS_PER_PAGE as u64 + 10) {
            h.append(&rec(i)).unwrap();
        }
        h.flush().unwrap();
        // Cut exactly at the page boundary: no partial tail survives.
        h.truncate_rows(ROWS_PER_PAGE as u64).unwrap();
        assert_eq!(h.row_count(), ROWS_PER_PAGE as u64);
        assert_eq!(h.page_count(), 1);
        // Cut inside the (now in-memory) reconstruction down to 3 rows.
        h.truncate_rows(3).unwrap();
        assert_eq!(h.row_count(), 3);
        assert_eq!(h.get(RowId(2)).unwrap().unwrap(), rec(2));
        // Cut to zero.
        h.truncate_rows(0).unwrap();
        h.flush().unwrap();
        assert_eq!(h.row_count(), 0);
        let h2 = HeapFile::open(&path, IoCostModel::free(), 8).unwrap();
        assert_eq!(h2.row_count(), 0);
    }

    #[test]
    fn empty_heap() {
        let path = tmppath("empty");
        {
            let _ = HeapFile::create(&path, IoCostModel::free(), 8).unwrap();
        }
        let h = HeapFile::open(&path, IoCostModel::free(), 8).unwrap();
        assert_eq!(h.row_count(), 0);
        let mut n = 0;
        h.scan(|_, _| n += 1).unwrap();
        assert_eq!(n, 0);
    }
}
