//! [`Warehouse`]: the indexed UpdateList table for sample queries.

use crate::heap::{HeapFile, RowId};
use rased_geo::{BBox, GridIndex, Point};
use rased_osm_model::{ChangesetId, UpdateRecord};
use rased_storage::{DiskHashIndex, IoCostModel, StorageError};
use std::fmt;
use std::path::Path;

/// Warehouse-level error.
#[derive(Debug)]
pub enum WarehouseError {
    Storage(StorageError),
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WarehouseError {}

impl From<StorageError> for WarehouseError {
    fn from(e: StorageError) -> Self {
        WarehouseError::Storage(e)
    }
}

/// The sample-update warehouse: heap file + hash index on `ChangesetID` +
/// grid spatial index on (lat, lon), exactly the two indexes §VI-B calls
/// for.
///
/// The changeset index is a persistent extendible hash
/// ([`DiskHashIndex`]) — reopening never rescans the heap for it. The
/// spatial grid is memory-resident and rebuilt with one heap scan on open
/// (its cells are position-derived, so persistence would only save that
/// single scan).
pub struct Warehouse {
    heap: HeapFile,
    by_changeset: DiskHashIndex,
    spatial: GridIndex<RowId>,
}

impl fmt::Debug for Warehouse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Warehouse").field("rows", &self.heap.row_count()).finish_non_exhaustive()
    }
}

impl Warehouse {
    /// Create a fresh warehouse at `path` (plus `path.hx`/`.dir` sidecars
    /// for the changeset hash index).
    pub fn create(path: &Path, model: IoCostModel, pool_pages: usize) -> Result<Warehouse, WarehouseError> {
        Ok(Warehouse {
            heap: HeapFile::create(path, model, pool_pages)?,
            by_changeset: DiskHashIndex::create(&path.with_extension("hx"), model)?,
            spatial: GridIndex::world_default(),
        })
    }

    /// Reopen an existing warehouse: the persistent changeset index opens
    /// directly; the spatial grid is rebuilt with one scan.
    pub fn open(path: &Path, model: IoCostModel, pool_pages: usize) -> Result<Warehouse, WarehouseError> {
        let heap = HeapFile::open(path, model, pool_pages)?;
        let by_changeset = DiskHashIndex::open(&path.with_extension("hx"), model)?;
        let mut spatial = GridIndex::world_default();
        heap.scan(|rid, rec| {
            spatial.insert(Point::new(rec.lat7, rec.lon7), rid);
        })?;
        Ok(Warehouse { heap, by_changeset, spatial })
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.heap.row_count()
    }

    /// The underlying heap (the baseline scans this directly).
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// Insert one update record.
    pub fn insert(&mut self, record: &UpdateRecord) -> Result<RowId, WarehouseError> {
        let rid = self.heap.append(record)?;
        self.by_changeset.insert(record.changeset.raw(), rid.0)?;
        self.spatial.insert(Point::new(record.lat7, record.lon7), rid);
        Ok(rid)
    }

    /// Bulk insert.
    pub fn insert_batch<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a UpdateRecord>,
    ) -> Result<u64, WarehouseError> {
        let mut n = 0u64;
        for r in records {
            self.insert(r)?;
            n += 1;
        }
        Ok(n)
    }

    /// Persist buffered rows and the changeset index directory.
    pub fn flush(&mut self) -> Result<(), WarehouseError> {
        self.heap.flush()?;
        self.by_changeset.sync()?;
        Ok(())
    }

    /// All updates of one changeset (hash-index lookup; §IV-B uses this to
    /// hand a sample off to a changeset viewer).
    pub fn by_changeset(&self, id: ChangesetId) -> Result<Vec<UpdateRecord>, WarehouseError> {
        let rids = self.by_changeset.get(id.raw())?;
        let mut out = Vec::with_capacity(rids.len());
        for rid in rids {
            if let Some(rec) = self.heap.get(RowId(rid))? {
                out.push(rec);
            }
        }
        Ok(out)
    }

    /// Up to `limit` updates inside a region (spatial-index lookup) — the
    /// sample-update query with its default N = 100.
    pub fn sample_region(&self, bbox: &BBox, limit: usize) -> Result<Vec<UpdateRecord>, WarehouseError> {
        let rids = self.spatial.sample(bbox, limit);
        let mut out = Vec::with_capacity(rids.len());
        for rid in rids {
            if let Some(rec) = self.heap.get(rid)? {
                out.push(rec);
            }
        }
        Ok(out)
    }

    /// Up to `limit` updates inside a region that also satisfy `pred` —
    /// sampling scoped to an analysis query's filters.
    pub fn sample_region_filtered(
        &self,
        bbox: &BBox,
        limit: usize,
        mut pred: impl FnMut(&UpdateRecord) -> bool,
    ) -> Result<Vec<UpdateRecord>, WarehouseError> {
        let mut out = Vec::new();
        let mut err: Option<StorageError> = None;
        self.spatial.query(bbox, &mut |_, rid| {
            if out.len() >= limit || err.is_some() {
                return;
            }
            match self.heap.get(*rid) {
                Ok(Some(rec)) if pred(&rec) => out.push(rec),
                Ok(_) => {}
                Err(e) => err = Some(e),
            }
        });
        match err {
            Some(e) => Err(e.into()),
            None => Ok(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rased_osm_model::{CountryId, ElementType, RoadTypeId, UpdateType};

    fn rec(i: u64, lat7: i32, lon7: i32) -> UpdateRecord {
        UpdateRecord {
            element_type: ElementType::Way,
            update_type: UpdateType::Create,
            country: CountryId((i % 5) as u16),
            road_type: RoadTypeId(0),
            date: rased_temporal::Date::from_days(18_000),
            lat7,
            lon7,
            changeset: ChangesetId(i / 3 + 1), // three updates per changeset
        }
    }

    fn tmppath(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "rased-wh-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d.join("wh.pg")
    }

    fn filled(tag: &str, n: u64) -> Warehouse {
        let mut w = Warehouse::create(&tmppath(tag), IoCostModel::free(), 16).unwrap();
        for i in 0..n {
            let lat = (i as i32 % 1_000) * 100_000; // 0°..~10° in 0.01° steps
            let lon = (i as i32 % 500) * 200_000;
            w.insert(&rec(i, lat, lon)).unwrap();
        }
        w
    }

    #[test]
    fn changeset_lookup() {
        let w = filled("changeset", 30);
        let got = w.by_changeset(ChangesetId(2)).unwrap();
        assert_eq!(got.len(), 3, "changeset 2 holds updates 3,4,5");
        assert!(got.iter().all(|r| r.changeset == ChangesetId(2)));
        assert!(w.by_changeset(ChangesetId(999)).unwrap().is_empty());
    }

    #[test]
    fn region_sampling_respects_limit_and_bbox() {
        let w = filled("region", 2000);
        let bbox = BBox::from_deg(0.0, 0.0, 5.0, 5.0);
        let sample = w.sample_region(&bbox, 100).unwrap();
        assert_eq!(sample.len(), 100, "default N = 100");
        for r in &sample {
            assert!(bbox.contains(Point::new(r.lat7, r.lon7)));
        }
        // A region with nothing in it.
        let empty = w.sample_region(&BBox::from_deg(-80.0, -170.0, -75.0, -160.0), 100).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn filtered_sampling() {
        let w = filled("filtered", 500);
        let bbox = BBox::world();
        let only_c2 = w
            .sample_region_filtered(&bbox, 50, |r| r.country == CountryId(2))
            .unwrap();
        assert!(!only_c2.is_empty());
        assert!(only_c2.len() <= 50);
        assert!(only_c2.iter().all(|r| r.country == CountryId(2)));
    }

    #[test]
    fn reopen_rebuilds_indexes() {
        let path = tmppath("reopen");
        {
            let mut w = Warehouse::create(&path, IoCostModel::free(), 16).unwrap();
            for i in 0..100 {
                w.insert(&rec(i, 10_000_000 + i as i32, 20_000_000)).unwrap();
            }
            w.flush().unwrap();
        }
        let w = Warehouse::open(&path, IoCostModel::free(), 16).unwrap();
        assert_eq!(w.row_count(), 100);
        assert_eq!(w.by_changeset(ChangesetId(1)).unwrap().len(), 3);
        let all = w.sample_region(&BBox::world(), 1000).unwrap();
        assert_eq!(all.len(), 100);
    }
}
