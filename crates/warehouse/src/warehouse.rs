//! [`Warehouse`]: the indexed UpdateList table for sample queries.

use crate::heap::{HeapFile, RowId};
use rased_geo::{BBox, GridIndex, Point};
use rased_osm_model::{ChangesetId, UpdateRecord};
use rased_storage::sync::{Mutex, RwLock};
use rased_storage::{DiskHashIndex, IoCostModel, IoSnapshot, StorageError};
use std::fmt;
use std::path::{Path, PathBuf};

/// Warehouse-level error.
#[derive(Debug)]
pub enum WarehouseError {
    Storage(StorageError),
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WarehouseError {}

impl From<StorageError> for WarehouseError {
    fn from(e: StorageError) -> Self {
        WarehouseError::Storage(e)
    }
}

/// The sample-update warehouse: heap file + hash index on `ChangesetID` +
/// grid spatial index on (lat, lon), exactly the two indexes §VI-B calls
/// for.
///
/// The changeset index is a persistent extendible hash
/// ([`DiskHashIndex`]) — reopening never rescans the heap for it. The
/// spatial grid is memory-resident and rebuilt with one heap scan on open
/// (its cells are position-derived, so persistence would only save that
/// single scan).
///
/// All methods take `&self`: the streaming write path appends rows while
/// sample queries run. Each component sits behind its own lock, and
/// [`Warehouse::insert`] takes them one at a time — a concurrent reader can
/// briefly see a row in the heap that the indexes don't reference yet
/// (sampling is best-effort by contract), but never a dangling index entry.
/// Lock order where nesting is unavoidable: `spatial` before `heap`
/// ([`Warehouse::sample_region_filtered`] resolves rows while walking grid
/// cells); ranks live in `lint.toml`.
pub struct Warehouse {
    /// Heap path; the changeset index lives in `.hx`/`.dir` sidecars.
    /// Kept so [`Warehouse::truncate_rows`] can recreate the sidecars.
    path: PathBuf,
    model: IoCostModel,
    heap: Mutex<HeapFile>,
    by_changeset: Mutex<DiskHashIndex>,
    spatial: RwLock<GridIndex<RowId>>,
}

impl fmt::Debug for Warehouse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Warehouse")
            .field("rows", &self.heap.lock().row_count())
            .finish_non_exhaustive()
    }
}

impl Warehouse {
    /// Create a fresh warehouse at `path` (plus `path.hx`/`.dir` sidecars
    /// for the changeset hash index).
    pub fn create(path: &Path, model: IoCostModel, pool_pages: usize) -> Result<Warehouse, WarehouseError> {
        Ok(Warehouse {
            path: path.to_path_buf(),
            model,
            heap: Mutex::new_named(HeapFile::create(path, model, pool_pages)?, "warehouse.heap"),
            by_changeset: Mutex::new_named(
                DiskHashIndex::create(&path.with_extension("hx"), model)?,
                "warehouse.by_changeset",
            ),
            spatial: RwLock::new_named(GridIndex::world_default(), "warehouse.spatial"),
        })
    }

    /// Reopen an existing warehouse: the persistent changeset index opens
    /// directly; the spatial grid is rebuilt with one scan.
    pub fn open(path: &Path, model: IoCostModel, pool_pages: usize) -> Result<Warehouse, WarehouseError> {
        let heap = HeapFile::open(path, model, pool_pages)?;
        let by_changeset = DiskHashIndex::open(&path.with_extension("hx"), model)?;
        let mut spatial = GridIndex::world_default();
        heap.scan(|rid, rec| {
            spatial.insert(Point::new(rec.lat7, rec.lon7), rid);
        })?;
        Ok(Warehouse {
            path: path.to_path_buf(),
            model,
            heap: Mutex::new_named(heap, "warehouse.heap"),
            by_changeset: Mutex::new_named(by_changeset, "warehouse.by_changeset"),
            spatial: RwLock::new_named(spatial, "warehouse.spatial"),
        })
    }

    /// Drop every row at or beyond `keep` and rebuild both indexes from
    /// the surviving heap, returning the number of rows dropped (0 is a
    /// no-op that touches nothing). Two callers, both rare: crash repair
    /// on open (trim back to the durable watermark the cube index
    /// recorded) and the ingest write path rolling back a day whose
    /// publish failed. The trimmed heap is flushed before this returns,
    /// so the repair itself survives a second crash.
    ///
    /// The changeset hash index has no delete path, so it is recreated
    /// from one heap scan; the spatial grid is rebuilt the same way. The
    /// heap and by_changeset locks are held across the rebuild (upward
    /// order); the spatial grid is swapped in afterwards under a short
    /// write guard — no I/O while readers are held off. In the gap a
    /// region sample may return a stale `RowId` past the cut, which the
    /// heap resolves to `None` (sampling is best-effort by contract); both
    /// callers run on the single writer path, so no insert races the swap.
    pub fn truncate_rows(&self, keep: u64) -> Result<u64, WarehouseError> {
        let (dropped, grid) = {
            let mut heap = self.heap.lock();
            let before = heap.row_count();
            if keep >= before {
                return Ok(0);
            }
            heap.truncate_rows(keep)?;
            heap.flush()?;
            let mut by_changeset = self.by_changeset.lock();
            let mut fresh = DiskHashIndex::create(&self.path.with_extension("hx"), self.model)?;
            let mut grid = GridIndex::world_default();
            let mut err: Option<StorageError> = None;
            heap.scan(|rid, rec| {
                if err.is_some() {
                    return;
                }
                if let Err(e) = fresh.insert(rec.changeset.raw(), rid.0) {
                    err = Some(e);
                    return;
                }
                grid.insert(Point::new(rec.lat7, rec.lon7), rid);
            })?;
            if let Some(e) = err {
                return Err(e.into());
            }
            fresh.sync()?;
            *by_changeset = fresh;
            (before - keep, grid)
        };
        *self.spatial.write() = grid;
        Ok(dropped)
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.heap.lock().row_count()
    }

    /// Physical I/O counters of the backing heap file — reads that missed
    /// the buffer pool, with their modeled latency. Lets callers charge
    /// warehouse scans the same way index cube fetches are charged.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.heap.lock().file().stats().snapshot()
    }

    /// Visit every row in append order (the row-scan access path; also how
    /// the system recounts network sizes on reopen). Holds the heap lock for
    /// the whole scan — appends wait, readers of the indexes do not.
    pub fn scan(&self, visit: impl FnMut(RowId, &UpdateRecord)) -> Result<(), WarehouseError> {
        Ok(self.heap.lock().scan(visit)?)
    }

    /// Insert one update record. Each lock is taken and released in turn —
    /// never nested, so the write path cannot rank against the read paths.
    pub fn insert(&self, record: &UpdateRecord) -> Result<RowId, WarehouseError> {
        let rid = {
            let mut heap = self.heap.lock();
            heap.append(record)?
        };
        {
            let mut by_changeset = self.by_changeset.lock();
            by_changeset.insert(record.changeset.raw(), rid.0)?;
        }
        self.spatial.write().insert(Point::new(record.lat7, record.lon7), rid);
        Ok(rid)
    }

    /// Bulk insert. One heap-lock acquisition for the rows, then the
    /// indexes; a reader interleaving with the batch sees a prefix.
    pub fn insert_batch<'a>(
        &self,
        records: impl IntoIterator<Item = &'a UpdateRecord>,
    ) -> Result<u64, WarehouseError> {
        let mut n = 0u64;
        let mut rids = Vec::new();
        {
            let mut heap = self.heap.lock();
            for r in records {
                rids.push((heap.append(r)?, r.changeset.raw(), Point::new(r.lat7, r.lon7)));
                n += 1;
            }
        }
        {
            let mut by_changeset = self.by_changeset.lock();
            for &(rid, cs, _) in &rids {
                by_changeset.insert(cs, rid.0)?;
            }
        }
        let mut spatial = self.spatial.write();
        for &(rid, _, p) in &rids {
            spatial.insert(p, rid);
        }
        Ok(n)
    }

    /// Rewrite stored rows' update types from refined records (monthly
    /// refinement, §V): each refined record upgrades one stored row with
    /// the same identity — everything but the update type. Rows the
    /// refinement does not mention keep their daily-crawl types, refined
    /// records matching no row are dropped, and re-running with the same
    /// input is a no-op (the multiset of types per identity is unchanged).
    /// Identity never moves a row spatially or across changesets, so the
    /// grid and hash indexes stay valid untouched. Returns the number of
    /// rows rewritten.
    pub fn refine_types(&self, refined: &[UpdateRecord]) -> Result<usize, WarehouseError> {
        use rased_osm_model::UpdateType;
        type Ident = (
            rased_temporal::Date,
            ChangesetId,
            rased_osm_model::ElementType,
            rased_osm_model::CountryId,
            rased_osm_model::RoadTypeId,
            i32,
            i32,
        );
        fn ident(r: &UpdateRecord) -> Ident {
            (r.date, r.changeset, r.element_type, r.country, r.road_type, r.lat7, r.lon7)
        }
        let mut pool: std::collections::HashMap<Ident, Vec<UpdateType>> =
            std::collections::HashMap::new();
        for r in refined {
            pool.entry(ident(r)).or_default().push(r.update_type);
        }
        let mut heap = self.heap.lock();
        let mut changes: Vec<(RowId, UpdateRecord)> = Vec::new();
        heap.scan(|rid, r| {
            if let Some(types) = pool.get_mut(&ident(r)) {
                if let Some(t) = types.pop() {
                    if t != r.update_type {
                        let mut nr = *r;
                        nr.update_type = t;
                        changes.push((rid, nr));
                    }
                }
            }
        })?;
        Ok(heap.rewrite(&changes)?)
    }

    /// Persist buffered rows and the changeset index directory.
    pub fn flush(&self) -> Result<(), WarehouseError> {
        self.heap.lock().flush()?;
        self.by_changeset.lock().sync()?;
        Ok(())
    }

    /// All updates of one changeset (hash-index lookup; §IV-B uses this to
    /// hand a sample off to a changeset viewer).
    pub fn by_changeset(&self, id: ChangesetId) -> Result<Vec<UpdateRecord>, WarehouseError> {
        let rids = {
            let by_changeset = self.by_changeset.lock();
            by_changeset.get(id.raw())?
        };
        let mut out = Vec::with_capacity(rids.len());
        let heap = self.heap.lock();
        for rid in rids {
            if let Some(rec) = heap.get(RowId(rid))? {
                out.push(rec);
            }
        }
        Ok(out)
    }

    /// Up to `limit` updates inside a region (spatial-index lookup) — the
    /// sample-update query with its default N = 100.
    pub fn sample_region(&self, bbox: &BBox, limit: usize) -> Result<Vec<UpdateRecord>, WarehouseError> {
        let rids = self.spatial.read().sample(bbox, limit);
        let mut out = Vec::with_capacity(rids.len());
        let heap = self.heap.lock();
        for rid in rids {
            if let Some(rec) = heap.get(rid)? {
                out.push(rec);
            }
        }
        Ok(out)
    }

    /// Visit *every* row inside a region (spatial-index walk, no limit) —
    /// unlike the samplers, this is exhaustive: the viewport analysis
    /// path's scan fallback, exact for cells the spatial bank has not
    /// materialized. Same lock order as
    /// [`Warehouse::sample_region_filtered`]: `spatial` before `heap`.
    pub fn scan_region(
        &self,
        bbox: &BBox,
        mut visit: impl FnMut(&UpdateRecord),
    ) -> Result<(), WarehouseError> {
        let mut err: Option<StorageError> = None;
        let spatial = self.spatial.read();
        let heap = self.heap.lock();
        spatial.query(bbox, &mut |_, rid| {
            if err.is_some() {
                return;
            }
            match heap.get(*rid) {
                Ok(Some(rec)) => visit(&rec),
                Ok(None) => {}
                Err(e) => err = Some(e),
            }
        });
        match err {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// Up to `limit` updates inside a region that also satisfy `pred` —
    /// sampling scoped to an analysis query's filters.
    pub fn sample_region_filtered(
        &self,
        bbox: &BBox,
        limit: usize,
        mut pred: impl FnMut(&UpdateRecord) -> bool,
    ) -> Result<Vec<UpdateRecord>, WarehouseError> {
        let mut out = Vec::new();
        let mut err: Option<StorageError> = None;
        // Nested acquisition: grid cells are walked under the spatial read
        // guard while rows resolve through the heap — "warehouse:spatial"
        // ranks below "warehouse:heap" for exactly this path.
        let spatial = self.spatial.read();
        let heap = self.heap.lock();
        spatial.query(bbox, &mut |_, rid| {
            if out.len() >= limit || err.is_some() {
                return;
            }
            match heap.get(*rid) {
                Ok(Some(rec)) if pred(&rec) => out.push(rec),
                Ok(_) => {}
                Err(e) => err = Some(e),
            }
        });
        match err {
            Some(e) => Err(e.into()),
            None => Ok(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rased_osm_model::{CountryId, ElementType, RoadTypeId, UpdateType};

    fn rec(i: u64, lat7: i32, lon7: i32) -> UpdateRecord {
        UpdateRecord {
            element_type: ElementType::Way,
            update_type: UpdateType::Create,
            country: CountryId((i % 5) as u16),
            road_type: RoadTypeId(0),
            date: rased_temporal::Date::from_days(18_000),
            lat7,
            lon7,
            changeset: ChangesetId(i / 3 + 1), // three updates per changeset
        }
    }

    fn tmppath(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "rased-wh-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d.join("wh.pg")
    }

    fn filled(tag: &str, n: u64) -> Warehouse {
        let w = Warehouse::create(&tmppath(tag), IoCostModel::free(), 16).unwrap();
        for i in 0..n {
            let lat = (i as i32 % 1_000) * 100_000; // 0°..~10° in 0.01° steps
            let lon = (i as i32 % 500) * 200_000;
            w.insert(&rec(i, lat, lon)).unwrap();
        }
        w
    }

    #[test]
    fn changeset_lookup() {
        let w = filled("changeset", 30);
        let got = w.by_changeset(ChangesetId(2)).unwrap();
        assert_eq!(got.len(), 3, "changeset 2 holds updates 3,4,5");
        assert!(got.iter().all(|r| r.changeset == ChangesetId(2)));
        assert!(w.by_changeset(ChangesetId(999)).unwrap().is_empty());
    }

    #[test]
    fn refine_types_upgrades_matching_rows_in_place() {
        let w = filled("refine", 700); // spans disk pages + in-memory tail
        // Refine every third row to Geometry; identity fields unchanged.
        let refined: Vec<UpdateRecord> = (0..700u64)
            .filter(|i| i % 3 == 0)
            .map(|i| {
                let lat = (i as i32 % 1_000) * 100_000;
                let lon = (i as i32 % 500) * 200_000;
                UpdateRecord { update_type: UpdateType::Geometry, ..rec(i, lat, lon) }
            })
            .collect();
        let n = w.refine_types(&refined).unwrap();
        assert_eq!(n, refined.len());
        let mut geometry = 0usize;
        let mut create = 0usize;
        w.scan(|_, r| match r.update_type {
            UpdateType::Geometry => geometry += 1,
            UpdateType::Create => create += 1,
            _ => unreachable!("no other type was written"),
        })
        .unwrap();
        assert_eq!((geometry, create), (refined.len(), 700 - refined.len()));
        // Indexes still resolve the rewritten rows, with the new type.
        let got = w.by_changeset(ChangesetId(1)).unwrap(); // updates 0,1,2
        assert_eq!(got.iter().filter(|r| r.update_type == UpdateType::Geometry).count(), 1);
        // Idempotent: a second run changes nothing.
        assert_eq!(w.refine_types(&refined).unwrap(), 0);
        // Refined records with no matching row are dropped.
        let stranger = UpdateRecord {
            changeset: ChangesetId(9_999_999),
            ..rec(0, 1, 1)
        };
        assert_eq!(w.refine_types(&[stranger]).unwrap(), 0);
        // And everything survives flush + reopen.
        w.flush().unwrap();
        let path = w.path.clone();
        drop(w);
        let w2 = Warehouse::open(&path, IoCostModel::free(), 16).unwrap();
        let mut geometry2 = 0usize;
        w2.scan(|_, r| {
            if r.update_type == UpdateType::Geometry {
                geometry2 += 1;
            }
        })
        .unwrap();
        assert_eq!(geometry2, geometry);
    }

    #[test]
    fn region_sampling_respects_limit_and_bbox() {
        let w = filled("region", 2000);
        let bbox = BBox::from_deg(0.0, 0.0, 5.0, 5.0);
        let sample = w.sample_region(&bbox, 100).unwrap();
        assert_eq!(sample.len(), 100, "default N = 100");
        for r in &sample {
            assert!(bbox.contains(Point::new(r.lat7, r.lon7)));
        }
        // A region with nothing in it.
        let empty = w.sample_region(&BBox::from_deg(-80.0, -170.0, -75.0, -160.0), 100).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn scan_region_is_exhaustive() {
        let w = filled("scanregion", 2000);
        let bbox = BBox::from_deg(0.0, 0.0, 5.0, 5.0);
        let mut via_scan = 0u64;
        w.scan_region(&bbox, |r| {
            assert!(bbox.contains(Point::new(r.lat7, r.lon7)));
            via_scan += 1;
        })
        .unwrap();
        // Oracle: full heap scan with the same containment predicate.
        let mut want = 0u64;
        w.scan(|_, r| {
            if bbox.contains(Point::new(r.lat7, r.lon7)) {
                want += 1;
            }
        })
        .unwrap();
        assert_eq!(via_scan, want);
        assert!(via_scan > 100, "must exceed any sampler limit to prove exhaustiveness");
    }

    #[test]
    fn filtered_sampling() {
        let w = filled("filtered", 500);
        let bbox = BBox::world();
        let only_c2 = w
            .sample_region_filtered(&bbox, 50, |r| r.country == CountryId(2))
            .unwrap();
        assert!(!only_c2.is_empty());
        assert!(only_c2.len() <= 50);
        assert!(only_c2.iter().all(|r| r.country == CountryId(2)));
    }

    #[test]
    fn truncate_rows_rebuilds_both_indexes_without_duplicates() {
        let path = tmppath("truncate");
        let w = Warehouse::create(&path, IoCostModel::free(), 16).unwrap();
        for i in 0..60 {
            w.insert(&rec(i, 10_000_000 + i as i32, 20_000_000)).unwrap();
        }
        w.flush().unwrap();
        // Drop the last 30 rows (changesets 11..=20, since rec groups 3
        // updates per changeset).
        assert_eq!(w.truncate_rows(30).unwrap(), 30);
        assert_eq!(w.row_count(), 30);
        assert_eq!(w.by_changeset(ChangesetId(10)).unwrap().len(), 3);
        assert!(w.by_changeset(ChangesetId(11)).unwrap().is_empty(), "dropped rows must leave the hash index");
        assert_eq!(w.sample_region(&BBox::world(), 1000).unwrap().len(), 30);
        // Re-inserting the same rows (the re-enqueue path) must not
        // produce duplicate index entries for reused row ids.
        for i in 30..60 {
            w.insert(&rec(i, 10_000_000 + i as i32, 20_000_000)).unwrap();
        }
        w.flush().unwrap();
        assert_eq!(w.by_changeset(ChangesetId(11)).unwrap().len(), 3);
        assert_eq!(w.sample_region(&BBox::world(), 1000).unwrap().len(), 60);
        // The repair state is durable: reopen sees the same picture.
        drop(w);
        let w = Warehouse::open(&path, IoCostModel::free(), 16).unwrap();
        assert_eq!(w.row_count(), 60);
        assert_eq!(w.by_changeset(ChangesetId(15)).unwrap().len(), 3);
        // Truncating past the end is a no-op.
        assert_eq!(w.truncate_rows(1000).unwrap(), 0);
    }

    #[test]
    fn reopen_rebuilds_indexes() {
        let path = tmppath("reopen");
        {
            let w = Warehouse::create(&path, IoCostModel::free(), 16).unwrap();
            for i in 0..100 {
                w.insert(&rec(i, 10_000_000 + i as i32, 20_000_000)).unwrap();
            }
            w.flush().unwrap();
        }
        let w = Warehouse::open(&path, IoCostModel::free(), 16).unwrap();
        assert_eq!(w.row_count(), 100);
        assert_eq!(w.by_changeset(ChangesetId(1)).unwrap().len(), 3);
        let all = w.sample_region(&BBox::world(), 1000).unwrap();
        assert_eq!(all.len(), 100);
    }
}
