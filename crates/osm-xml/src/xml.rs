//! A minimal streaming XML pull parser and writer.
//!
//! Supports the subset of XML that OSM documents use: elements with
//! attributes, character data, comments, processing instructions / XML
//! declarations, CDATA is **not** needed and not supported. Entities: the
//! five predefined (`&amp; &lt; &gt; &quot; &apos;`) and numeric character
//! references (`&#nn;`, `&#xhh;`).
//!
//! The parser works over any `BufRead` and never buffers more than one
//! token, so multi-gigabyte planet files stream in constant memory.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Parse error with a byte offset for diagnostics.
#[derive(Debug)]
pub enum XmlError {
    Io(io::Error),
    /// Malformed syntax; the message describes what was expected.
    Syntax { offset: u64, message: String },
    /// Document ended inside a construct.
    UnexpectedEof { offset: u64 },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Io(e) => write!(f, "I/O error: {e}"),
            XmlError::Syntax { offset, message } => write!(f, "XML syntax error at byte {offset}: {message}"),
            XmlError::UnexpectedEof { offset } => write!(f, "unexpected end of document at byte {offset}"),
        }
    }
}

impl std::error::Error for XmlError {}

impl From<io::Error> for XmlError {
    fn from(e: io::Error) -> Self {
        XmlError::Io(e)
    }
}

/// One parsed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v" ...>` or `<name ... />` (see `self_closing`).
    Start { name: String, attrs: Vec<(String, String)>, self_closing: bool },
    /// `</name>`.
    End { name: String },
    /// Character data between tags, entity-decoded. Whitespace-only text is
    /// skipped by the parser (OSM documents carry no mixed content).
    Text(String),
    /// End of document.
    Eof,
}

/// Streaming pull parser.
pub struct XmlReader<R: BufRead> {
    input: R,
    /// One pushed-back byte (the parser needs 1-byte lookahead).
    peeked: Option<u8>,
    offset: u64,
}

impl<R: BufRead> XmlReader<R> {
    /// Wrap a buffered reader.
    pub fn new(input: R) -> XmlReader<R> {
        XmlReader { input, peeked: None, offset: 0 }
    }

    /// Byte offset of the next unread byte (for error messages).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn syntax(&self, message: impl Into<String>) -> XmlError {
        XmlError::Syntax { offset: self.offset, message: message.into() }
    }

    fn eof_err(&self) -> XmlError {
        XmlError::UnexpectedEof { offset: self.offset }
    }

    fn read_byte(&mut self) -> Result<Option<u8>, XmlError> {
        if let Some(b) = self.peeked.take() {
            self.offset += 1;
            return Ok(Some(b));
        }
        let buf = self.input.fill_buf()?;
        if buf.is_empty() {
            return Ok(None);
        }
        let b = buf[0];
        self.input.consume(1);
        self.offset += 1;
        Ok(Some(b))
    }

    fn peek_byte(&mut self) -> Result<Option<u8>, XmlError> {
        if self.peeked.is_none() {
            let buf = self.input.fill_buf()?;
            if buf.is_empty() {
                return Ok(None);
            }
            self.peeked = Some(buf[0]);
            self.input.consume(1);
        }
        Ok(self.peeked)
    }

    /// Pull the next event.
    pub fn next_event(&mut self) -> Result<Event, XmlError> {
        loop {
            // Gather text until '<' or EOF. Bytes accumulate as raw UTF-8
            // and are validated once per token.
            let mut text: Vec<u8> = Vec::new();
            loop {
                match self.peek_byte()? {
                    None => {
                        let text = self.utf8(text)?;
                        return if text.trim().is_empty() {
                            Ok(Event::Eof)
                        } else {
                            Ok(Event::Text(decode_entities(&text).map_err(|m| self.syntax(m))?))
                        };
                    }
                    Some(b'<') => break,
                    Some(_) => {
                        let b = self.read_byte()?.expect("peeked");
                        text.push(b);
                    }
                }
            }
            if !text.is_empty() {
                let text = self.utf8(text)?;
                if !text.trim().is_empty() {
                    return Ok(Event::Text(decode_entities(&text).map_err(|m| self.syntax(m))?));
                }
            }
            // At '<'.
            self.read_byte()?; // consume '<'
            match self.peek_byte()?.ok_or_else(|| self.eof_err())? {
                b'?' => {
                    self.skip_until("?>")?;
                    continue;
                }
                b'!' => {
                    // Comment or doctype; OSM uses comments only.
                    self.read_byte()?;
                    if self.peek_byte()? == Some(b'-') {
                        self.read_byte()?;
                        if self.read_byte()?.ok_or_else(|| self.eof_err())? != b'-' {
                            return Err(self.syntax("malformed comment start"));
                        }
                        self.skip_until("-->")?;
                    } else {
                        self.skip_until(">")?;
                    }
                    continue;
                }
                b'/' => {
                    self.read_byte()?; // consume '/'
                    let name = self.read_name()?;
                    self.skip_ws()?;
                    match self.read_byte()? {
                        Some(b'>') => return Ok(Event::End { name }),
                        _ => return Err(self.syntax("expected '>' after end-tag name")),
                    }
                }
                _ => return self.read_start_tag(),
            }
        }
    }

    fn read_start_tag(&mut self) -> Result<Event, XmlError> {
        let name = self.read_name()?;
        if name.is_empty() {
            return Err(self.syntax("empty tag name"));
        }
        let mut attrs = Vec::new();
        loop {
            self.skip_ws()?;
            match self.peek_byte()?.ok_or_else(|| self.eof_err())? {
                b'>' => {
                    self.read_byte()?;
                    return Ok(Event::Start { name, attrs, self_closing: false });
                }
                b'/' => {
                    self.read_byte()?;
                    if self.read_byte()? != Some(b'>') {
                        return Err(self.syntax("expected '>' after '/'"));
                    }
                    return Ok(Event::Start { name, attrs, self_closing: true });
                }
                _ => {
                    let key = self.read_name()?;
                    if key.is_empty() {
                        return Err(self.syntax("expected attribute name"));
                    }
                    self.skip_ws()?;
                    if self.read_byte()? != Some(b'=') {
                        return Err(self.syntax("expected '=' after attribute name"));
                    }
                    self.skip_ws()?;
                    let quote = self.read_byte()?.ok_or_else(|| self.eof_err())?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.syntax("expected quoted attribute value"));
                    }
                    let mut raw: Vec<u8> = Vec::new();
                    loop {
                        let b = self.read_byte()?.ok_or_else(|| self.eof_err())?;
                        if b == quote {
                            break;
                        }
                        raw.push(b);
                    }
                    let raw = self.utf8(raw)?;
                    let value = decode_entities(&raw).map_err(|m| self.syntax(m))?;
                    attrs.push((key, value));
                }
            }
        }
    }

    fn utf8(&self, bytes: Vec<u8>) -> Result<String, XmlError> {
        String::from_utf8(bytes).map_err(|_| self.syntax("invalid UTF-8"))
    }

    /// Read an XML name (letters, digits, `_ - . :`).
    fn read_name(&mut self) -> Result<String, XmlError> {
        let mut name = String::new();
        while let Some(b) = self.peek_byte()? {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                name.push(b as char);
                self.read_byte()?;
            } else {
                break;
            }
        }
        Ok(name)
    }

    fn skip_ws(&mut self) -> Result<(), XmlError> {
        while let Some(b) = self.peek_byte()? {
            if b.is_ascii_whitespace() {
                self.read_byte()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Skip bytes until (and including) the literal `pat`.
    fn skip_until(&mut self, pat: &str) -> Result<(), XmlError> {
        let pat = pat.as_bytes();
        let mut matched = 0usize;
        loop {
            let b = self.read_byte()?.ok_or_else(|| self.eof_err())?;
            if b == pat[matched] {
                matched += 1;
                if matched == pat.len() {
                    return Ok(());
                }
            } else {
                matched = if b == pat[0] { 1 } else { 0 };
            }
        }
    }
}

/// Decode the predefined entities and numeric character references.
fn decode_entities(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos + 1..];
        let semi = rest.find(';').ok_or_else(|| "unterminated entity".to_string())?;
        let ent = &rest[..semi];
        rest = &rest[semi + 1..];
        match ent {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let code = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| format!("bad character reference &{ent};"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("invalid codepoint &{ent};"))?);
            }
            _ if ent.starts_with('#') => {
                let code: u32 =
                    ent[1..].parse().map_err(|_| format!("bad character reference &{ent};"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("invalid codepoint &{ent};"))?);
            }
            _ => return Err(format!("unknown entity &{ent};")),
        }
    }
    out.push_str(rest);
    Ok(out)
}

/// Escape text for use inside an attribute value or character data.
pub fn escape(s: &str) -> String {
    if !s.bytes().any(|b| matches!(b, b'&' | b'<' | b'>' | b'"' | b'\'')) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Streaming XML writer with automatic escaping and indentation.
pub struct XmlWriter<W: Write> {
    out: W,
    stack: Vec<String>,
    /// True right after a start tag whose `>` is still unwritten.
    tag_open: bool,
    /// True when character data was written into the current element, so the
    /// closing tag must hug the text instead of being indented.
    in_text: bool,
    pretty: bool,
}

impl<W: Write> XmlWriter<W> {
    /// Create a writer that emits an XML declaration.
    pub fn new(mut out: W, pretty: bool) -> io::Result<XmlWriter<W>> {
        out.write_all(b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>")?;
        if pretty {
            out.write_all(b"\n")?;
        }
        Ok(XmlWriter { out, stack: Vec::new(), tag_open: false, in_text: false, pretty })
    }

    fn close_pending(&mut self) -> io::Result<()> {
        if self.tag_open {
            self.out.write_all(b">")?;
            if self.pretty {
                self.out.write_all(b"\n")?;
            }
            self.tag_open = false;
        }
        Ok(())
    }

    fn indent(&mut self) -> io::Result<()> {
        if self.pretty {
            for _ in 0..self.stack.len() {
                self.out.write_all(b"  ")?;
            }
        }
        Ok(())
    }

    /// Open an element; attributes are added with [`XmlWriter::attr`].
    pub fn start(&mut self, name: &str) -> io::Result<()> {
        self.close_pending()?;
        self.indent()?;
        self.out.write_all(b"<")?;
        self.out.write_all(name.as_bytes())?;
        self.stack.push(name.to_string());
        self.tag_open = true;
        Ok(())
    }

    /// Add an attribute to the element just opened.
    ///
    /// # Panics
    /// Panics when no start tag is pending (a programming error).
    pub fn attr(&mut self, key: &str, value: &str) -> io::Result<()> {
        assert!(self.tag_open, "attr() outside a start tag");
        write!(self.out, " {key}=\"{}\"", escape(value))
    }

    /// Close the innermost open element, collapsing `<x></x>` to `<x/>`.
    pub fn end(&mut self) -> io::Result<()> {
        let name = self.stack.pop().expect("end() with no open element");
        if self.tag_open {
            self.out.write_all(b"/>")?;
            if self.pretty {
                self.out.write_all(b"\n")?;
            }
            self.tag_open = false;
        } else {
            if !self.in_text {
                self.indent()?;
            }
            write!(self.out, "</{name}>")?;
            if self.pretty {
                self.out.write_all(b"\n")?;
            }
        }
        self.in_text = false;
        Ok(())
    }

    /// Write escaped character data inside the current element.
    pub fn text(&mut self, s: &str) -> io::Result<()> {
        if self.tag_open {
            // Close the start tag without the pretty newline so the text
            // roundtrips without acquiring indentation whitespace.
            self.out.write_all(b">")?;
            self.tag_open = false;
        }
        self.in_text = true;
        self.out.write_all(escape(s).as_bytes())
    }

    /// Finish the document; all elements must be closed.
    pub fn finish(mut self) -> io::Result<W> {
        assert!(self.stack.is_empty(), "finish() with unclosed elements: {:?}", self.stack);
        self.out.flush()?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(s: &str) -> Vec<Event> {
        let mut r = XmlReader::new(s.as_bytes());
        let mut out = Vec::new();
        loop {
            let e = r.next_event().unwrap();
            let done = e == Event::Eof;
            out.push(e);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn parses_declaration_comments_and_nesting() {
        let events = parse_all(
            r#"<?xml version="1.0"?>
            <!-- generated -->
            <osm version="0.6">
              <node id="1" lat="44.9" lon="-93.2"/>
            </osm>"#,
        );
        assert_eq!(
            events,
            vec![
                Event::Start { name: "osm".into(), attrs: vec![("version".into(), "0.6".into())], self_closing: false },
                Event::Start {
                    name: "node".into(),
                    attrs: vec![
                        ("id".into(), "1".into()),
                        ("lat".into(), "44.9".into()),
                        ("lon".into(), "-93.2".into()),
                    ],
                    self_closing: true
                },
                Event::End { name: "osm".into() },
                Event::Eof,
            ]
        );
    }

    #[test]
    fn decodes_entities_in_attrs_and_text() {
        let events = parse_all(r#"<t a="x &amp; y &#65;&#x42;">a &lt;b&gt; 'c'</t>"#);
        match &events[0] {
            Event::Start { attrs, .. } => assert_eq!(attrs[0].1, "x & y AB"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(events[1], Event::Text("a <b> 'c'".into()));
    }

    #[test]
    fn single_quoted_attributes() {
        let events = parse_all(r#"<t a='with "double"'/>"#);
        match &events[0] {
            Event::Start { attrs, .. } => assert_eq!(attrs[0].1, r#"with "double""#),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        let cases = [
            "<t a=>",        // missing value
            "<t a=\"x>",     // unterminated value
            "< t/>",          // empty name
            "<t x='1' <",    // garbage in tag
            "<t>&bogus;</t>", // unknown entity
            "<t>&#xZZ;</t>", // bad char ref
        ];
        for c in cases {
            let mut r = XmlReader::new(c.as_bytes());
            let mut failed = false;
            for _ in 0..8 {
                match r.next_event() {
                    Err(_) => {
                        failed = true;
                        break;
                    }
                    Ok(Event::Eof) => break,
                    Ok(_) => {}
                }
            }
            assert!(failed, "expected parse failure for {c:?}");
        }
    }

    #[test]
    fn truncated_document_reports_eof() {
        let mut r = XmlReader::new("<osm><node id=\"1\"".as_bytes());
        r.next_event().unwrap(); // <osm>
        match r.next_event() {
            Err(XmlError::UnexpectedEof { .. }) => {}
            other => panic!("expected EOF error, got {other:?}"),
        }
    }

    #[test]
    fn writer_roundtrips_through_parser() {
        let mut w = XmlWriter::new(Vec::new(), true).unwrap();
        w.start("osm").unwrap();
        w.attr("version", "0.6").unwrap();
        w.start("node").unwrap();
        w.attr("id", "1").unwrap();
        w.attr("name", "a <quoted> & 'odd' \"value\"").unwrap();
        w.end().unwrap();
        w.start("note").unwrap();
        w.text("plain & <text>").unwrap();
        w.end().unwrap();
        w.end().unwrap();
        let bytes = w.finish().unwrap();

        let events = parse_all(std::str::from_utf8(&bytes).unwrap());
        // osm, node, note, text, /note, /osm, eof
        assert_eq!(events.len(), 7);
        match &events[1] {
            Event::Start { attrs, .. } => {
                assert_eq!(attrs[1].1, "a <quoted> & 'odd' \"value\"");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(events.contains(&Event::Text("plain & <text>".into())));
    }

    #[test]
    fn empty_element_collapses() {
        let mut w = XmlWriter::new(Vec::new(), false).unwrap();
        w.start("x").unwrap();
        w.end().unwrap();
        let s = String::from_utf8(w.finish().unwrap()).unwrap();
        assert!(s.ends_with("<x/>"), "{s}");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_rejects_unclosed() {
        let mut w = XmlWriter::new(Vec::new(), false).unwrap();
        w.start("x").unwrap();
        let _ = w.finish();
    }
}
