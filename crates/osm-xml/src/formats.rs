//! Streaming readers/writers for the OSM document families (§II-B):
//! planet / full-history files, `osmChange` diffs, and changeset files.

use crate::coords::{format_fixed7, parse_fixed7};
use crate::xml::{Event, XmlError, XmlReader, XmlWriter};
use rased_osm_model::{
    ChangesetId, ChangesetMeta, Element, ElementId, ElementType, MemberRef, Node, Relation, Tags,
    UserId, Version, VersionInfo, Way,
};
use rased_temporal::Date;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Error reading an OSM document: XML-level or semantic.
#[derive(Debug)]
pub enum OsmDocError {
    Xml(XmlError),
    Io(io::Error),
    /// Structurally valid XML that is not a valid OSM document.
    Semantic(String),
}

impl fmt::Display for OsmDocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsmDocError::Xml(e) => write!(f, "{e}"),
            OsmDocError::Io(e) => write!(f, "I/O error: {e}"),
            OsmDocError::Semantic(m) => write!(f, "invalid OSM document: {m}"),
        }
    }
}

impl std::error::Error for OsmDocError {}

impl From<XmlError> for OsmDocError {
    fn from(e: XmlError) -> Self {
        OsmDocError::Xml(e)
    }
}

impl From<io::Error> for OsmDocError {
    fn from(e: io::Error) -> Self {
        OsmDocError::Io(e)
    }
}

fn semantic(m: impl Into<String>) -> OsmDocError {
    OsmDocError::Semantic(m.into())
}

fn find_attr<'a>(attrs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn require_attr<'a>(attrs: &'a [(String, String)], key: &str, ctx: &str) -> Result<&'a str, OsmDocError> {
    find_attr(attrs, key).ok_or_else(|| semantic(format!("missing `{key}` on <{ctx}>")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, OsmDocError> {
    s.parse().map_err(|_| semantic(format!("bad {what}: `{s}`")))
}

/// Parse the `YYYY-MM-DD` prefix of an ISO-8601 timestamp.
fn parse_timestamp(s: &str) -> Result<Date, OsmDocError> {
    let prefix = s.get(..10).ok_or_else(|| semantic(format!("bad timestamp `{s}`")))?;
    prefix.parse().map_err(|_| semantic(format!("bad timestamp `{s}`")))
}

fn format_timestamp(d: Date) -> String {
    format!("{d}T00:00:00Z")
}

// ---------------------------------------------------------------------------
// Element-level read/write (shared by planet, history, and diff documents)
// ---------------------------------------------------------------------------

fn parse_version_info(attrs: &[(String, String)], ctx: &str) -> Result<VersionInfo, OsmDocError> {
    Ok(VersionInfo {
        version: Version(parse_num(require_attr(attrs, "version", ctx)?, "version")?),
        date: parse_timestamp(require_attr(attrs, "timestamp", ctx)?)?,
        changeset: ChangesetId(parse_num(require_attr(attrs, "changeset", ctx)?, "changeset id")?),
        user: UserId(parse_num(find_attr(attrs, "uid").unwrap_or("0"), "uid")?),
        visible: match find_attr(attrs, "visible") {
            None => true,
            Some("true") => true,
            Some("false") => false,
            Some(other) => return Err(semantic(format!("bad visible flag `{other}`"))),
        },
    })
}

/// Read one element's children (tags / nds / members) until its end tag.
/// `start` must be the element's start event.
fn read_element<R: BufRead>(
    reader: &mut XmlReader<R>,
    name: &str,
    attrs: &[(String, String)],
    self_closing: bool,
) -> Result<Element, OsmDocError> {
    let etype = ElementType::from_xml_name(name)
        .ok_or_else(|| semantic(format!("unknown element <{name}>")))?;
    let id = ElementId(parse_num(require_attr(attrs, "id", name)?, "element id")?);
    let info = parse_version_info(attrs, name)?;

    let mut tags = Tags::new();
    let mut nds: Vec<ElementId> = Vec::new();
    let mut members: Vec<MemberRef> = Vec::new();

    if !self_closing {
        loop {
            match reader.next_event()? {
                Event::Start { name: child, attrs: cattrs, self_closing: cself } => {
                    match child.as_str() {
                        "tag" => {
                            let k = require_attr(&cattrs, "k", "tag")?.to_string();
                            let v = require_attr(&cattrs, "v", "tag")?.to_string();
                            tags.set(k, v);
                        }
                        "nd" => {
                            nds.push(ElementId(parse_num(require_attr(&cattrs, "ref", "nd")?, "nd ref")?));
                        }
                        "member" => {
                            let mtype = ElementType::from_xml_name(require_attr(&cattrs, "type", "member")?)
                                .ok_or_else(|| semantic("bad member type"))?;
                            members.push(MemberRef {
                                element_type: mtype,
                                id: ElementId(parse_num(require_attr(&cattrs, "ref", "member")?, "member ref")?),
                                role: find_attr(&cattrs, "role").unwrap_or("").to_string(),
                            });
                        }
                        other => return Err(semantic(format!("unexpected <{other}> inside <{name}>"))),
                    }
                    if !cself {
                        // Children are always empty elements in OSM; consume
                        // the matching end tag if it was written long-form.
                        match reader.next_event()? {
                            Event::End { name: en } if en == child => {}
                            other => return Err(semantic(format!("expected </{child}>, got {other:?}"))),
                        }
                    }
                }
                Event::End { name: en } if en == name => break,
                Event::Text(_) => {} // tolerate stray whitespace-ish text
                other => return Err(semantic(format!("unexpected {other:?} inside <{name}>"))),
            }
        }
    }

    match etype {
        ElementType::Node => {
            let lat7 = parse_fixed7(require_attr(attrs, "lat", "node")?)
                .ok_or_else(|| semantic("bad lat"))?;
            let lon7 = parse_fixed7(require_attr(attrs, "lon", "node")?)
                .ok_or_else(|| semantic("bad lon"))?;
            Ok(Element::Node(Node { id, info, lat7, lon7, tags }))
        }
        ElementType::Way => Ok(Element::Way(Way { id, info, nodes: nds, tags })),
        ElementType::Relation => Ok(Element::Relation(Relation { id, info, members, tags })),
    }
}

fn write_element<W: Write>(w: &mut XmlWriter<W>, e: &Element) -> io::Result<()> {
    let info = e.info();
    w.start(e.element_type().xml_name())?;
    w.attr("id", &e.id().raw().to_string())?;
    w.attr("version", &info.version.raw().to_string())?;
    w.attr("timestamp", &format_timestamp(info.date))?;
    w.attr("changeset", &info.changeset.raw().to_string())?;
    w.attr("uid", &info.user.raw().to_string())?;
    if !info.visible {
        w.attr("visible", "false")?;
    }
    if let Element::Node(n) = e {
        w.attr("lat", &format_fixed7(n.lat7))?;
        w.attr("lon", &format_fixed7(n.lon7))?;
    }
    match e {
        Element::Way(way) => {
            for nd in &way.nodes {
                w.start("nd")?;
                w.attr("ref", &nd.raw().to_string())?;
                w.end()?;
            }
        }
        Element::Relation(rel) => {
            for m in &rel.members {
                w.start("member")?;
                w.attr("type", m.element_type.xml_name())?;
                w.attr("ref", &m.id.raw().to_string())?;
                w.attr("role", &m.role)?;
                w.end()?;
            }
        }
        Element::Node(_) => {}
    }
    for (k, v) in e.tags().iter() {
        w.start("tag")?;
        w.attr("k", k)?;
        w.attr("v", v)?;
        w.end()?;
    }
    w.end()
}

// ---------------------------------------------------------------------------
// Planet / full-history documents: <osm> element* </osm>
// ---------------------------------------------------------------------------

/// Streaming reader for planet and full-history files. Yields every element
/// in document order; full-history files simply contain multiple versions
/// of the same element back to back.
pub struct PlanetReader<R: BufRead> {
    reader: XmlReader<R>,
    started: bool,
    finished: bool,
}

impl<R: BufRead> PlanetReader<R> {
    /// Wrap a buffered reader positioned at the start of the document.
    pub fn new(input: R) -> PlanetReader<R> {
        PlanetReader { reader: XmlReader::new(input), started: false, finished: false }
    }

    /// Pull the next element, or `None` at end of document.
    ///
    /// Errors are fatal: after an `Err`, subsequent calls return `Ok(None)`
    /// (a streaming parse cannot resynchronize).
    pub fn next_element(&mut self) -> Result<Option<Element>, OsmDocError> {
        let r = self.next_inner();
        if r.is_err() {
            self.finished = true;
        }
        r
    }

    fn next_inner(&mut self) -> Result<Option<Element>, OsmDocError> {
        if self.finished {
            return Ok(None);
        }
        if !self.started {
            match self.reader.next_event()? {
                Event::Start { name, self_closing, .. } if name == "osm" => {
                    self.started = true;
                    if self_closing {
                        self.finished = true;
                        return Ok(None);
                    }
                }
                other => return Err(semantic(format!("expected <osm>, got {other:?}"))),
            }
        }
        loop {
            match self.reader.next_event()? {
                Event::Start { name, attrs, self_closing } => {
                    return Ok(Some(read_element(&mut self.reader, &name, &attrs, self_closing)?));
                }
                Event::End { name } if name == "osm" => {
                    self.finished = true;
                    return Ok(None);
                }
                Event::Text(_) => {}
                Event::Eof => return Err(semantic("document ended before </osm>")),
                other => return Err(semantic(format!("unexpected {other:?} in <osm>"))),
            }
        }
    }
}

impl<R: BufRead> Iterator for PlanetReader<R> {
    type Item = Result<Element, OsmDocError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_element().transpose()
    }
}

/// Streaming writer for planet / full-history files.
pub struct PlanetWriter<W: Write> {
    writer: XmlWriter<W>,
}

impl<W: Write> PlanetWriter<W> {
    /// Start a document.
    pub fn new(out: W) -> io::Result<PlanetWriter<W>> {
        let mut writer = XmlWriter::new(out, true)?;
        writer.start("osm")?;
        writer.attr("version", "0.6")?;
        writer.attr("generator", "rased")?;
        Ok(PlanetWriter { writer })
    }

    /// Append one element (one version).
    pub fn write(&mut self, e: &Element) -> io::Result<()> {
        write_element(&mut self.writer, e)
    }

    /// Close the document.
    pub fn finish(mut self) -> io::Result<W> {
        self.writer.end()?;
        self.writer.finish()
    }
}

// ---------------------------------------------------------------------------
// osmChange diffs: <osmChange> (<create>|<modify>|<delete>)* </osmChange>
// ---------------------------------------------------------------------------

/// The action blocks of an `osmChange` document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiffAction {
    Create,
    Modify,
    Delete,
}

impl DiffAction {
    fn xml_name(self) -> &'static str {
        match self {
            DiffAction::Create => "create",
            DiffAction::Modify => "modify",
            DiffAction::Delete => "delete",
        }
    }

    fn from_xml_name(s: &str) -> Option<DiffAction> {
        match s {
            "create" => Some(DiffAction::Create),
            "modify" => Some(DiffAction::Modify),
            "delete" => Some(DiffAction::Delete),
            _ => None,
        }
    }
}

/// Streaming reader for `osmChange` diffs; yields `(action, element)` pairs.
/// Elements carry after-images only, exactly as OSM publishes them.
pub struct DiffReader<R: BufRead> {
    reader: XmlReader<R>,
    started: bool,
    finished: bool,
    current: Option<DiffAction>,
}

impl<R: BufRead> DiffReader<R> {
    /// Wrap a buffered reader positioned at the start of the document.
    pub fn new(input: R) -> DiffReader<R> {
        DiffReader { reader: XmlReader::new(input), started: false, finished: false, current: None }
    }

    /// Pull the next change, or `None` at end of document.
    ///
    /// Errors are fatal: after an `Err`, subsequent calls return `Ok(None)`.
    pub fn next_change(&mut self) -> Result<Option<(DiffAction, Element)>, OsmDocError> {
        let r = self.next_inner();
        if r.is_err() {
            self.finished = true;
        }
        r
    }

    fn next_inner(&mut self) -> Result<Option<(DiffAction, Element)>, OsmDocError> {
        if self.finished {
            return Ok(None);
        }
        if !self.started {
            match self.reader.next_event()? {
                Event::Start { name, self_closing, .. } if name == "osmChange" => {
                    self.started = true;
                    if self_closing {
                        self.finished = true;
                        return Ok(None);
                    }
                }
                other => return Err(semantic(format!("expected <osmChange>, got {other:?}"))),
            }
        }
        loop {
            match self.reader.next_event()? {
                Event::Start { name, attrs, self_closing } => {
                    if let Some(action) = DiffAction::from_xml_name(&name) {
                        if self.current.is_some() {
                            return Err(semantic("nested action block"));
                        }
                        if !self_closing {
                            self.current = Some(action);
                        }
                        continue;
                    }
                    let action = self
                        .current
                        .ok_or_else(|| semantic(format!("<{name}> outside an action block")))?;
                    let e = read_element(&mut self.reader, &name, &attrs, self_closing)?;
                    return Ok(Some((action, e)));
                }
                Event::End { name } => match name.as_str() {
                    "create" | "modify" | "delete" => self.current = None,
                    "osmChange" => {
                        self.finished = true;
                        return Ok(None);
                    }
                    other => return Err(semantic(format!("unexpected </{other}>"))),
                },
                Event::Text(_) => {}
                Event::Eof => return Err(semantic("document ended before </osmChange>")),
            }
        }
    }
}

impl<R: BufRead> Iterator for DiffReader<R> {
    type Item = Result<(DiffAction, Element), OsmDocError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_change().transpose()
    }
}

/// Streaming writer for `osmChange` diffs. Consecutive writes with the same
/// action share one block, as in OSM's published diffs.
pub struct DiffWriter<W: Write> {
    writer: XmlWriter<W>,
    current: Option<DiffAction>,
}

impl<W: Write> DiffWriter<W> {
    /// Start a document.
    pub fn new(out: W) -> io::Result<DiffWriter<W>> {
        let mut writer = XmlWriter::new(out, true)?;
        writer.start("osmChange")?;
        writer.attr("version", "0.6")?;
        writer.attr("generator", "rased")?;
        Ok(DiffWriter { writer, current: None })
    }

    /// Append one change.
    pub fn write(&mut self, action: DiffAction, e: &Element) -> io::Result<()> {
        if self.current != Some(action) {
            if self.current.is_some() {
                self.writer.end()?;
            }
            self.writer.start(action.xml_name())?;
            self.current = Some(action);
        }
        write_element(&mut self.writer, e)
    }

    /// Close the document.
    pub fn finish(mut self) -> io::Result<W> {
        if self.current.is_some() {
            self.writer.end()?;
        }
        self.writer.end()?;
        self.writer.finish()
    }
}

// ---------------------------------------------------------------------------
// Changeset files: <osm> <changeset .../>* </osm>
// ---------------------------------------------------------------------------

/// Streaming reader for changeset metadata files.
pub struct ChangesetReader<R: BufRead> {
    reader: XmlReader<R>,
    started: bool,
    finished: bool,
}

impl<R: BufRead> ChangesetReader<R> {
    /// Wrap a buffered reader positioned at the start of the document.
    pub fn new(input: R) -> ChangesetReader<R> {
        ChangesetReader { reader: XmlReader::new(input), started: false, finished: false }
    }

    /// Pull the next changeset, or `None` at end of document.
    ///
    /// Errors are fatal: after an `Err`, subsequent calls return `Ok(None)`.
    pub fn next_changeset(&mut self) -> Result<Option<ChangesetMeta>, OsmDocError> {
        let r = self.next_inner();
        if r.is_err() {
            self.finished = true;
        }
        r
    }

    fn next_inner(&mut self) -> Result<Option<ChangesetMeta>, OsmDocError> {
        if self.finished {
            return Ok(None);
        }
        if !self.started {
            match self.reader.next_event()? {
                Event::Start { name, self_closing, .. } if name == "osm" => {
                    self.started = true;
                    if self_closing {
                        self.finished = true;
                        return Ok(None);
                    }
                }
                other => return Err(semantic(format!("expected <osm>, got {other:?}"))),
            }
        }
        loop {
            match self.reader.next_event()? {
                Event::Start { name, attrs, self_closing } if name == "changeset" => {
                    let id = ChangesetId(parse_num(require_attr(&attrs, "id", "changeset")?, "changeset id")?);
                    let user = UserId(parse_num(find_attr(&attrs, "uid").unwrap_or("0"), "uid")?);
                    let created = parse_timestamp(require_attr(&attrs, "created_at", "changeset")?)?;
                    let closed = match find_attr(&attrs, "closed_at") {
                        Some(s) => parse_timestamp(s)?,
                        None => created,
                    };
                    let num_changes = parse_num(find_attr(&attrs, "num_changes").unwrap_or("0"), "num_changes")?;
                    let bbox7 = match (
                        find_attr(&attrs, "min_lat"),
                        find_attr(&attrs, "min_lon"),
                        find_attr(&attrs, "max_lat"),
                        find_attr(&attrs, "max_lon"),
                    ) {
                        (Some(a), Some(b), Some(c), Some(d)) => Some((
                            parse_fixed7(a).ok_or_else(|| semantic("bad min_lat"))?,
                            parse_fixed7(b).ok_or_else(|| semantic("bad min_lon"))?,
                            parse_fixed7(c).ok_or_else(|| semantic("bad max_lat"))?,
                            parse_fixed7(d).ok_or_else(|| semantic("bad max_lon"))?,
                        )),
                        _ => None,
                    };
                    // Children: <tag k v/> — only `comment` is kept.
                    let mut comment = String::new();
                    if !self_closing {
                        loop {
                            match self.reader.next_event()? {
                                Event::Start { name: cn, attrs: ca, self_closing: cs } if cn == "tag" => {
                                    if find_attr(&ca, "k") == Some("comment") {
                                        comment = find_attr(&ca, "v").unwrap_or("").to_string();
                                    }
                                    if !cs {
                                        match self.reader.next_event()? {
                                            Event::End { name: en } if en == "tag" => {}
                                            other => return Err(semantic(format!("expected </tag>, got {other:?}"))),
                                        }
                                    }
                                }
                                Event::End { name: en } if en == "changeset" => break,
                                Event::Text(_) => {}
                                other => return Err(semantic(format!("unexpected {other:?} in <changeset>"))),
                            }
                        }
                    }
                    return Ok(Some(ChangesetMeta { id, user, created, closed, bbox7, num_changes, comment }));
                }
                Event::End { name } if name == "osm" => {
                    self.finished = true;
                    return Ok(None);
                }
                Event::Text(_) => {}
                Event::Eof => return Err(semantic("document ended before </osm>")),
                other => return Err(semantic(format!("unexpected {other:?} in changeset file"))),
            }
        }
    }
}

impl<R: BufRead> Iterator for ChangesetReader<R> {
    type Item = Result<ChangesetMeta, OsmDocError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_changeset().transpose()
    }
}

/// Streaming writer for changeset metadata files.
pub struct ChangesetWriter<W: Write> {
    writer: XmlWriter<W>,
}

impl<W: Write> ChangesetWriter<W> {
    /// Start a document.
    pub fn new(out: W) -> io::Result<ChangesetWriter<W>> {
        let mut writer = XmlWriter::new(out, true)?;
        writer.start("osm")?;
        writer.attr("version", "0.6")?;
        writer.attr("generator", "rased")?;
        Ok(ChangesetWriter { writer })
    }

    /// Append one changeset.
    pub fn write(&mut self, c: &ChangesetMeta) -> io::Result<()> {
        let w = &mut self.writer;
        w.start("changeset")?;
        w.attr("id", &c.id.raw().to_string())?;
        w.attr("uid", &c.user.raw().to_string())?;
        w.attr("created_at", &format_timestamp(c.created))?;
        w.attr("closed_at", &format_timestamp(c.closed))?;
        w.attr("num_changes", &c.num_changes.to_string())?;
        if let Some((min_lat, min_lon, max_lat, max_lon)) = c.bbox7 {
            w.attr("min_lat", &format_fixed7(min_lat))?;
            w.attr("min_lon", &format_fixed7(min_lon))?;
            w.attr("max_lat", &format_fixed7(max_lat))?;
            w.attr("max_lon", &format_fixed7(max_lon))?;
        }
        if !c.comment.is_empty() {
            w.start("tag")?;
            w.attr("k", "comment")?;
            w.attr("v", &c.comment)?;
            w.end()?;
        }
        w.end()
    }

    /// Close the document.
    pub fn finish(mut self) -> io::Result<W> {
        self.writer.end()?;
        self.writer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(v: u32, visible: bool) -> VersionInfo {
        VersionInfo {
            version: Version(v),
            date: "2021-04-05".parse().unwrap(),
            changeset: ChangesetId(500),
            user: UserId(77),
            visible,
        }
    }

    fn sample_elements() -> Vec<Element> {
        vec![
            Element::Node(Node {
                id: ElementId(1),
                info: info(1, true),
                lat7: 449_700_000,
                lon7: -932_600_000,
                tags: Tags::from_pairs([("highway", "crossing")]),
            }),
            Element::Way(Way {
                id: ElementId(10),
                info: info(3, true),
                nodes: vec![ElementId(1), ElementId(2), ElementId(3)],
                tags: Tags::from_pairs([("highway", "residential"), ("name", "Elm & \"Main\" <St>")]),
            }),
            Element::Relation(Relation {
                id: ElementId(20),
                info: info(2, false),
                members: vec![
                    MemberRef { element_type: ElementType::Way, id: ElementId(10), role: "outer".into() },
                    MemberRef { element_type: ElementType::Node, id: ElementId(1), role: String::new() },
                ],
                tags: Tags::from_pairs([("type", "route")]),
            }),
        ]
    }

    #[test]
    fn planet_roundtrip() {
        let elements = sample_elements();
        let mut w = PlanetWriter::new(Vec::new()).unwrap();
        for e in &elements {
            w.write(e).unwrap();
        }
        let bytes = w.finish().unwrap();

        let got: Vec<Element> =
            PlanetReader::new(bytes.as_slice()).map(|r| r.unwrap()).collect();
        assert_eq!(got, elements);
    }

    #[test]
    fn diff_roundtrip_with_action_blocks() {
        let elements = sample_elements();
        let changes = vec![
            (DiffAction::Create, elements[0].clone()),
            (DiffAction::Create, elements[1].clone()),
            (DiffAction::Modify, elements[1].clone()),
            (DiffAction::Delete, elements[2].clone()),
        ];
        let mut w = DiffWriter::new(Vec::new()).unwrap();
        for (a, e) in &changes {
            w.write(*a, e).unwrap();
        }
        let bytes = w.finish().unwrap();
        let text = std::str::from_utf8(&bytes).unwrap();
        // Consecutive creates share a block.
        assert_eq!(text.matches("<create>").count(), 1);

        let got: Vec<(DiffAction, Element)> =
            DiffReader::new(bytes.as_slice()).map(|r| r.unwrap()).collect();
        assert_eq!(got, changes);
    }

    #[test]
    fn changeset_roundtrip() {
        let metas = vec![
            ChangesetMeta {
                id: ChangesetId(1000),
                user: UserId(5),
                created: "2020-01-01".parse().unwrap(),
                closed: "2020-01-02".parse().unwrap(),
                bbox7: Some((10, -20, 30, 40)),
                num_changes: 42,
                comment: "fix <roads> & stuff".into(),
            },
            ChangesetMeta {
                id: ChangesetId(1001),
                user: UserId(6),
                created: "2020-02-02".parse().unwrap(),
                closed: "2020-02-02".parse().unwrap(),
                bbox7: None,
                num_changes: 0,
                comment: String::new(),
            },
        ];
        let mut w = ChangesetWriter::new(Vec::new()).unwrap();
        for m in &metas {
            w.write(m).unwrap();
        }
        let bytes = w.finish().unwrap();
        let got: Vec<ChangesetMeta> =
            ChangesetReader::new(bytes.as_slice()).map(|r| r.unwrap()).collect();
        assert_eq!(got, metas);
    }

    #[test]
    fn empty_documents() {
        let bytes = PlanetWriter::new(Vec::new()).unwrap().finish().unwrap();
        assert_eq!(PlanetReader::new(bytes.as_slice()).count(), 0);
        let bytes = DiffWriter::new(Vec::new()).unwrap().finish().unwrap();
        assert_eq!(DiffReader::new(bytes.as_slice()).count(), 0);
        let bytes = ChangesetWriter::new(Vec::new()).unwrap().finish().unwrap();
        assert_eq!(ChangesetReader::new(bytes.as_slice()).count(), 0);
    }

    #[test]
    fn rejects_wrong_root() {
        let doc = r#"<?xml version="1.0"?><wrong></wrong>"#;
        assert!(PlanetReader::new(doc.as_bytes()).next_element().is_err());
        assert!(DiffReader::new(doc.as_bytes()).next_change().is_err());
        assert!(ChangesetReader::new(doc.as_bytes()).next_changeset().is_err());
    }

    #[test]
    fn rejects_missing_required_attrs() {
        let doc = r#"<osm><node lat="1.0" lon="2.0" version="1" timestamp="2020-01-01T00:00:00Z" changeset="1"/></osm>"#;
        // Missing id.
        let err = PlanetReader::new(doc.as_bytes()).next_element().unwrap_err();
        assert!(err.to_string().contains("id"), "{err}");

        let doc2 = r#"<osm><node id="1" version="1" timestamp="2020-01-01T00:00:00Z" changeset="1"/></osm>"#;
        // Missing lat/lon.
        assert!(PlanetReader::new(doc2.as_bytes()).next_element().is_err());
    }

    #[test]
    fn rejects_element_outside_action_block() {
        let doc = r#"<osmChange><node id="1" lat="0.0" lon="0.0" version="1" timestamp="2020-01-01T00:00:00Z" changeset="1"/></osmChange>"#;
        assert!(DiffReader::new(doc.as_bytes()).next_change().is_err());
    }

    #[test]
    fn truncated_planet_errors_not_hangs() {
        let full = {
            let mut w = PlanetWriter::new(Vec::new()).unwrap();
            for e in sample_elements() {
                w.write(&e).unwrap();
            }
            w.finish().unwrap()
        };
        let cut = &full[..full.len() / 2];
        let mut r = PlanetReader::new(cut);
        let mut saw_err = false;
        for item in &mut r {
            if item.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err, "truncated document must surface an error");
    }

    #[test]
    fn visible_flag_roundtrip() {
        let e = &sample_elements()[2]; // the invisible relation
        let mut w = PlanetWriter::new(Vec::new()).unwrap();
        w.write(e).unwrap();
        let bytes = w.finish().unwrap();
        let got = PlanetReader::new(bytes.as_slice()).next().unwrap().unwrap();
        assert!(!got.info().visible);
    }
}
