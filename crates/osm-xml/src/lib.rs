//! OSM file formats (§II-B), on top of a from-scratch XML subset parser.
//!
//! OSM publishes updates in three families of XML files, all of which RASED
//! crawls:
//!
//! * **Diff** files (`osmChange`): per-minute/hour/day lists of created,
//!   modified, and deleted elements — after-images only.
//! * **Changeset** files: metadata (user, bounding box, comment) for each
//!   changeset.
//! * **Full history** dumps: every version of every element, including
//!   invisible tombstone versions for deletions.
//!
//! This crate implements streaming readers and writers for all three plus
//! the plain planet format. The XML layer ([`xml`]) is a minimal pull
//! parser supporting exactly what these documents need: elements,
//! attributes, character data, comments, XML declarations, and the five
//! predefined entities plus numeric character references.

pub mod xml;

mod coords;
mod formats;

pub use coords::{format_fixed7, parse_fixed7};
pub use formats::{
    ChangesetReader, ChangesetWriter, DiffAction, DiffReader, DiffWriter, OsmDocError,
    PlanetReader, PlanetWriter,
};
