//! Exact text codec for 1e-7° fixed-point coordinates.
//!
//! Coordinates must roundtrip byte-exactly through the XML files — the
//! monthly crawler classifies an update as *geometry* vs. *metadata* by
//! comparing consecutive versions (§V), so a lossy float print would
//! manufacture phantom geometry updates. We therefore format and parse the
//! decimal representation with integer arithmetic only.

/// Format a fixed-point coordinate as a decimal string with exactly seven
/// fractional digits, e.g. `449700000` → `"44.9700000"`.
pub fn format_fixed7(v7: i32) -> String {
    let neg = v7 < 0;
    let abs = (v7 as i64).unsigned_abs();
    let int = abs / 10_000_000;
    let frac = abs % 10_000_000;
    if neg {
        format!("-{int}.{frac:07}")
    } else {
        format!("{int}.{frac:07}")
    }
}

/// Parse a decimal coordinate string into fixed point. Accepts up to seven
/// fractional digits (more are an error — they could not roundtrip) and an
/// optional sign. `"44.97"` → `449_700_000`.
pub fn parse_fixed7(s: &str) -> Option<i32> {
    let s = s.trim();
    let (neg, digits) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    if digits.is_empty() {
        return None;
    }
    let (int_part, frac_part) = match digits.split_once('.') {
        Some((i, f)) => (i, f),
        None => (digits, ""),
    };
    if frac_part.len() > 7 || (int_part.is_empty() && frac_part.is_empty()) {
        return None;
    }
    let int: i64 = if int_part.is_empty() {
        0
    } else {
        int_part.parse::<i64>().ok().filter(|_| int_part.bytes().all(|b| b.is_ascii_digit()))?
    };
    let mut frac: i64 = 0;
    for b in frac_part.bytes() {
        if !b.is_ascii_digit() {
            return None;
        }
        frac = frac * 10 + (b - b'0') as i64;
    }
    // Scale the fraction to seven digits.
    for _ in frac_part.len()..7 {
        frac *= 10;
    }
    let v = int.checked_mul(10_000_000)?.checked_add(frac)?;
    let v = if neg { -v } else { v };
    i32::try_from(v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_with_seven_digits() {
        assert_eq!(format_fixed7(449_700_000), "44.9700000");
        assert_eq!(format_fixed7(-932_600_123), "-93.2600123");
        assert_eq!(format_fixed7(0), "0.0000000");
        assert_eq!(format_fixed7(1), "0.0000001");
        assert_eq!(format_fixed7(-1), "-0.0000001");
        assert_eq!(format_fixed7(i32::MIN), "-214.7483648");
    }

    #[test]
    fn parses_various_shapes() {
        assert_eq!(parse_fixed7("44.97"), Some(449_700_000));
        assert_eq!(parse_fixed7("-93.2600123"), Some(-932_600_123));
        assert_eq!(parse_fixed7("90"), Some(900_000_000));
        assert_eq!(parse_fixed7(".5"), Some(5_000_000));
        assert_eq!(parse_fixed7("-.5"), Some(-5_000_000));
        assert_eq!(parse_fixed7("+1.0"), Some(10_000_000));
        assert_eq!(parse_fixed7(" 0.0000000 "), Some(0));
    }

    #[test]
    fn rejects_garbage() {
        for s in ["", "-", ".", "1.2.3", "abc", "1e5", "1.23456789", "9999999999"] {
            assert_eq!(parse_fixed7(s), None, "{s:?}");
        }
    }

    #[test]
    fn roundtrips_exactly() {
        for v in [0, 1, -1, 449_700_000, -932_600_123, 900_000_000, -1_800_000_000, i32::MAX, i32::MIN] {
            assert_eq!(parse_fixed7(&format_fixed7(v)), Some(v), "{v}");
        }
    }
}
