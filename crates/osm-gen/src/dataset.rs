//! [`Dataset`]: generate a complete on-disk dataset — daily diffs, daily
//! changeset files, monthly full-history dumps — plus the in-memory ground
//! truth.

use crate::sim::{EditSimulator, SimConfig};
use crate::world::{WorldAtlas, WorldConfig};
use rased_osm_model::UpdateRecord;
use rased_osm_xml::{ChangesetWriter, DiffWriter, PlanetWriter};
use rased_temporal::{Date, DateRange, Granularity, Period};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};

/// Dataset generation error.
#[derive(Debug)]
pub enum DatasetError {
    Io(io::Error),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        DatasetError::Io(e)
    }
}

/// Full dataset configuration.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    pub world: WorldConfig,
    pub sim: SimConfig,
    /// Days to simulate (inclusive).
    pub range: DateRange,
    /// Base road-network size seeded the day before `range` starts.
    pub seed_nodes_per_country: usize,
}

impl DatasetConfig {
    /// A small, fast dataset for tests and examples: 12 countries, 3 months.
    pub fn small(seed: u64) -> DatasetConfig {
        DatasetConfig {
            world: WorldConfig { n_countries: 12, activity_skew: 1.0, seed },
            sim: SimConfig { seed: seed ^ 0x5EED, daily_edits_mean: 80.0, n_road_types: 12, ..SimConfig::default() },
            range: DateRange::new(
                // lint: allow(panic, "compile-time constant dates")
                Date::new(2021, 1, 1).expect("valid"),
                // lint: allow(panic, "compile-time constant dates")
                Date::new(2021, 3, 31).expect("valid"),
            ),
            seed_nodes_per_country: 30,
        }
    }
}

/// Where the generated files live, relative to the dataset root:
/// `diffs/YYYY-MM-DD.osc`, `changesets/YYYY-MM-DD.osm`,
/// `history/YYYY-MM.osm`.
#[derive(Debug, Clone)]
pub struct DatasetPaths {
    pub root: PathBuf,
}

impl DatasetPaths {
    /// Paths rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> DatasetPaths {
        DatasetPaths { root: root.into() }
    }

    /// The daily `osmChange` diff for `day`.
    pub fn diff(&self, day: Date) -> PathBuf {
        self.root.join("diffs").join(format!("{day}.osc"))
    }

    /// The daily changeset file for `day`.
    pub fn changesets(&self, day: Date) -> PathBuf {
        self.root.join("changesets").join(format!("{day}.osm"))
    }

    /// The monthly full-history dump for `(year, month)`.
    pub fn history(&self, year: i32, month: u32) -> PathBuf {
        self.root.join("history").join(format!("{year:04}-{month:02}.osm"))
    }
}

/// A generated dataset: file tree on disk + ground truth in memory.
pub struct Dataset {
    pub paths: DatasetPaths,
    pub config: DatasetConfig,
    /// Ground-truth UpdateList (exact update types), in date order.
    pub truth: Vec<UpdateRecord>,
}

impl Dataset {
    /// Generate the dataset into `root`. Existing files are overwritten.
    pub fn generate(root: &Path, config: DatasetConfig) -> Result<Dataset, DatasetError> {
        let paths = DatasetPaths::new(root);
        std::fs::create_dir_all(paths.root.join("diffs"))?;
        std::fs::create_dir_all(paths.root.join("changesets"))?;
        std::fs::create_dir_all(paths.root.join("history"))?;

        let atlas = WorldAtlas::generate(&config.world);
        let mut sim = EditSimulator::new(&atlas, config.sim.clone());
        sim.seed_world(config.seed_nodes_per_country, config.range.start().pred());

        let mut truth = Vec::new();
        for day in config.range.days() {
            let out = sim.step_day(day);

            let mut diff = DiffWriter::new(BufWriter::new(File::create(paths.diff(day))?))?;
            for (action, element) in &out.changes {
                diff.write(*action, element)?;
            }
            diff.finish()?;

            let mut csw =
                ChangesetWriter::new(BufWriter::new(File::create(paths.changesets(day))?))?;
            for cs in &out.changesets {
                csw.write(cs)?;
            }
            csw.finish()?;

            truth.extend(out.truth);

            // Month complete (or range over): dump full history.
            let month_done = day == day.month_end() || day == config.range.end();
            if month_done {
                let (y, m) = (day.year(), day.month());
                let mut pw =
                    PlanetWriter::new(BufWriter::new(File::create(paths.history(y, m))?))?;
                for e in sim.history_for_month(y, m) {
                    pw.write(&e)?;
                }
                pw.finish()?;
            }
        }

        let ds = Dataset { paths, config, truth };
        ds.save_manifest()?;
        Ok(ds)
    }

    /// Persist the generation parameters so another process can rebuild the
    /// atlas (and therefore the country resolver) for ingestion.
    fn save_manifest(&self) -> Result<(), DatasetError> {
        let c = &self.config;
        let body = format!(
            "world_seed={}\nworld_countries={}\nworld_skew={}\nsim_seed={}\nsim_road_types={}\nstart={}\nend={}\n",
            c.world.seed,
            c.world.n_countries,
            c.world.activity_skew,
            c.sim.seed,
            c.sim.n_road_types,
            c.range.start(),
            c.range.end(),
        );
        std::fs::write(self.paths.root.join("dataset.manifest"), body)?;
        Ok(())
    }

    /// Reload generation parameters persisted by [`Dataset::generate`].
    /// Ground truth is not persisted; the returned value carries the config
    /// and paths only (`truth` is empty).
    pub fn load_manifest(root: &Path) -> Result<Dataset, DatasetError> {
        let body = std::fs::read_to_string(root.join("dataset.manifest"))?;
        let mut config = DatasetConfig::small(0);
        let mut start = config.range.start();
        let mut end = config.range.end();
        for line in body.lines() {
            let Some((k, v)) = line.split_once('=') else { continue };
            let bad = || io::Error::new(io::ErrorKind::InvalidData, format!("bad manifest `{k}`"));
            match k {
                "world_seed" => config.world.seed = v.parse().map_err(|_| bad())?,
                "world_countries" => config.world.n_countries = v.parse().map_err(|_| bad())?,
                "world_skew" => config.world.activity_skew = v.parse().map_err(|_| bad())?,
                "sim_seed" => config.sim.seed = v.parse().map_err(|_| bad())?,
                "sim_road_types" => config.sim.n_road_types = v.parse().map_err(|_| bad())?,
                "start" => start = v.parse().map_err(|_| bad())?,
                "end" => end = v.parse().map_err(|_| bad())?,
                _ => {}
            }
        }
        config.range = DateRange::new(start, end);
        Ok(Dataset { paths: DatasetPaths::new(root), config, truth: Vec::new() })
    }

    /// The world atlas for this dataset (regenerated deterministically).
    pub fn atlas(&self) -> WorldAtlas {
        WorldAtlas::generate(&self.config.world)
    }

    /// Months covered by the dataset, in order.
    pub fn months(&self) -> Vec<(i32, u32)> {
        let mut months = Vec::new();
        let mut p = Period::containing(Granularity::Month, self.config.range.start());
        loop {
            // lint: allow(panic, "containing(Month) and succ() of a Month only produce Period::Month")
            let Period::Month(y, m) = p else { unreachable!() };
            months.push((y, m));
            if p.end() >= self.config.range.end() {
                break;
            }
            p = p.succ();
        }
        months
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rased_osm_xml::{ChangesetReader, DiffReader, PlanetReader};
    use std::io::BufReader;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "rased-dataset-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn tiny_config() -> DatasetConfig {
        let mut c = DatasetConfig::small(11);
        c.range = DateRange::new(
            Date::new(2021, 1, 25).unwrap(),
            Date::new(2021, 2, 5).unwrap(),
        );
        c.sim.daily_edits_mean = 25.0;
        c.seed_nodes_per_country = 10;
        c
    }

    #[test]
    fn generates_complete_file_tree() {
        let root = tmpdir("tree");
        let ds = Dataset::generate(&root, tiny_config()).unwrap();
        for day in ds.config.range.days() {
            assert!(ds.paths.diff(day).exists(), "missing diff for {day}");
            assert!(ds.paths.changesets(day).exists(), "missing changesets for {day}");
        }
        assert_eq!(ds.months(), vec![(2021, 1), (2021, 2)]);
        assert!(ds.paths.history(2021, 1).exists());
        assert!(ds.paths.history(2021, 2).exists());
        assert!(!ds.truth.is_empty());
    }

    #[test]
    fn files_parse_back_and_counts_line_up() {
        let root = tmpdir("parse");
        let ds = Dataset::generate(&root, tiny_config()).unwrap();
        let day = ds.config.range.start();

        let diff = DiffReader::new(BufReader::new(File::open(ds.paths.diff(day)).unwrap()));
        let changes: Vec<_> = diff.map(|r| r.unwrap()).collect();

        let csr =
            ChangesetReader::new(BufReader::new(File::open(ds.paths.changesets(day)).unwrap()));
        let metas: Vec<_> = csr.map(|r| r.unwrap()).collect();

        let total: u32 = metas.iter().map(|m| m.num_changes).sum();
        assert_eq!(total as usize, changes.len());

        let day_truth = ds.truth.iter().filter(|r| r.date == day).count();
        assert_eq!(day_truth, changes.len());

        // History parses and contains seed elements (version 1 before range).
        let hist =
            PlanetReader::new(BufReader::new(File::open(ds.paths.history(2021, 1)).unwrap()));
        let elements: Vec<_> = hist.map(|r| r.unwrap()).collect();
        assert!(!elements.is_empty());
        assert!(elements.iter().any(|e| e.info().date < ds.config.range.start()));
    }

    #[test]
    fn generation_is_reproducible() {
        let a = Dataset::generate(&tmpdir("rep-a"), tiny_config()).unwrap();
        let b = Dataset::generate(&tmpdir("rep-b"), tiny_config()).unwrap();
        assert_eq!(a.truth, b.truth);
        // And the bytes of a diff file match too.
        let day = a.config.range.start();
        let fa = std::fs::read(a.paths.diff(day)).unwrap();
        let fb = std::fs::read(b.paths.diff(day)).unwrap();
        assert_eq!(fa, fb);
    }
}
