//! The day-by-day edit simulator.

use crate::rng::{Rng, Zipf};
use crate::world::WorldAtlas;
use rased_geo::{BBox, Point};
use rased_osm_model::{
    ChangesetId, ChangesetMeta, CountryId, CountryResolver, Element, ElementId, ElementType,
    MemberRef, Node, Relation, RoadTypeId, RoadTypeTable, Tags, UpdateRecord, UpdateType, UserId,
    VersionInfo, Way,
};
use rased_osm_xml::DiffAction;
use rased_temporal::Date;
use std::collections::HashMap;

/// Simulator tuning knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub seed: u64,
    /// Road-type taxonomy size; tags are drawn Zipf-skewed from the table
    /// (residential/service-type roads dominate real OSM edits).
    pub n_road_types: usize,
    /// Mean number of element updates per day, worldwide.
    pub daily_edits_mean: f64,
    /// Mean updates per changeset (user session).
    pub session_edits_mean: f64,
    /// Size of the contributor pool.
    pub n_users: u64,
    /// Operation mix; must sum to ≤ 1, remainder goes to metadata edits.
    pub p_create: f64,
    pub p_delete: f64,
    pub p_geometry: f64,
    /// Element-type mix for creations; remainder are relations.
    pub p_way: f64,
    pub p_node: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xED17,
            n_road_types: 40,
            daily_edits_mean: 200.0,
            session_edits_mean: 6.0,
            n_users: 500,
            p_create: 0.35,
            p_delete: 0.05,
            p_geometry: 0.30,
            p_way: 0.55,
            p_node: 0.35,
        }
    }
}

/// Everything one simulated day produces.
#[derive(Debug)]
pub struct DayOutput {
    pub date: Date,
    /// The diff stream: after-images in changeset order.
    pub changes: Vec<(DiffAction, Element)>,
    /// Changeset metadata for the day.
    pub changesets: Vec<ChangesetMeta>,
    /// Ground-truth UpdateList rows with *exact* update types — what a
    /// perfect crawler would produce. Integration tests compare the real
    /// collector against this.
    pub truth: Vec<UpdateRecord>,
}

/// Per-element live state plus full version history.
struct ElementHistory {
    versions: Vec<Element>,
    /// Country the element was created in (elements never migrate).
    country: CountryId,
    alive: bool,
}

/// The edit simulator. Owns the evolving world state and full history.
pub struct EditSimulator<'a> {
    atlas: &'a WorldAtlas,
    config: SimConfig,
    rng: Rng,
    road_table: RoadTypeTable,
    road_zipf: Zipf,
    history: HashMap<(ElementType, ElementId), ElementHistory>,
    /// Live element ids per (country, type) for picking edit targets.
    live: HashMap<(CountryId, ElementType), Vec<ElementId>>,
    next_id: [i64; 3],
    next_changeset: u64,
}

impl<'a> EditSimulator<'a> {
    /// Create a simulator over `atlas`.
    pub fn new(atlas: &'a WorldAtlas, config: SimConfig) -> EditSimulator<'a> {
        let road_table = RoadTypeTable::with_cardinality(config.n_road_types);
        EditSimulator {
            road_zipf: Zipf::new(config.n_road_types, 0.8),
            rng: Rng::new(config.seed),
            atlas,
            config,
            road_table,
            history: HashMap::new(),
            live: HashMap::new(),
            next_id: [1, 1, 1],
            next_changeset: 1,
        }
    }

    /// The road-type table in use.
    pub fn road_table(&self) -> &RoadTypeTable {
        &self.road_table
    }

    /// Seed the base road network: `nodes_per_country` nodes and half as
    /// many ways per country, created at `date` (typically the day before
    /// the simulated range so the seed shows up in full history but not in
    /// any daily diff).
    pub fn seed_world(&mut self, nodes_per_country: usize, date: Date) {
        let countries: Vec<CountryId> = self.atlas.countries().iter().map(|z| z.id).collect();
        for country in countries {
            let user = UserId(0);
            let cs = self.alloc_changeset();
            for _ in 0..nodes_per_country {
                self.create_node(country, date, cs, user);
            }
            for _ in 0..nodes_per_country / 2 {
                self.create_way(country, date, cs, user);
            }
        }
    }

    fn alloc_changeset(&mut self) -> ChangesetId {
        let id = ChangesetId(self.next_changeset);
        self.next_changeset += 1;
        id
    }

    fn alloc_id(&mut self, etype: ElementType) -> ElementId {
        let id = ElementId(self.next_id[etype.index()]);
        self.next_id[etype.index()] += 1;
        id
    }

    fn random_road_type(&mut self) -> RoadTypeId {
        RoadTypeId(self.road_zipf.sample(&mut self.rng) as u16)
    }

    fn road_tag(&mut self) -> Tags {
        let rt = self.random_road_type();
        let value = self.road_table.value(rt).expect("sampled in range").to_string();
        Tags::from_pairs([("highway", value)])
    }

    fn record(&mut self, e: &Element) {
        let key = (e.element_type(), e.id());
        let country = match self.history.get(&key) {
            Some(h) => h.country,
            None => {
                // New element: country of its representative point.
                let p = self.representative_point(e);
                self.atlas.locate7(p.lat7, p.lon7).unwrap_or(CountryId(0))
            }
        };
        let alive = e.info().visible;
        let entry = self.history.entry(key).or_insert_with(|| ElementHistory {
            versions: Vec::new(),
            country,
            alive: false,
        });
        let was_alive = entry.alive;
        entry.versions.push(e.clone());
        entry.alive = alive;
        let pool = self.live.entry((country, e.element_type())).or_default();
        if alive && !was_alive {
            pool.push(e.id());
        } else if !alive && was_alive {
            if let Some(pos) = pool.iter().position(|&id| id == e.id()) {
                pool.swap_remove(pos);
            }
        }
    }

    /// A point standing for the element's location: its own coordinates for
    /// nodes; the first member node's coordinates for ways; the first
    /// member's representative point for relations.
    fn representative_point(&self, e: &Element) -> Point {
        match e {
            Element::Node(n) => Point::new(n.lat7, n.lon7),
            Element::Way(w) => w
                .nodes
                .first()
                .and_then(|id| self.current(ElementType::Node, *id))
                .map(|n| self.representative_point(n))
                .unwrap_or(Point::new(0, 0)),
            Element::Relation(r) => r
                .members
                .first()
                .and_then(|m| self.current(m.element_type, m.id))
                .map(|m| self.representative_point(m))
                .unwrap_or(Point::new(0, 0)),
        }
    }

    fn current(&self, etype: ElementType, id: ElementId) -> Option<&Element> {
        self.history.get(&(etype, id)).and_then(|h| h.versions.last())
    }

    fn pick_live(&mut self, country: CountryId, etype: ElementType) -> Option<ElementId> {
        let pool = self.live.get(&(country, etype))?;
        if pool.is_empty() {
            return None;
        }
        let i = self.rng.below(pool.len() as u64) as usize;
        Some(pool[i])
    }

    // -- element constructors/mutators ------------------------------------

    fn create_node(&mut self, country: CountryId, date: Date, cs: ChangesetId, user: UserId) -> Element {
        let p = self.atlas.random_point_in(country, &mut self.rng);
        let node = Element::Node(Node {
            id: self.alloc_id(ElementType::Node),
            info: VersionInfo::first(date, cs, user),
            lat7: p.lat7,
            lon7: p.lon7,
            tags: self.road_tag(),
        });
        self.record(&node);
        node
    }

    fn create_way(&mut self, country: CountryId, date: Date, cs: ChangesetId, user: UserId) -> Element {
        // Reference 2-5 existing nodes; create them if the country is bare.
        let want = 2 + self.rng.below(4) as usize;
        let mut nodes = Vec::with_capacity(want);
        for _ in 0..want {
            match self.pick_live(country, ElementType::Node) {
                Some(id) => nodes.push(id),
                None => nodes.push(self.create_node(country, date, cs, user).id()),
            }
        }
        let way = Element::Way(Way {
            id: self.alloc_id(ElementType::Way),
            info: VersionInfo::first(date, cs, user),
            nodes,
            tags: self.road_tag(),
        });
        self.record(&way);
        way
    }

    fn create_relation(&mut self, country: CountryId, date: Date, cs: ChangesetId, user: UserId) -> Element {
        let want = 1 + self.rng.below(3) as usize;
        let mut members = Vec::with_capacity(want);
        for _ in 0..want {
            let id = match self.pick_live(country, ElementType::Way) {
                Some(id) => id,
                None => self.create_way(country, date, cs, user).id(),
            };
            members.push(MemberRef { element_type: ElementType::Way, id, role: "part".into() });
        }
        let rel = Element::Relation(Relation {
            id: self.alloc_id(ElementType::Relation),
            info: VersionInfo::first(date, cs, user),
            members,
            tags: self.road_tag(),
        });
        self.record(&rel);
        rel
    }

    fn next_version_of(&mut self, etype: ElementType, id: ElementId, date: Date, cs: ChangesetId, user: UserId) -> Element {
        let mut e = self.current(etype, id).expect("picked live element").clone();
        let info = e.info_mut();
        info.version = info.version.next();
        info.date = date;
        info.changeset = cs;
        info.user = user;
        e
    }

    fn modify_geometry(&mut self, country: CountryId, etype: ElementType, id: ElementId, date: Date, cs: ChangesetId, user: UserId) -> Element {
        let mut e = self.next_version_of(etype, id, date, cs, user);
        match &mut e {
            Element::Node(n) => {
                n.lat7 += self.rng.range_i32(-5_000, 5_000);
                n.lon7 += self.rng.range_i32(-5_000, 5_000);
            }
            Element::Way(w) => {
                // Append another node reference (or drop one when long).
                if w.nodes.len() > 3 && self.rng.chance(0.4) {
                    w.nodes.pop();
                } else {
                    let extra = match self.pick_live(country, ElementType::Node) {
                        Some(id) => id,
                        None => self.create_node(country, date, cs, user).id(),
                    };
                    w.nodes.push(extra);
                }
            }
            Element::Relation(r) => {
                if r.members.len() > 1 && self.rng.chance(0.4) {
                    r.members.pop();
                } else if let Some(id) = self.pick_live(country, ElementType::Way) {
                    r.members.push(MemberRef {
                        element_type: ElementType::Way,
                        id,
                        role: "part".into(),
                    });
                }
            }
        }
        self.record(&e);
        e
    }

    fn modify_metadata(&mut self, etype: ElementType, id: ElementId, date: Date, cs: ChangesetId, user: UserId) -> Element {
        let mut e = self.next_version_of(etype, id, date, cs, user);
        let v = e.info().version.raw();
        e.tags_mut().set("name", format!("Street {id} rev {v}", id = id.raw()));
        self.record(&e);
        e
    }

    fn delete(&mut self, etype: ElementType, id: ElementId, date: Date, cs: ChangesetId, user: UserId) -> Element {
        let mut e = self.next_version_of(etype, id, date, cs, user);
        e.info_mut().visible = false;
        self.record(&e);
        e
    }

    // -- the daily step ----------------------------------------------------

    /// Simulate one day of worldwide editing.
    pub fn step_day(&mut self, date: Date) -> DayOutput {
        let mut out = DayOutput { date, changes: Vec::new(), changesets: Vec::new(), truth: Vec::new() };
        let mut remaining = self.rng.poisson(self.config.daily_edits_mean);
        while remaining > 0 {
            let session = (1 + self.rng.poisson(self.config.session_edits_mean)).min(remaining);
            remaining -= session;
            self.run_session(date, session as usize, &mut out);
        }
        out
    }

    fn run_session(&mut self, date: Date, session: usize, out: &mut DayOutput) {
        let country = self.atlas.sample_country(&mut self.rng);
        let user = UserId(1 + self.rng.below(self.config.n_users));
        let cs = self.alloc_changeset();
        let mut bbox: Option<BBox> = None;
        // (element, action, exact update type) per edit in this session.
        let mut edits: Vec<(Element, DiffAction, UpdateType)> = Vec::new();

        for _ in 0..session {
            let roll = self.rng.f64();
            // Copy the mix probabilities out so `self` stays free to borrow
            // mutably inside the arms.
            let (p_create, p_delete, p_geometry, p_way, p_node) = (
                self.config.p_create,
                self.config.p_delete,
                self.config.p_geometry,
                self.config.p_way,
                self.config.p_node,
            );
            let (e, action, utype) = if roll < p_create {
                let etype_roll = self.rng.f64();
                let e = if etype_roll < p_way {
                    self.create_way(country, date, cs, user)
                } else if etype_roll < p_way + p_node {
                    self.create_node(country, date, cs, user)
                } else {
                    self.create_relation(country, date, cs, user)
                };
                (e, DiffAction::Create, UpdateType::Create)
            } else {
                // Pick a live element of a random type; fall back to create.
                let etype = *self.rng.pick(&ElementType::ALL);
                match self.pick_live(country, etype) {
                    None => {
                        let e = self.create_node(country, date, cs, user);
                        (e, DiffAction::Create, UpdateType::Create)
                    }
                    Some(id) => {
                        if roll < p_create + p_delete {
                            (self.delete(etype, id, date, cs, user), DiffAction::Delete, UpdateType::Delete)
                        } else if roll < p_create + p_delete + p_geometry {
                            (
                                self.modify_geometry(country, etype, id, date, cs, user),
                                DiffAction::Modify,
                                UpdateType::Geometry,
                            )
                        } else {
                            (
                                self.modify_metadata(etype, id, date, cs, user),
                                DiffAction::Modify,
                                UpdateType::Metadata,
                            )
                        }
                    }
                }
            };
            let p = self.representative_point(&e);
            bbox = Some(match bbox {
                Some(b) => {
                    let mut b = b;
                    b.expand_to(p);
                    b
                }
                None => BBox::of_point(p),
            });
            edits.push((e, action, utype));
        }

        let bbox = bbox.unwrap_or(BBox::of_point(Point::new(0, 0)));
        let center = bbox.center();
        out.changesets.push(ChangesetMeta {
            id: cs,
            user,
            created: date,
            closed: date,
            bbox7: Some((bbox.min_lat7, bbox.min_lon7, bbox.max_lat7, bbox.max_lon7)),
            num_changes: edits.len() as u32,
            comment: format!("session by user {user} in country {country}"),
        });

        for (e, action, utype) in edits {
            // Ground truth follows the crawler convention (§V): nodes carry
            // their own coordinates; ways/relations get the changeset bbox
            // center. Country comes from that point.
            let p = match &e {
                Element::Node(n) => Point::new(n.lat7, n.lon7),
                _ => center,
            };
            let rec_country = self.atlas.locate7(p.lat7, p.lon7).unwrap_or(country);
            if let Some(road_type) =
                e.tags().highway().and_then(|h| self.road_table.by_value(h))
            {
                out.truth.push(UpdateRecord {
                    element_type: e.element_type(),
                    update_type: utype,
                    country: rec_country,
                    road_type,
                    date,
                    lat7: p.lat7,
                    lon7: p.lon7,
                    changeset: cs,
                });
            }
            out.changes.push((action, e));
        }
    }

    /// All versions, up to the end of `(year, month)`, of every element that
    /// changed during that month — the monthly full-history dump the
    /// monthly crawler consumes (it needs the before-image of each change,
    /// which may predate the month). Sorted by (type, id, version).
    pub fn history_for_month(&self, year: i32, month: u32) -> Vec<Element> {
        let period = rased_temporal::Period::Month(year, month);
        let mut out: Vec<Element> = Vec::new();
        for h in self.history.values() {
            let changed_in_month = h.versions.iter().any(|v| period.contains(v.info().date));
            if !changed_in_month {
                continue;
            }
            for v in &h.versions {
                if v.info().date <= period.end() {
                    out.push(v.clone());
                }
            }
        }
        out.sort_by_key(|e| (e.element_type().index(), e.id().raw(), e.info().version.raw()));
        out
    }

    /// Total number of element versions retained.
    pub fn history_len(&self) -> usize {
        self.history.values().map(|h| h.versions.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rased_osm_model::Version;

    fn atlas() -> WorldAtlas {
        WorldAtlas::generate(&WorldConfig { n_countries: 6, activity_skew: 1.0, seed: 4 })
    }

    fn d(s: &str) -> Date {
        s.parse().unwrap()
    }

    fn sim_config() -> SimConfig {
        SimConfig { seed: 77, daily_edits_mean: 60.0, n_road_types: 10, ..SimConfig::default() }
    }

    #[test]
    fn day_output_is_consistent() {
        let atlas = atlas();
        let mut sim = EditSimulator::new(&atlas, sim_config());
        sim.seed_world(20, d("2020-12-31"));
        let out = sim.step_day(d("2021-01-01"));
        assert!(!out.changes.is_empty());
        assert!(!out.changesets.is_empty());
        // Every truth record's changeset exists in the changeset list.
        let cs_ids: std::collections::HashSet<_> = out.changesets.iter().map(|c| c.id).collect();
        for r in &out.truth {
            assert!(cs_ids.contains(&r.changeset));
            assert_eq!(r.date, d("2021-01-01"));
        }
        // num_changes adds up to the diff length.
        let total: u32 = out.changesets.iter().map(|c| c.num_changes).sum();
        assert_eq!(total as usize, out.changes.len());
    }

    #[test]
    fn truth_matches_diff_one_to_one_for_road_elements() {
        let atlas = atlas();
        let mut sim = EditSimulator::new(&atlas, sim_config());
        sim.seed_world(20, d("2020-12-31"));
        let out = sim.step_day(d("2021-01-01"));
        // Every generated element carries a highway tag, so the counts match.
        assert_eq!(out.truth.len(), out.changes.len());
    }

    #[test]
    fn versions_increase_monotonically() {
        let atlas = atlas();
        let mut sim = EditSimulator::new(&atlas, sim_config());
        sim.seed_world(10, d("2020-12-31"));
        for i in 0..10 {
            sim.step_day(d("2021-01-01").add_days(i));
        }
        for h in sim.history.values() {
            for (i, v) in h.versions.iter().enumerate() {
                assert_eq!(v.info().version, Version((i + 1) as u32));
            }
            for w in h.versions.windows(2) {
                assert!(w[0].info().date <= w[1].info().date);
            }
        }
    }

    #[test]
    fn deletes_leave_tombstones_and_stop_edits() {
        let atlas = atlas();
        let mut sim = EditSimulator::new(
            &atlas,
            SimConfig { p_delete: 0.5, p_create: 0.2, seed: 5, daily_edits_mean: 80.0, ..sim_config() },
        );
        sim.seed_world(10, d("2020-12-31"));
        for i in 0..20 {
            sim.step_day(d("2021-01-01").add_days(i));
        }
        let mut tombstones = 0;
        for h in sim.history.values() {
            let mut dead = false;
            for v in &h.versions {
                assert!(!dead, "edit after delete for element {:?}", v.id());
                if !v.info().visible {
                    dead = true;
                    tombstones += 1;
                }
            }
        }
        assert!(tombstones > 0, "a 50% delete mix must delete something");
    }

    #[test]
    fn history_for_month_includes_before_images() {
        let atlas = atlas();
        let mut sim = EditSimulator::new(&atlas, sim_config());
        sim.seed_world(15, d("2020-12-31"));
        sim.step_day(d("2021-01-05"));
        sim.step_day(d("2021-02-03"));
        let feb = sim.history_for_month(2021, 2);
        assert!(!feb.is_empty());
        // Any v>1 version dated in Feb must be preceded by its v-1.
        let by_key: HashMap<(ElementType, ElementId, u32), &Element> =
            feb.iter().map(|e| ((e.element_type(), e.id(), e.info().version.raw()), e)).collect();
        let period = rased_temporal::Period::Month(2021, 2);
        for e in &feb {
            let v = e.info().version.raw();
            if v > 1 && period.contains(e.info().date) {
                assert!(
                    by_key.contains_key(&(e.element_type(), e.id(), v - 1)),
                    "missing before-image for {:?} v{}",
                    e.id(),
                    v
                );
            }
        }
        // And nothing dated after the month's end.
        for e in &feb {
            assert!(e.info().date <= d("2021-02-28"));
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let atlas = atlas();
        let run = || {
            let mut sim = EditSimulator::new(&atlas, sim_config());
            sim.seed_world(10, d("2020-12-31"));
            let out = sim.step_day(d("2021-01-01"));
            (out.changes.len(), out.truth.clone())
        };
        let (n1, t1) = run();
        let (n2, t2) = run();
        assert_eq!(n1, n2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn activity_skew_shows_in_truth_records() {
        let atlas = atlas();
        let mut sim = EditSimulator::new(
            &atlas,
            SimConfig { daily_edits_mean: 400.0, ..sim_config() },
        );
        sim.seed_world(20, d("2020-12-31"));
        let mut counts = vec![0u32; 6];
        for i in 0..5 {
            for r in sim.step_day(d("2021-01-01").add_days(i)).truth {
                counts[r.country.index()] += 1;
            }
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > min * 2, "skew expected: {counts:?}");
    }
}
