//! A small deterministic PRNG and the samplers the simulator needs.
//!
//! Hand-rolled instead of pulling `rand`/`rand_distr`: the generator must
//! reproduce datasets bit-for-bit across crate-version bumps (benchmark
//! comparability), and the three distributions used — uniform, Zipf,
//! Poisson — are a few dozen lines.

/// xoshiro256++ seeded via SplitMix64. Fast, well-tested constants, and
/// deterministic across platforms.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the generator; any u64 (including 0) is fine.
    pub fn new(seed: u64) -> Rng {
        // SplitMix64 expansion, per Vigna's recommendation.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`; bound 0 returns 0. Debiased via Lemire's
    /// method simplified to rejection-free modulo (bias is < 2⁻³² for the
    /// bounds used here, fine for simulation).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // 128-bit multiply-shift keeps the distribution uniform enough.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo) as u64 + 1) as i64
    }

    /// Uniform in `[lo, hi]` for i32.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(lo as i64, hi as i64) as i32
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Poisson sample via Knuth's product method — fine for the small λ
    /// (≤ ~50) used for per-session edit counts.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        debug_assert!(lambda >= 0.0);
        if lambda == 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // guard against λ misuse
            }
        }
    }
}

/// A Zipf(s) sampler over ranks `0..n` with a precomputed CDF — used for
/// country activity weights (few countries dominate OSM editing).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build for `n` ranks with exponent `s` (s = 1.0 ≈ classic Zipf).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there are no ranks (never, per the constructor assert).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("no NaN")) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of rank `k`.
    pub fn mass(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(7);
        for bound in [1u64, 2, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = Rng::new(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            let v = rng.range_i32(-2, 2);
            assert!((-2..=2).contains(&v));
            lo_seen |= v == -2;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(11);
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = Rng::new(13);
        let lambda = 8.0;
        let n = 5000;
        let sum: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.3, "mean {mean}");
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn zipf_is_skewed_and_normalized() {
        let z = Zipf::new(50, 1.0);
        assert_eq!(z.len(), 50);
        // Masses sum to ~1.
        let total: f64 = (0..50).map(|k| z.mass(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Rank 0 beats rank 10 by about 11x.
        assert!(z.mass(0) / z.mass(10) > 8.0);

        // Empirical skew.
        let mut rng = Rng::new(17);
        let mut counts = vec![0u64; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] * 5, "rank 0: {}, rank 10: {}", counts[0], counts[10]);
        assert!(counts[0] > counts[49]);
    }

    #[test]
    fn zipf_samples_cover_all_ranks_eventually() {
        let z = Zipf::new(5, 0.5);
        let mut rng = Rng::new(23);
        let mut seen = [false; 5];
        for _ in 0..5000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
