//! The synthetic world atlas: country polygons with activity weights.

use crate::rng::{Rng, Zipf};
use rased_geo::{BBox, Point, Polygon, PolygonIndex};
use rased_osm_model::{CountryId, CountryResolver, CountryTable};

/// Configuration of the synthetic world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of countries (zones of the country table are not given
    /// territory; they are aggregates).
    pub n_countries: usize,
    /// Zipf exponent for editing-activity skew across countries.
    pub activity_skew: f64,
    /// RNG seed for the polygon jitter.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig { n_countries: 60, activity_skew: 1.0, seed: 0xA71A5 }
    }
}

/// One country: its id, territory polygon, and activity weight.
#[derive(Debug, Clone)]
pub struct CountryZone {
    pub id: CountryId,
    pub polygon: Polygon,
    /// Probability mass of edits landing in this country.
    pub activity: f64,
}

/// The synthetic world: a grid of jittered country rectangles over the
/// inhabited latitudes, plus a Zipf activity distribution.
///
/// Real country shapes are irrelevant to RASED's backend — only the
/// *mapping* from coordinates to countries matters — so rectangles with
/// perturbed corners exercise the same point-in-polygon and bbox-center
/// code paths the real atlas would.
pub struct WorldAtlas {
    countries: Vec<CountryZone>,
    index: PolygonIndex<CountryId>,
    zipf: Zipf,
}

impl WorldAtlas {
    /// Generate the atlas.
    pub fn generate(config: &WorldConfig) -> WorldAtlas {
        assert!(config.n_countries >= 1);
        let mut rng = Rng::new(config.seed);
        let n = config.n_countries;
        // Grid layout over lat −60°..70°, lon −180°..180°.
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        let lat_lo = -60.0f64;
        let lat_hi = 70.0f64;
        let lon_lo = -180.0f64;
        let lon_hi = 180.0f64;
        let cell_h = (lat_hi - lat_lo) / rows as f64;
        let cell_w = (lon_hi - lon_lo) / cols as f64;

        let zipf = Zipf::new(n, config.activity_skew);
        let mut countries = Vec::with_capacity(n);
        for i in 0..n {
            let r = i / cols;
            let c = i % cols;
            // Shrink each cell a little so neighbors never overlap, and
            // jitter the inset so borders are not axis-identical.
            let inset_lat = cell_h * (0.05 + 0.05 * rng.f64());
            let inset_lon = cell_w * (0.05 + 0.05 * rng.f64());
            let bbox = BBox::from_deg(
                lat_lo + r as f64 * cell_h + inset_lat,
                lon_lo + c as f64 * cell_w + inset_lon,
                lat_lo + (r + 1) as f64 * cell_h - inset_lat,
                lon_lo + (c + 1) as f64 * cell_w - inset_lon,
            );
            countries.push(CountryZone {
                id: CountryId(i as u16),
                polygon: Polygon::rect(bbox),
                activity: zipf.mass(i),
            });
        }
        let index =
            PolygonIndex::build(countries.iter().map(|z| (z.polygon.clone(), z.id)).collect());
        WorldAtlas { countries, index, zipf }
    }

    /// Number of countries with territory.
    pub fn len(&self) -> usize {
        self.countries.len()
    }

    /// True when the atlas has no countries (never, per config assert).
    pub fn is_empty(&self) -> bool {
        self.countries.is_empty()
    }

    /// The zones in id order.
    pub fn countries(&self) -> &[CountryZone] {
        &self.countries
    }

    /// One zone by id.
    pub fn zone(&self, id: CountryId) -> Option<&CountryZone> {
        self.countries.get(id.index())
    }

    /// Sample a country according to the activity distribution.
    pub fn sample_country(&self, rng: &mut Rng) -> CountryId {
        CountryId(self.zipf.sample(rng) as u16)
    }

    /// A uniformly random point inside a country's territory.
    pub fn random_point_in(&self, id: CountryId, rng: &mut Rng) -> Point {
        let zone = self.zone(id).expect("valid country id");
        let b = zone.polygon.bbox();
        // Rectangular territories: any bbox point is inside. (Kept general:
        // retry for non-rectangular future shapes.)
        for _ in 0..64 {
            let p = Point::new(
                rng.range_i32(b.min_lat7, b.max_lat7),
                rng.range_i32(b.min_lon7, b.max_lon7),
            );
            if zone.polygon.contains(p) {
                return p;
            }
        }
        b.center()
    }

    /// A [`CountryTable`] covering this atlas (prefix of the real country
    /// list with matching cardinality).
    pub fn country_table(&self) -> CountryTable {
        CountryTable::with_cardinality(self.countries.len())
    }
}

impl CountryResolver for WorldAtlas {
    fn locate7(&self, lat7: i32, lon7: i32) -> Option<CountryId> {
        self.index.locate(Point::new(lat7, lon7))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atlas() -> WorldAtlas {
        WorldAtlas::generate(&WorldConfig { n_countries: 12, activity_skew: 1.0, seed: 99 })
    }

    #[test]
    fn atlas_has_disjoint_countries() {
        let a = atlas();
        assert_eq!(a.len(), 12);
        for (i, x) in a.countries().iter().enumerate() {
            for y in &a.countries()[i + 1..] {
                assert!(
                    !x.polygon.bbox().intersects(&y.polygon.bbox()),
                    "{:?} overlaps {:?}",
                    x.id,
                    y.id
                );
            }
        }
    }

    #[test]
    fn points_resolve_to_their_country() {
        let a = atlas();
        let mut rng = Rng::new(1);
        for zone in a.countries() {
            for _ in 0..20 {
                let p = a.random_point_in(zone.id, &mut rng);
                assert_eq!(a.locate7(p.lat7, p.lon7), Some(zone.id));
            }
        }
    }

    #[test]
    fn ocean_points_resolve_to_none() {
        let a = atlas();
        // The poles are outside the inhabited band.
        assert_eq!(a.locate7(Point::from_deg(89.0, 0.0).lat7, 0), None);
        assert_eq!(a.locate7(Point::from_deg(-89.0, 0.0).lat7, 0), None);
    }

    #[test]
    fn activity_masses_sum_to_one_and_skew() {
        let a = atlas();
        let total: f64 = a.countries().iter().map(|z| z.activity).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(a.countries()[0].activity > a.countries()[11].activity * 3.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let c = WorldConfig { n_countries: 8, activity_skew: 1.0, seed: 5 };
        let a = WorldAtlas::generate(&c);
        let b = WorldAtlas::generate(&c);
        for (x, y) in a.countries().iter().zip(b.countries()) {
            assert_eq!(x.polygon.bbox(), y.polygon.bbox());
        }
    }

    #[test]
    fn sampled_countries_follow_zipf() {
        let a = atlas();
        let mut rng = Rng::new(3);
        let mut counts = vec![0u32; a.len()];
        for _ in 0..10_000 {
            counts[a.sample_country(&mut rng).index()] += 1;
        }
        assert!(counts[0] > counts[6] * 2, "{counts:?}");
    }
}
