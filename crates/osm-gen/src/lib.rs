//! Synthetic OSM world and edit-stream generation.
//!
//! The paper evaluates RASED on the real OSM planet: 3 TB of full history,
//! daily diffs, and changeset dumps. Those inputs are not redistributable
//! (and not downloadable here), so this crate *simulates* them — the
//! documented substitution of DESIGN.md §1. It produces the same three file
//! families the crawlers of §V consume, over a synthetic world whose
//! statistics echo OSM's:
//!
//! * a **world atlas** of country polygons laid out on the globe, each with
//!   a Zipf-distributed editing-activity weight (OSM editing is heavily
//!   skewed toward a few countries — cf. Fig. 3 of the paper);
//! * per-country **road networks** (nodes, highway-tagged ways, route
//!   relations) with full version history;
//! * a day-by-day **edit stream**: user sessions become changesets with
//!   bounding boxes; creates / geometry edits / tag edits / deletes follow
//!   a configurable mix; daily `osmChange` diffs carry after-images only.
//!
//! Everything is driven by a seeded xoshiro256++ generator
//! ([`rng::Rng`]), so a `(seed, config)` pair reproduces a dataset bit for
//! bit. The simulator also emits the **ground truth** `UpdateList` (with
//! exact update-type classification), which integration tests compare
//! against the collector's output.

pub mod rng;

mod sim;
mod world;

pub use sim::{DayOutput, EditSimulator, SimConfig};
pub use world::{CountryZone, WorldAtlas, WorldConfig};

mod dataset;
pub use dataset::{Dataset, DatasetConfig, DatasetError, DatasetPaths};
