//! Self-tests for the dettest harness: shrinking quality, failure
//! reporting, and seed-based reproduction of counterexamples.

use dettest::{check, det_proptest, one_of, vec_of, Config, Rng, Strategy};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run `check` expecting a failure; return the report text.
fn failing_report<S: Strategy>(config: Config, strategy: S, f: impl Fn(&S::Value)) -> String {
    let err = catch_unwind(AssertUnwindSafe(|| check("forced", config, strategy, f)))
        .expect_err("property should fail");
    if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else {
        err.downcast_ref::<&str>().map(|s| s.to_string()).expect("string panic")
    }
}

fn extract<'a>(report: &'a str, prefix: &str) -> &'a str {
    let line = report.lines().find(|l| l.trim_start().starts_with(prefix)).expect("line present");
    line.trim_start().strip_prefix(prefix).expect("prefix").trim()
}

/// The shrunk value from the `minimal counterexample (after N shrink
/// evals): …` report line.
fn minimal_of(report: &str) -> &str {
    let line = report
        .lines()
        .find(|l| l.trim_start().starts_with("minimal counterexample"))
        .expect("counterexample line");
    line.split("): ").nth(1).expect("value after evals count").trim()
}

#[test]
fn int_counterexample_shrinks_to_boundary() {
    // "all values < 500" fails; minimal counterexample is exactly 500.
    let report =
        failing_report(Config::default(), 0i64..10_000, |&v| assert!(v < 500, "too big: {v}"));
    assert_eq!(minimal_of(&report), "500", "report: {report}");
}

#[test]
fn vec_counterexample_shrinks_to_single_element() {
    // "no vector contains a 7" — minimal counterexample is [7].
    let strategy = vec_of(0u32..50, 0..20);
    let report = failing_report(Config::default(), (strategy,), |(v,)| {
        assert!(!v.contains(&7), "has a seven");
    });
    assert_eq!(minimal_of(&report), "([7],)", "report: {report}");
}

#[test]
fn failure_report_names_a_seed_that_replays_the_same_counterexample() {
    let prop = |&(a, b): &(i64, i64)| assert!(a + b < 900, "sum too big");
    let strategy = || (0i64..1000, 0i64..1000);

    let report = failing_report(Config::default(), strategy(), prop);
    let seed_str = extract(&report, "reproduce with: DETTEST_SEED=");
    let seed: u64 = seed_str.parse().expect("seed is a u64");
    let minimal = minimal_of(&report).to_string();

    // Replaying with the printed seed (the Config field DETTEST_SEED sets)
    // must fail again with the identical minimal counterexample.
    let replayed = failing_report(
        Config { replay: Some(seed), ..Config::default() },
        strategy(),
        prop,
    );
    assert_eq!(minimal_of(&replayed), minimal);

    // And through the environment variable itself.
    std::env::set_var("DETTEST_SEED", seed_str);
    let via_env = failing_report(Config::default(), strategy(), prop);
    std::env::remove_var("DETTEST_SEED");
    assert_eq!(minimal_of(&via_env), minimal);
}

#[test]
fn replay_of_a_passing_seed_is_quiet() {
    check("ok", Config { replay: Some(3), ..Config::default() }, 0u8..=255, |_| {});
}

#[test]
fn sampling_is_deterministic_across_runs() {
    let s = vec_of(one_of(vec![(0i32..10).boxed(), (100i32..110).boxed()]), 0..12);
    let a: Vec<_> = {
        let mut rng = Rng::new(99);
        (0..20).map(|_| s.sample(&mut rng)).collect()
    };
    let b: Vec<_> = {
        let mut rng = Rng::new(99);
        (0..20).map(|_| s.sample(&mut rng)).collect()
    };
    assert_eq!(a, b);
}

#[test]
fn shrink_budget_is_respected() {
    // A property that always fails on huge vectors; with a tiny budget the
    // runner must still terminate and report *something*.
    let report = failing_report(
        Config { max_shrink_evals: 3, ..Config::default() },
        (vec_of(0u32..1000, 50..60),),
        |(v,)| assert!(v.is_empty(), "non-empty"),
    );
    assert!(report.contains("3 shrink evals"), "report: {report}");
}

// The macro front end, exercised as real tests.
det_proptest! {
    #![det_config(cases = 64)]

    #[test]
    fn tuple_destructuring_works(a in 0i32..100, (b, c) in (0i32..10, 0i32..10)) {
        assert!(a < 100 && b < 10 && c < 10);
    }

    #[test]
    fn strings_respect_alphabet(s in dettest::string_from("ab<>&\"'", 0..=16)) {
        assert!(s.chars().all(|ch| "ab<>&\"'".contains(ch)));
        assert!(s.len() <= 16 * 4); // chars here are at most 4 UTF-8 bytes
    }

    #[test]
    fn options_and_vectors(xs in vec_of(dettest::option_of(1u16..50), 0..8)) {
        for x in xs.iter().flatten() {
            assert!((1..50).contains(x));
        }
    }
}
