//! # dettest — deterministic, std-only property testing
//!
//! A small replacement for the subset of `proptest` this workspace uses,
//! with zero dependencies so the tier-1 gate builds offline. See the crate
//! README for the full story; the short version:
//!
//! * [`Rng`] — seeded SplitMix-style PRNG; equal seeds give equal streams.
//! * [`Strategy`] — composable generators: integer ranges (`0i32..100`),
//!   [`bools`], [`just`], [`one_of`], [`weighted`], [`option_of`],
//!   [`vec_of`], [`string_from`], tuples up to arity 8, and
//!   [`Strategy::prop_map`].
//! * Shrinking — every strategy carries a lazy shrink tree; failures are
//!   greedily reduced to a minimal counterexample.
//! * Reproduction — runs are deterministic (fixed base seed). A failure
//!   report prints `DETTEST_SEED=…`; exporting that variable replays the
//!   exact failing case. `DETTEST_CASES` overrides the case count.
//! * [`det_proptest!`] — the `proptest! {}`-shaped macro; bodies use plain
//!   `assert!` / `assert_eq!`.
//! * [`TempDir`] — an RAII temporary directory so unit tests stop leaking
//!   `$TMPDIR` entries (integration tests have their own in
//!   `tests/common`).

mod macros;
mod rng;
mod runner;
mod shrink;
mod strategy;
mod tempdir;

pub use rng::Rng;
pub use tempdir::TempDir;
pub use runner::{check, Config};
pub use shrink::Shrink;
pub use strategy::{
    bools, just, one_of, option_of, string_from, vec_of, weighted, BoxedStrategy, Bools, Just,
    LenRange, Map, OneOf, OptionOf, Strategy, VecOf, Weighted,
};
