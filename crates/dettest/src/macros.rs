//! The [`det_proptest!`] macro — proptest-style property blocks.
//!
//! ```
//! use dettest::{det_proptest, Strategy};
//!
//! det_proptest! {
//!     #![det_config(cases = 64)]
//!
//!     #[test]
//!     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Bodies use plain `assert!` / `assert_eq!`; the runner catches the panic,
//! shrinks, and reports a `DETTEST_SEED` to replay the failure.
//!
//! [`det_proptest!`]: crate::det_proptest

/// Define `#[test]` functions checked against generated inputs.
#[macro_export]
macro_rules! det_proptest {
    ( #![det_config($($cfg:tt)+)] $($rest:tt)* ) => {
        $crate::__det_proptest_impl! { { $($cfg)+ } $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__det_proptest_impl! { { } $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __det_proptest_impl {
    (
        $cfg:tt
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $crate::__det_config!($cfg);
                $crate::check(
                    stringify!($name),
                    __config,
                    ($($strat,)+),
                    |__case| {
                        let ($($arg,)+) = ::core::clone::Clone::clone(__case);
                        $body
                    },
                );
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __det_config {
    ( { } ) => {
        $crate::Config::default()
    };
    ( { $($field:ident = $value:expr),+ $(,)? } ) => {{
        #[allow(unused_mut)]
        let mut __c = $crate::Config::default();
        $( __c.$field = $value; )+
        __c
    }};
}
