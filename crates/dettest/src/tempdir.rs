//! [`TempDir`]: an RAII temporary directory for unit tests.
//!
//! PR 2 deduplicated the *integration*-test temp-dir helpers into
//! `tests/common/mod.rs`, but per-crate unit tests cannot see that module.
//! This is the same helper exported from `dettest` (already a dev-dependency
//! everywhere property tests live) so unit tests stop hand-rolling leaky
//! `std::env::temp_dir()` paths: the directory is removed recursively on
//! drop, including when the owning test fails.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_TMPDIR: AtomicU64 = AtomicU64::new(0);

/// A unique temporary directory removed (recursively) on drop.
///
/// Keep the value alive for as long as files inside it are in use — e.g.
/// return it alongside an index that keeps open files in the directory.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `$TMPDIR/rased-<tag>-<pid>-<n>`, fresh and empty.
    pub fn new(tag: &str) -> TempDir {
        let n = NEXT_TMPDIR.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("rased-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        // lint: allow(panic, "test infrastructure: a test cannot proceed without its directory")
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path to `name` inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
