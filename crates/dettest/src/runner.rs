//! The property runner: generate → check → greedily shrink → report.
//!
//! Every case runs under its own derived seed. On failure the runner shrinks
//! to a (locally) minimal counterexample and panics with a report containing
//! `DETTEST_SEED=<seed>`; re-running with that variable set replays exactly
//! the failing case — same generation, same shrink path, same counterexample.

use crate::rng::Rng;
use crate::shrink::Shrink;
use crate::strategy::Strategy;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases per property.
    pub cases: u32,
    /// Base seed; per-case seeds are derived from it. Fixed by default so
    /// runs are deterministic — vary it deliberately, don't let the clock.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking one failure.
    pub max_shrink_evals: u32,
    /// Replay exactly one case with this seed (what `DETTEST_SEED` sets).
    pub replay: Option<u64>,
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256, seed: 0x5EED_0F_4A5ED, max_shrink_evals: 4096, replay: None }
    }
}

impl Config {
    /// Default config with a custom case count.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases, ..Config::default() }
    }

    /// Apply `DETTEST_SEED` / `DETTEST_CASES` from the environment.
    pub fn from_env(mut self) -> Config {
        if let Ok(s) = std::env::var("DETTEST_SEED") {
            match s.parse::<u64>() {
                Ok(seed) => self.replay = Some(seed),
                Err(_) => panic!("DETTEST_SEED must be a u64, got `{s}`"),
            }
        }
        if let Ok(s) = std::env::var("DETTEST_CASES") {
            match s.parse::<u32>() {
                Ok(cases) => self.cases = cases,
                Err(_) => panic!("DETTEST_CASES must be a u32, got `{s}`"),
            }
        }
        self
    }
}

// Assertion failures inside a property panic; the runner catches them and
// turns them into shrinkable failures. While probing shrink candidates the
// panic hook stays quiet so the log is not flooded with expected panics.
thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

fn run_one<V>(f: &impl Fn(&V), value: &V) -> Result<(), String> {
    QUIET.with(|q| q.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| f(value)));
    QUIET.with(|q| q.set(false));
    match result {
        Ok(()) => Ok(()),
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Greedy descent: keep taking the first still-failing child until none
/// fails or the evaluation budget runs out. Returns the minimal value, its
/// failure message, and the number of evaluations spent.
fn shrink_search<V: Clone + 'static>(
    tree: Shrink<V>,
    f: &impl Fn(&V),
    first_msg: String,
    budget: u32,
) -> (V, String, u32) {
    let mut cur = tree;
    let mut msg = first_msg;
    let mut evals = 0u32;
    'descend: loop {
        for child in cur.children() {
            if evals >= budget {
                break 'descend;
            }
            evals += 1;
            if let Err(m) = run_one(f, &child.value) {
                cur = child;
                msg = m;
                continue 'descend;
            }
        }
        break;
    }
    (cur.value, msg, evals)
}

/// Check `property` against `config.cases` generated values, shrinking and
/// reporting the first failure. This is what [`det_proptest!`] expands to;
/// call it directly for properties that need custom drivers.
///
/// [`det_proptest!`]: crate::det_proptest
pub fn check<S: Strategy>(name: &str, config: Config, strategy: S, property: impl Fn(&S::Value)) {
    install_hook();
    let config = config.from_env();

    let run_case = |case_seed: u64| -> Option<(S::Value, String, u32)> {
        let mut rng = Rng::new(case_seed);
        let tree = strategy.tree(&mut rng);
        match run_one(&property, &tree.value) {
            Ok(()) => None,
            Err(msg) => {
                let (min, msg, evals) =
                    shrink_search(tree, &property, msg, config.max_shrink_evals);
                Some((min, msg, evals))
            }
        }
    };

    let report = |case_seed: u64, (min, msg, evals): (S::Value, String, u32)| -> ! {
        panic!(
            "[dettest] property `{name}` failed.\n  \
             minimal counterexample (after {evals} shrink evals): {min:?}\n  \
             error: {msg}\n  \
             reproduce with: DETTEST_SEED={case_seed}"
        );
    };

    if let Some(seed) = config.replay {
        if let Some(failure) = run_case(seed) {
            report(seed, failure);
        }
        return;
    }
    for case in 0..config.cases {
        let case_seed = Rng::derive(config.seed, case as u64);
        if let Some(failure) = run_case(case_seed) {
            report(case_seed, failure);
        }
    }
}
