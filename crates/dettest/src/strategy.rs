//! Composable value generators with built-in shrinking.
//!
//! A [`Strategy`] produces a [`Shrink`] tree: the generated value plus its
//! lazily-enumerated simpler alternatives. Combinators (`map`, tuples,
//! [`vec_of`], [`one_of`], …) compose both the generation and the shrinking,
//! so a counterexample found through any stack of combinators still shrinks
//! toward a minimal one.
//!
//! Integer ranges are strategies directly (`0i32..100`, `1u64..=9`), like
//! proptest; they shrink toward the in-range value closest to zero.

use crate::rng::Rng;
use crate::shrink::{zip, Shrink};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A composable generator of test values.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug + 'static;

    /// Generate one value together with its shrink tree.
    fn tree(&self, rng: &mut Rng) -> Shrink<Self::Value>;

    /// Generate a value, discarding the shrink tree. Useful for building
    /// fixtures (e.g. a record set indexed once per test run).
    fn sample(&self, rng: &mut Rng) -> Self::Value {
        self.tree(rng).value
    }

    /// Transform generated values; shrinking happens on the source values
    /// and is re-mapped, so mapped strategies still shrink.
    fn prop_map<U, F>(self, f: F) -> Map<Self, U>
    where
        Self: Sized,
        U: Clone + Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f: Rc::new(move |v: &Self::Value| f(v.clone())) }
    }

    /// Type-erase, for heterogeneous collections ([`one_of`], [`weighted`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

// --- integers ---------------------------------------------------------------

fn rng_i128(rng: &mut Rng, lo: i128, hi: i128) -> i128 {
    debug_assert!(lo <= hi);
    let span = (hi - lo) as u128 + 1;
    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
    lo + off
}

fn int_children(v: i128, origin: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v == origin {
        return out;
    }
    out.push(origin);
    let mut d = v - origin;
    loop {
        d /= 2;
        if d == 0 {
            break;
        }
        let c = v - d;
        if c != origin {
            out.push(c);
        }
    }
    out
}

fn i128_tree(v: i128, origin: i128) -> Shrink<i128> {
    Shrink::new(v, move || {
        int_children(v, origin).into_iter().map(|c| i128_tree(c, origin)).collect()
    })
}

fn int_range_tree<T>(rng: &mut Rng, lo: i128, hi: i128, cast: fn(&i128) -> T) -> Shrink<T>
where
    T: Clone + Debug + 'static,
{
    assert!(lo <= hi, "empty range strategy");
    let v = rng_i128(rng, lo, hi);
    // Shrink toward the in-range value nearest zero.
    let origin = lo.max(0).min(hi);
    i128_tree(v, origin).map(Rc::new(cast))
}

macro_rules! int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn tree(&self, rng: &mut Rng) -> Shrink<$t> {
                assert!(self.start < self.end, "empty range strategy");
                int_range_tree(rng, self.start as i128, self.end as i128 - 1, |v| *v as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn tree(&self, rng: &mut Rng) -> Shrink<$t> {
                int_range_tree(rng, *self.start() as i128, *self.end() as i128, |v| *v as $t)
            }
        }
    )*};
}

int_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// --- primitives -------------------------------------------------------------

/// Strategy for booleans; `true` shrinks to `false`.
#[derive(Debug, Clone, Copy)]
pub struct Bools;

/// Any boolean.
pub fn bools() -> Bools {
    Bools
}

impl Strategy for Bools {
    type Value = bool;
    fn tree(&self, rng: &mut Rng) -> Shrink<bool> {
        let v = rng.bool();
        Shrink::new(v, move || if v { vec![Shrink::leaf(false)] } else { vec![] })
    }
}

/// The constant strategy: always `value`, never shrinks.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

/// Always generate `value`.
pub fn just<T: Clone + Debug + 'static>(value: T) -> Just<T> {
    Just(value)
}

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn tree(&self, _rng: &mut Rng) -> Shrink<T> {
        Shrink::leaf(self.0.clone())
    }
}

// --- map --------------------------------------------------------------------

/// See [`Strategy::prop_map`].
pub struct Map<S: Strategy, U> {
    inner: S,
    f: Rc<dyn Fn(&S::Value) -> U>,
}

impl<S: Strategy, U: Clone + Debug + 'static> Strategy for Map<S, U> {
    type Value = U;
    fn tree(&self, rng: &mut Rng) -> Shrink<U> {
        self.inner.tree(rng).map(Rc::clone(&self.f))
    }
}

// --- boxing / choice --------------------------------------------------------

trait DynStrategy<T> {
    fn dyn_tree(&self, rng: &mut Rng) -> Shrink<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_tree(&self, rng: &mut Rng) -> Shrink<S::Value> {
        self.tree(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Clone + Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn tree(&self, rng: &mut Rng) -> Shrink<T> {
        self.0.dyn_tree(rng)
    }
}

/// Uniform choice among alternatives. The chosen alternative's own shrink
/// tree is used (no cross-alternative shrinking).
pub struct OneOf<T>(Vec<BoxedStrategy<T>>);

/// Pick one of `alts` uniformly per case.
pub fn one_of<T: Clone + Debug + 'static>(alts: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!alts.is_empty(), "one_of of nothing");
    OneOf(alts)
}

impl<T: Clone + Debug + 'static> Strategy for OneOf<T> {
    type Value = T;
    fn tree(&self, rng: &mut Rng) -> Shrink<T> {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].tree(rng)
    }
}

/// Weighted choice among alternatives.
pub struct Weighted<T> {
    alts: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

/// Pick among `alts` with probability proportional to each weight.
pub fn weighted<T: Clone + Debug + 'static>(alts: Vec<(u32, BoxedStrategy<T>)>) -> Weighted<T> {
    let total: u64 = alts.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "weighted choice needs positive total weight");
    Weighted { alts, total }
}

impl<T: Clone + Debug + 'static> Strategy for Weighted<T> {
    type Value = T;
    fn tree(&self, rng: &mut Rng) -> Shrink<T> {
        let mut roll = rng.below(self.total);
        for (w, s) in &self.alts {
            if roll < *w as u64 {
                return s.tree(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("roll below total weight")
    }
}

/// `Option<T>` strategy: `None` one case in four; `Some` shrinks to `None`
/// first, then shrinks its payload.
pub struct OptionOf<S>(S);

/// Generate `None` or `Some` from the inner strategy.
pub fn option_of<S: Strategy>(inner: S) -> OptionOf<S> {
    OptionOf(inner)
}

impl<S: Strategy> Strategy for OptionOf<S> {
    type Value = Option<S::Value>;
    fn tree(&self, rng: &mut Rng) -> Shrink<Option<S::Value>> {
        if rng.below(4) == 0 {
            Shrink::leaf(None)
        } else {
            let t = self.0.tree(rng);
            some_tree(t)
        }
    }
}

fn some_tree<T: Clone + Debug + 'static>(t: Shrink<T>) -> Shrink<Option<T>> {
    let value = Some(t.value.clone());
    Shrink::new(value, move || {
        let mut kids = vec![Shrink::leaf(None)];
        kids.extend(t.children().into_iter().map(some_tree));
        kids
    })
}

// --- vectors ----------------------------------------------------------------

/// Length bound for [`vec_of`] / [`string_from`]: a `usize` for an exact
/// length, `a..b`, or `a..=b`.
pub trait LenRange {
    /// `(min, max)` inclusive.
    fn bounds(&self) -> (usize, usize);
}

impl LenRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl LenRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty length range");
        (self.start, self.end - 1)
    }
}

impl LenRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty length range");
        (*self.start(), *self.end())
    }
}

/// Vector strategy (see [`vec_of`]).
pub struct VecOf<S> {
    elem: S,
    min: usize,
    max: usize,
}

/// Vectors of `elem` values with length within `len`. Shrinks by removing
/// chunks of elements (largest first, never below the minimum length), then
/// by shrinking individual elements.
pub fn vec_of<S: Strategy>(elem: S, len: impl LenRange) -> VecOf<S> {
    let (min, max) = len.bounds();
    VecOf { elem, min, max }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;
    fn tree(&self, rng: &mut Rng) -> Shrink<Vec<S::Value>> {
        let n = rng.range_u64(self.min as u64, self.max as u64) as usize;
        let elems: Vec<Shrink<S::Value>> = (0..n).map(|_| self.elem.tree(rng)).collect();
        vec_tree(elems, self.min)
    }
}

fn vec_tree<T: Clone + 'static>(elems: Vec<Shrink<T>>, min: usize) -> Shrink<Vec<T>> {
    let value: Vec<T> = elems.iter().map(|e| e.value.clone()).collect();
    Shrink::new(value, move || {
        let mut kids = Vec::new();
        let n = elems.len();
        // Remove chunks, largest first — gets small fast, then fine-tunes.
        let mut k = n - min;
        while k > 0 {
            let mut start = 0;
            while start + k <= n {
                let mut rest = Vec::with_capacity(n - k);
                rest.extend_from_slice(&elems[..start]);
                rest.extend_from_slice(&elems[start + k..]);
                kids.push(vec_tree(rest, min));
                start += k;
            }
            k /= 2;
        }
        // Shrink elements in place, left to right.
        for i in 0..n {
            for c in elems[i].children() {
                let mut e2 = elems.clone();
                e2[i] = c;
                kids.push(vec_tree(e2, min));
            }
        }
        kids
    })
}

// --- strings ----------------------------------------------------------------

/// Strings drawn from an explicit alphabet — the replacement for regex-class
/// generators like `[a-z_:]{1,10}`. Shrinks like a vector of characters,
/// with each character shrinking toward the first alphabet entry.
pub fn string_from(alphabet: &str, len: impl LenRange) -> Map<VecOf<Range<usize>>, String> {
    let chars: Vec<char> = alphabet.chars().collect();
    assert!(!chars.is_empty(), "empty alphabet");
    let n = chars.len();
    vec_of(0..n, len).prop_map(move |ids| ids.into_iter().map(|i| chars[i]).collect())
}

// --- tuples -----------------------------------------------------------------

impl<S0: Strategy> Strategy for (S0,) {
    type Value = (S0::Value,);
    fn tree(&self, rng: &mut Rng) -> Shrink<Self::Value> {
        self.0.tree(rng).map(Rc::new(|v: &S0::Value| (v.clone(),)))
    }
}

impl<S0: Strategy, S1: Strategy> Strategy for (S0, S1) {
    type Value = (S0::Value, S1::Value);
    fn tree(&self, rng: &mut Rng) -> Shrink<Self::Value> {
        zip(self.0.tree(rng), self.1.tree(rng))
    }
}

impl<S0: Strategy, S1: Strategy, S2: Strategy> Strategy for (S0, S1, S2) {
    type Value = (S0::Value, S1::Value, S2::Value);
    fn tree(&self, rng: &mut Rng) -> Shrink<Self::Value> {
        let t = zip(zip(self.0.tree(rng), self.1.tree(rng)), self.2.tree(rng));
        t.map(Rc::new(|((a, b), c)| (a.clone(), b.clone(), c.clone())))
    }
}

impl<S0: Strategy, S1: Strategy, S2: Strategy, S3: Strategy> Strategy for (S0, S1, S2, S3) {
    type Value = (S0::Value, S1::Value, S2::Value, S3::Value);
    fn tree(&self, rng: &mut Rng) -> Shrink<Self::Value> {
        let t = zip(
            zip(zip(self.0.tree(rng), self.1.tree(rng)), self.2.tree(rng)),
            self.3.tree(rng),
        );
        t.map(Rc::new(|(((a, b), c), d)| (a.clone(), b.clone(), c.clone(), d.clone())))
    }
}

impl<S0: Strategy, S1: Strategy, S2: Strategy, S3: Strategy, S4: Strategy> Strategy
    for (S0, S1, S2, S3, S4)
{
    type Value = (S0::Value, S1::Value, S2::Value, S3::Value, S4::Value);
    fn tree(&self, rng: &mut Rng) -> Shrink<Self::Value> {
        let t = zip(
            zip(
                zip(zip(self.0.tree(rng), self.1.tree(rng)), self.2.tree(rng)),
                self.3.tree(rng),
            ),
            self.4.tree(rng),
        );
        t.map(Rc::new(|((((a, b), c), d), e)| {
            (a.clone(), b.clone(), c.clone(), d.clone(), e.clone())
        }))
    }
}

impl<S0: Strategy, S1: Strategy, S2: Strategy, S3: Strategy, S4: Strategy, S5: Strategy> Strategy
    for (S0, S1, S2, S3, S4, S5)
{
    type Value = (S0::Value, S1::Value, S2::Value, S3::Value, S4::Value, S5::Value);
    fn tree(&self, rng: &mut Rng) -> Shrink<Self::Value> {
        let t = zip(
            zip(
                zip(
                    zip(zip(self.0.tree(rng), self.1.tree(rng)), self.2.tree(rng)),
                    self.3.tree(rng),
                ),
                self.4.tree(rng),
            ),
            self.5.tree(rng),
        );
        t.map(Rc::new(|(((((a, b), c), d), e), f)| {
            (a.clone(), b.clone(), c.clone(), d.clone(), e.clone(), f.clone())
        }))
    }
}

impl<
        S0: Strategy,
        S1: Strategy,
        S2: Strategy,
        S3: Strategy,
        S4: Strategy,
        S5: Strategy,
        S6: Strategy,
    > Strategy for (S0, S1, S2, S3, S4, S5, S6)
{
    type Value =
        (S0::Value, S1::Value, S2::Value, S3::Value, S4::Value, S5::Value, S6::Value);
    fn tree(&self, rng: &mut Rng) -> Shrink<Self::Value> {
        let t = zip(
            zip(
                zip(
                    zip(
                        zip(zip(self.0.tree(rng), self.1.tree(rng)), self.2.tree(rng)),
                        self.3.tree(rng),
                    ),
                    self.4.tree(rng),
                ),
                self.5.tree(rng),
            ),
            self.6.tree(rng),
        );
        t.map(Rc::new(|((((((a, b), c), d), e), f), g)| {
            (a.clone(), b.clone(), c.clone(), d.clone(), e.clone(), f.clone(), g.clone())
        }))
    }
}

impl<
        S0: Strategy,
        S1: Strategy,
        S2: Strategy,
        S3: Strategy,
        S4: Strategy,
        S5: Strategy,
        S6: Strategy,
        S7: Strategy,
    > Strategy for (S0, S1, S2, S3, S4, S5, S6, S7)
{
    type Value = (
        S0::Value,
        S1::Value,
        S2::Value,
        S3::Value,
        S4::Value,
        S5::Value,
        S6::Value,
        S7::Value,
    );
    fn tree(&self, rng: &mut Rng) -> Shrink<Self::Value> {
        let t = zip(
            zip(
                zip(
                    zip(
                        zip(
                            zip(zip(self.0.tree(rng), self.1.tree(rng)), self.2.tree(rng)),
                            self.3.tree(rng),
                        ),
                        self.4.tree(rng),
                    ),
                    self.5.tree(rng),
                ),
                self.6.tree(rng),
            ),
            self.7.tree(rng),
        );
        t.map(Rc::new(|(((((((a, b), c), d), e), f), g), h)| {
            (
                a.clone(),
                b.clone(),
                c.clone(),
                d.clone(),
                e.clone(),
                f.clone(),
                g.clone(),
                h.clone(),
            )
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::new(0xDE77E57)
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10i32..20).sample(&mut r);
            assert!((10..20).contains(&v));
            let w = (5u64..=9).sample(&mut r);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn int_shrink_heads_toward_origin() {
        let t = i128_tree(100, 10);
        let kids = t.children();
        assert_eq!(kids[0].value, 10, "most aggressive candidate first");
        assert!(kids.iter().all(|k| (10..100).contains(&k.value)));
    }

    #[test]
    fn negative_range_shrinks_toward_high_end() {
        let mut r = rng();
        // Range entirely below zero: origin is the max.
        let t = (-50i32..=-10).tree(&mut r);
        if t.value != -10 {
            assert_eq!(t.children()[0].value, -10);
        }
    }

    #[test]
    fn map_shrinks_through() {
        let mut r = rng();
        let s = (0i64..1000).prop_map(|v| format!("n={v}"));
        let t = s.tree(&mut r);
        for kid in t.children() {
            assert!(kid.value.starts_with("n="));
        }
    }

    #[test]
    fn vec_of_respects_lengths_and_shrinks_smaller() {
        let mut r = rng();
        for _ in 0..100 {
            let t = vec_of(0u8..=255, 2..=5).tree(&mut r);
            assert!((2..=5).contains(&t.value.len()));
            for kid in t.children() {
                assert!(kid.value.len() >= 2);
                assert!(kid.value.len() <= t.value.len());
            }
        }
    }

    #[test]
    fn exact_length_vec_never_shrinks_length() {
        let mut r = rng();
        let t = vec_of(0u32..5, 3usize).tree(&mut r);
        assert_eq!(t.value.len(), 3);
        for kid in t.children() {
            assert_eq!(kid.value.len(), 3);
        }
    }

    #[test]
    fn string_from_uses_alphabet_only() {
        let mut r = rng();
        for _ in 0..200 {
            let s = string_from("abc<>&", 0..=10).sample(&mut r);
            assert!(s.chars().all(|c| "abc<>&".contains(c)));
        }
    }

    #[test]
    fn one_of_covers_all_alternatives() {
        let mut r = rng();
        let s = one_of(vec![just(1u8).boxed(), just(2u8).boxed(), just(3u8).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let mut r = rng();
        let s = weighted(vec![(0, just(1u8).boxed()), (5, just(2u8).boxed())]);
        for _ in 0..200 {
            assert_eq!(s.sample(&mut r), 2);
        }
    }

    #[test]
    fn option_of_generates_both_and_shrinks_to_none() {
        let mut r = rng();
        let s = option_of(1i32..100);
        let (mut some, mut none) = (false, false);
        for _ in 0..200 {
            let t = s.tree(&mut r);
            match t.value {
                Some(_) => {
                    some = true;
                    assert_eq!(t.children()[0].value, None);
                }
                None => none = true,
            }
        }
        assert!(some && none);
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let s = (0i32..10, bools(), string_from("xy", 1..=2));
        let (n, _b, txt) = s.sample(&mut r);
        assert!((0..10).contains(&n));
        assert!(!txt.is_empty());
    }

    #[test]
    fn bool_true_shrinks_false() {
        let t = Shrink::new(true, || vec![Shrink::leaf(false)]);
        assert_eq!(t.children()[0].value, false);
    }
}
