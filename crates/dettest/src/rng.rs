//! A seeded, splittable PRNG: SplitMix64 state advance with an xorshift-style
//! output mix. Not cryptographic; chosen for two properties that matter in a
//! test harness: a 64-bit seed fully determines the stream, and any `u64` is
//! a valid seed (no bad states).

/// Deterministic pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }

    /// Uniform value in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses multiply-high rejection-free mapping; the bias is < 2^-32 for the
    /// small `n` a test generator draws, which is irrelevant here.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128) as u128 + 1;
        let off = ((self.next_u64() as u128 * span) >> 64) as i128;
        (lo as i128 + off) as i64
    }

    /// Uniform `u64` in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        let off = ((self.next_u64() as u128 * span) >> 64) as u64;
        lo + off
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Derive an independent stream for `index` under `base` — the per-case
    /// seeds the runner hands out (and prints on failure).
    pub fn derive(base: u64, index: u64) -> u64 {
        mix(base.wrapping_add(GOLDEN.wrapping_mul(index.wrapping_add(1))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        // All residues reachable.
        let mut seen = [false; 13];
        for _ in 0..2000 {
            seen[r.below(13) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ranges_inclusive() {
        let mut r = Rng::new(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..5000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(r.range_i64(5, 5), 5);
        assert_eq!(r.range_u64(9, 9), 9);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn derive_is_stable_and_spread() {
        assert_eq!(Rng::derive(1, 0), Rng::derive(1, 0));
        assert_ne!(Rng::derive(1, 0), Rng::derive(1, 1));
        assert_ne!(Rng::derive(1, 0), Rng::derive(2, 0));
    }
}
