//! Lazy shrink trees (rose trees, as in classic QuickCheck).
//!
//! A [`Shrink<T>`] is a candidate value plus a lazily computed list of
//! *simpler* candidates, each itself a full tree. Shrinking a failing case
//! is a greedy depth-first walk: take the first child that still fails,
//! repeat until no child fails. Laziness matters — trees for vectors have
//! combinatorially many nodes, and the walk only ever materializes one
//! child list per accepted step.

use std::rc::Rc;

/// A value with its lazily-enumerable simpler alternatives.
pub struct Shrink<T> {
    /// The candidate value at this node.
    pub value: T,
    children: Rc<dyn Fn() -> Vec<Shrink<T>>>,
}

impl<T: Clone + 'static> Clone for Shrink<T> {
    fn clone(&self) -> Self {
        Shrink { value: self.value.clone(), children: Rc::clone(&self.children) }
    }
}

impl<T: 'static> Shrink<T> {
    /// A node with no simpler alternatives.
    pub fn leaf(value: T) -> Shrink<T> {
        Shrink { value, children: Rc::new(Vec::new) }
    }

    /// A node whose children are produced on demand. Children should be
    /// ordered most-aggressive first (the greedy walk tries them in order).
    pub fn new(value: T, children: impl Fn() -> Vec<Shrink<T>> + 'static) -> Shrink<T> {
        Shrink { value, children: Rc::new(children) }
    }

    /// Materialize the immediate simpler alternatives.
    pub fn children(&self) -> Vec<Shrink<T>> {
        (self.children)()
    }

    /// Map the whole tree through `f`, preserving shrink structure. This is
    /// what lets `Strategy::map` shrink: the *source* tree shrinks, and every
    /// node is re-mapped.
    pub fn map<U: 'static>(self, f: Rc<dyn Fn(&T) -> U>) -> Shrink<U> {
        let value = f(&self.value);
        let kids = self.children;
        Shrink {
            value,
            children: Rc::new(move || {
                let f = Rc::clone(&f);
                kids().into_iter().map(|c| c.map(Rc::clone(&f))).collect()
            }),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Shrink<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shrink").field("value", &self.value).finish_non_exhaustive()
    }
}

/// Combine two trees into a tuple tree: shrink the left component first,
/// then the right (lexicographic greediness).
pub fn zip<A: Clone + 'static, B: Clone + 'static>(a: Shrink<A>, b: Shrink<B>) -> Shrink<(A, B)> {
    let value = (a.value.clone(), b.value.clone());
    Shrink::new(value, move || {
        let mut out: Vec<Shrink<(A, B)>> = Vec::new();
        for ca in a.children() {
            out.push(zip(ca, b.clone()));
        }
        for cb in b.children() {
            out.push(zip(a.clone(), cb));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_tree(v: i64) -> Shrink<i64> {
        Shrink::new(v, move || {
            let mut out = Vec::new();
            if v != 0 {
                out.push(int_tree(0));
                if v / 2 != 0 && v / 2 != v {
                    out.push(int_tree(v / 2));
                }
            }
            out
        })
    }

    #[test]
    fn leaf_has_no_children() {
        assert!(Shrink::leaf(5).children().is_empty());
    }

    #[test]
    fn map_preserves_structure() {
        let t = int_tree(8).map(Rc::new(|v: &i64| v * 10));
        assert_eq!(t.value, 80);
        let kids = t.children();
        assert_eq!(kids[0].value, 0);
        assert_eq!(kids[1].value, 40);
    }

    #[test]
    fn zip_shrinks_componentwise() {
        let t = zip(int_tree(4), int_tree(6));
        assert_eq!(t.value, (4, 6));
        let kids = t.children();
        // Left shrinks first, right held fixed.
        assert_eq!(kids[0].value, (0, 6));
        // Right shrinks after all left candidates.
        assert!(kids.iter().any(|k| k.value == (4, 0)));
    }
}
