//! [`CubeSchema`]: the dimension cardinalities and cell addressing.

use rased_osm_model::{ElementType, UpdateType};

/// Dimension cardinalities of a data cube.
///
/// ElementType (3) and UpdateType (5) are fixed by the OSM model; countries
/// and road types are taxonomy-table sizes. Two cubes interoperate (merge,
/// compare) iff their schemas are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CubeSchema {
    n_countries: u32,
    n_road_types: u32,
}

impl CubeSchema {
    /// Build a schema; both cardinalities must be non-zero.
    pub fn new(n_countries: usize, n_road_types: usize) -> CubeSchema {
        assert!(n_countries > 0 && n_road_types > 0, "cube dimensions must be non-zero");
        assert!(n_countries <= u16::MAX as usize && n_road_types <= u16::MAX as usize);
        CubeSchema { n_countries: n_countries as u32, n_road_types: n_road_types as u32 }
    }

    /// The paper's deployment scale: all countries + zones × 150 road types.
    /// ≈ 3 × 250 × 150 × 5 cells ≈ 4.5 MB per cube.
    pub fn paper_scale() -> CubeSchema {
        CubeSchema::new(rased_osm_model::COUNTRY_COUNT_FULL, 150)
    }

    /// A small schema for unit tests: 4 countries × 3 road types.
    pub fn tiny() -> CubeSchema {
        CubeSchema::new(4, 3)
    }

    /// Number of element types (first dimension).
    #[inline]
    pub fn n_element_types(&self) -> usize {
        ElementType::CARDINALITY
    }

    /// Number of countries/zones (second dimension).
    #[inline]
    pub fn n_countries(&self) -> usize {
        self.n_countries as usize
    }

    /// Number of road types (third dimension).
    #[inline]
    pub fn n_road_types(&self) -> usize {
        self.n_road_types as usize
    }

    /// Number of update types (fourth dimension).
    #[inline]
    pub fn n_update_types(&self) -> usize {
        UpdateType::CARDINALITY
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.n_element_types() * self.n_countries() * self.n_road_types() * self.n_update_types()
    }

    /// Serialized cube size in bytes (header + u64 cells).
    #[inline]
    pub fn cube_bytes(&self) -> usize {
        crate::cube::CUBE_HEADER_BYTES + self.cell_count() * 8
    }

    /// Flat index of a cell. Layout: `[element][country][road][update]`,
    /// update innermost — the most common query pattern sums a few update
    /// types for fixed other coordinates, which this keeps contiguous.
    #[inline]
    pub fn cell_index(&self, et: usize, country: usize, road: usize, update: usize) -> usize {
        debug_assert!(et < self.n_element_types());
        debug_assert!(country < self.n_countries());
        debug_assert!(road < self.n_road_types());
        debug_assert!(update < self.n_update_types());
        ((et * self.n_countries() + country) * self.n_road_types() + road) * self.n_update_types()
            + update
    }

    /// Inverse of [`CubeSchema::cell_index`].
    pub fn coords_of(&self, index: usize) -> (usize, usize, usize, usize) {
        let u = index % self.n_update_types();
        let rest = index / self.n_update_types();
        let r = rest % self.n_road_types();
        let rest = rest / self.n_road_types();
        let c = rest % self.n_countries();
        let et = rest / self.n_countries();
        (et, c, r, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_cell_count() {
        let s = CubeSchema::paper_scale();
        // 3 × (countries+zones) × 150 × 5. With the paper's 4-valued
        // UpdateType this would be the quoted 540 000 at 300 countries.
        assert_eq!(
            s.cell_count(),
            3 * rased_osm_model::COUNTRY_COUNT_FULL * 150 * 5
        );
        // One cube still fits in a ~4 MB disk page neighborhood.
        assert!(s.cube_bytes() > 3 << 20 && s.cube_bytes() < 8 << 20, "{}", s.cube_bytes());
    }

    #[test]
    fn index_coords_roundtrip() {
        let s = CubeSchema::new(5, 4);
        let mut seen = std::collections::HashSet::new();
        for et in 0..3 {
            for c in 0..5 {
                for r in 0..4 {
                    for u in 0..5 {
                        let i = s.cell_index(et, c, r, u);
                        assert!(i < s.cell_count());
                        assert!(seen.insert(i), "collision at {i}");
                        assert_eq!(s.coords_of(i), (et, c, r, u));
                    }
                }
            }
        }
        assert_eq!(seen.len(), s.cell_count());
    }

    #[test]
    fn update_dimension_is_innermost() {
        let s = CubeSchema::tiny();
        let base = s.cell_index(1, 2, 1, 0);
        for u in 0..s.n_update_types() {
            assert_eq!(s.cell_index(1, 2, 1, u), base + u);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        let _ = CubeSchema::new(0, 5);
    }
}
