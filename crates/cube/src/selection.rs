//! [`DimSelection`]: which cells of a cube a query touches.
//!
//! A RASED analysis query filters each non-temporal dimension with an `IN`
//! list (or no constraint). A `DimSelection` is that filter resolved against
//! a concrete [`CubeSchema`]: four sorted index lists, one per dimension.

use crate::schema::CubeSchema;
use rased_osm_model::{CountryId, ElementType, RoadTypeId, UpdateType};

/// A resolved per-dimension index selection over one cube schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimSelection {
    schema: CubeSchema,
    element_types: Vec<usize>,
    countries: Vec<usize>,
    road_types: Vec<usize>,
    update_types: Vec<usize>,
}

fn normalize(mut v: Vec<usize>, cardinality: usize) -> Vec<usize> {
    v.retain(|&i| i < cardinality);
    v.sort_unstable();
    v.dedup();
    v
}

impl DimSelection {
    /// Select everything.
    pub fn all(schema: CubeSchema) -> DimSelection {
        DimSelection {
            schema,
            element_types: (0..schema.n_element_types()).collect(),
            countries: (0..schema.n_countries()).collect(),
            road_types: (0..schema.n_road_types()).collect(),
            update_types: (0..schema.n_update_types()).collect(),
        }
    }

    /// Restrict the element-type dimension.
    pub fn with_element_types(mut self, types: &[ElementType]) -> DimSelection {
        self.element_types =
            normalize(types.iter().map(|t| t.index()).collect(), self.schema.n_element_types());
        self
    }

    /// Restrict the country dimension. Ids beyond the schema are dropped.
    pub fn with_countries(mut self, countries: &[CountryId]) -> DimSelection {
        self.countries =
            normalize(countries.iter().map(|c| c.index()).collect(), self.schema.n_countries());
        self
    }

    /// Restrict the road-type dimension. Ids beyond the schema are dropped.
    pub fn with_road_types(mut self, roads: &[RoadTypeId]) -> DimSelection {
        self.road_types =
            normalize(roads.iter().map(|r| r.index()).collect(), self.schema.n_road_types());
        self
    }

    /// Restrict the update-type dimension.
    pub fn with_update_types(mut self, updates: &[UpdateType]) -> DimSelection {
        self.update_types =
            normalize(updates.iter().map(|u| u.index()).collect(), self.schema.n_update_types());
        self
    }

    /// The schema this selection was resolved against.
    pub fn schema(&self) -> CubeSchema {
        self.schema
    }

    /// Selected element-type indexes (sorted).
    pub fn element_types(&self) -> &[usize] {
        &self.element_types
    }

    /// Selected country indexes (sorted).
    pub fn countries(&self) -> &[usize] {
        &self.countries
    }

    /// Selected road-type indexes (sorted).
    pub fn road_types(&self) -> &[usize] {
        &self.road_types
    }

    /// Selected update-type indexes (sorted).
    pub fn update_types(&self) -> &[usize] {
        &self.update_types
    }

    /// True when the cell at `(et, country, road, update)` is selected on
    /// every dimension — the membership test sparse spatial blocks filter
    /// with (dense cubes iterate the selection instead; see
    /// `DataCube::for_each_selected`).
    pub fn contains(&self, et: usize, country: usize, road: usize, update: usize) -> bool {
        self.element_types.binary_search(&et).is_ok()
            && self.countries.binary_search(&country).is_ok()
            && self.road_types.binary_search(&road).is_ok()
            && self.update_types.binary_search(&update).is_ok()
    }

    /// True when any dimension selects nothing (the query matches no cell).
    pub fn is_empty(&self) -> bool {
        self.element_types.is_empty()
            || self.countries.is_empty()
            || self.road_types.is_empty()
            || self.update_types.is_empty()
    }

    /// Number of selected cells.
    pub fn cell_count(&self) -> usize {
        self.element_types.len() * self.countries.len() * self.road_types.len() * self.update_types.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selects_every_cell() {
        let s = CubeSchema::tiny();
        let sel = DimSelection::all(s);
        assert_eq!(sel.cell_count(), s.cell_count());
        assert!(!sel.is_empty());
    }

    #[test]
    fn restrictions_compose() {
        let s = CubeSchema::tiny();
        let sel = DimSelection::all(s)
            .with_element_types(&[ElementType::Way, ElementType::Node])
            .with_countries(&[CountryId(1), CountryId(3), CountryId(1)])
            .with_update_types(&[UpdateType::Create]);
        assert_eq!(sel.element_types(), &[0, 1]);
        assert_eq!(sel.countries(), &[1, 3]); // deduped + sorted
        assert_eq!(sel.road_types().len(), 3); // untouched
        assert_eq!(sel.update_types(), &[0]);
        assert_eq!(sel.cell_count(), (2 * 2 * 3));
    }

    #[test]
    fn out_of_schema_ids_are_dropped() {
        let s = CubeSchema::tiny(); // 4 countries
        let sel = DimSelection::all(s).with_countries(&[CountryId(2), CountryId(99)]);
        assert_eq!(sel.countries(), &[2]);
    }

    #[test]
    fn empty_selection_detected() {
        let s = CubeSchema::tiny();
        let sel = DimSelection::all(s).with_countries(&[CountryId(99)]);
        assert!(sel.is_empty());
        assert_eq!(sel.cell_count(), 0);
    }
}
