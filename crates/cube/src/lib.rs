//! RASED data cubes (§VI-A).
//!
//! Each node of the hierarchical temporal index is a four-dimensional data
//! cube over *ElementType × Country × RoadType × UpdateType*; each cell
//! counts the OSM updates in the node's time window matching those four
//! coordinates. The paper's cubes hold 3 × 300 × 150 × 4 = 540 000
//! pre-computed values (~4 MB) and fit in one disk page.
//!
//! Ours are identical except the UpdateType dimension has a fifth
//! `Unclassified` slot modeling the daily crawler's coarse "update" class
//! before the monthly refinement (see `rased-osm-model` docs), and both
//! taxonomy cardinalities are parameters of [`CubeSchema`] so tests and
//! benchmarks can scale the cube without touching any algorithm.

mod schema;
mod cube;
mod selection;
mod sparse;

pub use cube::{CubeError, DataCube, CUBE_HEADER_BYTES};
pub use schema::CubeSchema;
pub use selection::DimSelection;
pub use sparse::{SparseBlock, BLOCK_HEADER_BYTES};
