//! [`DataCube`]: the dense count array plus build, merge, and serialization.

use crate::schema::CubeSchema;
use crate::selection::DimSelection;
use rased_osm_model::UpdateRecord;
use std::fmt;

/// Serialized cube header: magic (8) + n_countries (4) + n_road_types (4).
pub const CUBE_HEADER_BYTES: usize = 16;
const MAGIC: &[u8; 8] = b"RSCUBE1\0";

/// Cube-level error.
#[derive(Debug, PartialEq, Eq)]
pub enum CubeError {
    /// A record whose country/road id exceeds the schema.
    CoordOutOfRange { dim: &'static str, index: usize, cardinality: usize },
    /// Two cubes with different schemas in one operation.
    SchemaMismatch,
    /// Deserialization failure.
    Corrupt(String),
}

impl fmt::Display for CubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubeError::CoordOutOfRange { dim, index, cardinality } => {
                write!(f, "{dim} index {index} out of range (cardinality {cardinality})")
            }
            CubeError::SchemaMismatch => write!(f, "cube schemas differ"),
            CubeError::Corrupt(m) => write!(f, "corrupt cube: {m}"),
        }
    }
}

impl std::error::Error for CubeError {}

/// A dense 4-D count cube (see crate docs for the dimension semantics).
#[derive(Clone, PartialEq, Eq)]
pub struct DataCube {
    schema: CubeSchema,
    cells: Vec<u64>,
}

impl fmt::Debug for DataCube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataCube")
            .field("schema", &self.schema)
            .field("total", &self.total())
            .finish_non_exhaustive()
    }
}

impl DataCube {
    /// An all-zero cube.
    pub fn zeroed(schema: CubeSchema) -> DataCube {
        DataCube { schema, cells: vec![0; schema.cell_count()] }
    }

    /// Build a cube by counting records. Fails on the first record whose
    /// coordinates exceed the schema.
    pub fn from_records<'a, I>(schema: CubeSchema, records: I) -> Result<DataCube, CubeError>
    where
        I: IntoIterator<Item = &'a UpdateRecord>,
    {
        let mut cube = DataCube::zeroed(schema);
        for r in records {
            cube.add_record(r)?;
        }
        Ok(cube)
    }

    /// The cube's schema.
    #[inline]
    pub fn schema(&self) -> CubeSchema {
        self.schema
    }

    /// Raw cell slice (cells are `u64` counts, layout per
    /// [`CubeSchema::cell_index`]).
    #[inline]
    pub fn cells(&self) -> &[u64] {
        &self.cells
    }

    /// Count one update record.
    pub fn add_record(&mut self, r: &UpdateRecord) -> Result<(), CubeError> {
        let c = r.country.index();
        if c >= self.schema.n_countries() {
            return Err(CubeError::CoordOutOfRange {
                dim: "country",
                index: c,
                cardinality: self.schema.n_countries(),
            });
        }
        let rt = r.road_type.index();
        if rt >= self.schema.n_road_types() {
            return Err(CubeError::CoordOutOfRange {
                dim: "road type",
                index: rt,
                cardinality: self.schema.n_road_types(),
            });
        }
        let i = self.schema.cell_index(r.element_type.index(), c, rt, r.update_type.index());
        match self.cells.get_mut(i) {
            Some(cell) => {
                *cell += 1;
                Ok(())
            }
            // Unreachable after the dimension checks above; kept total so a
            // schema bug surfaces as a typed error, not an index panic.
            None => Err(CubeError::CoordOutOfRange {
                dim: "cell",
                index: i,
                cardinality: self.schema.cell_count(),
            }),
        }
    }

    /// Read one cell. Out-of-schema coordinates read as 0.
    #[inline]
    pub fn get(&self, et: usize, country: usize, road: usize, update: usize) -> u64 {
        self.cells.get(self.schema.cell_index(et, country, road, update)).copied().unwrap_or(0)
    }

    /// Overwrite one cell. Out-of-schema coordinates are ignored (the
    /// debug assertions in [`CubeSchema::cell_index`] catch misuse in
    /// tests; release builds stay total).
    #[inline]
    pub fn set(&mut self, et: usize, country: usize, road: usize, update: usize, v: u64) {
        let i = self.schema.cell_index(et, country, road, update);
        if let Some(cell) = self.cells.get_mut(i) {
            *cell = v;
        }
    }

    /// Sum of all cells — the total number of updates in the time window.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// Element-wise add `other` into `self` — the roll-up operation that
    /// builds weekly/monthly/yearly cubes from their children (§VI-A:
    /// "reading the six previous cubes and summing up their corresponding
    /// values").
    pub fn merge_from(&mut self, other: &DataCube) -> Result<(), CubeError> {
        if self.schema != other.schema {
            return Err(CubeError::SchemaMismatch);
        }
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a += b;
        }
        Ok(())
    }

    /// Sum the cells selected by `sel` (the in-memory second phase of query
    /// execution, §VII: "aggregate values within the cube").
    pub fn sum_selected(&self, sel: &DimSelection) -> u64 {
        let mut acc = 0u64;
        self.for_each_selected(sel, |_, _, _, _, v| acc += v);
        acc
    }

    /// Visit every selected, *non-zero* cell as
    /// `(element, country, road, update, count)`.
    pub fn for_each_selected<F>(&self, sel: &DimSelection, mut visit: F)
    where
        F: FnMut(usize, usize, usize, usize, u64),
    {
        let s = &self.schema;
        debug_assert_eq!(sel.schema(), self.schema, "selection resolved against another schema");
        // Iterate the selection in layout order for cache-friendly access.
        for &et in sel.element_types() {
            for &c in sel.countries() {
                for &r in sel.road_types() {
                    let base = s.cell_index(et, c, r, 0);
                    for &u in sel.update_types() {
                        let Some(&v) = self.cells.get(base + u) else { continue };
                        if v != 0 {
                            visit(et, c, r, u, v);
                        }
                    }
                }
            }
        }
    }

    /// Zero every cell with UpdateType = `Unclassified` — used by the
    /// monthly rebuild after re-classifying updates into geometry/metadata.
    pub fn clear_update_type(&mut self, update: usize) {
        let s = self.schema;
        for et in 0..s.n_element_types() {
            for c in 0..s.n_countries() {
                for r in 0..s.n_road_types() {
                    let i = s.cell_index(et, c, r, update);
                    if let Some(cell) = self.cells.get_mut(i) {
                        *cell = 0;
                    }
                }
            }
        }
    }

    /// Serialize into exactly [`CubeSchema::cube_bytes`] bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.schema.cube_bytes());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.schema.n_countries() as u32).to_le_bytes());
        out.extend_from_slice(&(self.schema.n_road_types() as u32).to_le_bytes());
        for c in &self.cells {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Deserialize; `expected` guards against reading a cube written under
    /// a different schema. Trailing page padding beyond the cube is ignored.
    pub fn from_bytes(expected: CubeSchema, bytes: &[u8]) -> Result<DataCube, CubeError> {
        if bytes.len() < CUBE_HEADER_BYTES {
            return Err(CubeError::Corrupt("short header".into()));
        }
        if bytes.get(..8) != Some(MAGIC.as_slice()) {
            return Err(CubeError::Corrupt("bad magic".into()));
        }
        let corrupt = || CubeError::Corrupt("short header".into());
        let nc = read_le_u32(bytes, 8).ok_or_else(corrupt)? as usize;
        let nr = read_le_u32(bytes, 12).ok_or_else(corrupt)? as usize;
        if nc != expected.n_countries() || nr != expected.n_road_types() {
            return Err(CubeError::SchemaMismatch);
        }
        let need = expected.cell_count() * 8;
        let body = bytes
            .get(CUBE_HEADER_BYTES..CUBE_HEADER_BYTES + need)
            .ok_or_else(|| CubeError::Corrupt("truncated cell data".into()))?;
        let cells = body
            .chunks_exact(8)
            // chunks_exact guarantees 8-byte windows; a mismatch (impossible)
            // decodes as 0 rather than panicking on the read path.
            .map(|c| u64::from_le_bytes(c.try_into().unwrap_or_default()))
            .collect();
        Ok(DataCube { schema: expected, cells })
    }
}

/// Bounds-checked little-endian u32 read — `None` instead of a panic on a
/// short buffer, keeping `from_bytes` total on the warm-cache read path.
fn read_le_u32(bytes: &[u8], off: usize) -> Option<u32> {
    bytes.get(off..off.checked_add(4)?).and_then(|b| b.try_into().ok()).map(u32::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rased_osm_model::{ChangesetId, CountryId, ElementType, RoadTypeId, UpdateType};

    fn rec(et: ElementType, c: u16, r: u16, u: UpdateType) -> UpdateRecord {
        UpdateRecord {
            element_type: et,
            update_type: u,
            country: CountryId(c),
            road_type: RoadTypeId(r),
            date: "2021-01-01".parse().unwrap(),
            lat7: 0,
            lon7: 0,
            changeset: ChangesetId(1),
        }
    }

    #[test]
    fn build_from_records_counts_cells() {
        let s = CubeSchema::tiny();
        let records = vec![
            rec(ElementType::Way, 0, 1, UpdateType::Create),
            rec(ElementType::Way, 0, 1, UpdateType::Create),
            rec(ElementType::Node, 3, 2, UpdateType::Delete),
        ];
        let cube = DataCube::from_records(s, &records).unwrap();
        assert_eq!(cube.get(1, 0, 1, 0), 2);
        assert_eq!(cube.get(0, 3, 2, 1), 1);
        assert_eq!(cube.total(), 3);
    }

    #[test]
    fn out_of_range_record_rejected() {
        let s = CubeSchema::tiny(); // 4 countries, 3 road types
        let mut cube = DataCube::zeroed(s);
        let bad_country = rec(ElementType::Node, 4, 0, UpdateType::Create);
        assert!(matches!(
            cube.add_record(&bad_country),
            Err(CubeError::CoordOutOfRange { dim: "country", .. })
        ));
        let bad_road = rec(ElementType::Node, 0, 3, UpdateType::Create);
        assert!(matches!(
            cube.add_record(&bad_road),
            Err(CubeError::CoordOutOfRange { dim: "road type", .. })
        ));
    }

    #[test]
    fn merge_is_elementwise_add() {
        let s = CubeSchema::tiny();
        let a = DataCube::from_records(s, &[rec(ElementType::Way, 1, 1, UpdateType::Create)]).unwrap();
        let b = DataCube::from_records(
            s,
            &[rec(ElementType::Way, 1, 1, UpdateType::Create), rec(ElementType::Node, 0, 0, UpdateType::Metadata)],
        )
        .unwrap();
        let mut m = DataCube::zeroed(s);
        m.merge_from(&a).unwrap();
        m.merge_from(&b).unwrap();
        assert_eq!(m.get(1, 1, 1, 0), 2);
        assert_eq!(m.get(0, 0, 0, 3), 1);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn merge_rejects_schema_mismatch() {
        let mut a = DataCube::zeroed(CubeSchema::tiny());
        let b = DataCube::zeroed(CubeSchema::new(10, 10));
        assert_eq!(a.merge_from(&b), Err(CubeError::SchemaMismatch));
    }

    #[test]
    fn serialization_roundtrip() {
        let s = CubeSchema::tiny();
        let cube = DataCube::from_records(
            s,
            &[
                rec(ElementType::Way, 1, 2, UpdateType::Geometry),
                rec(ElementType::Relation, 3, 0, UpdateType::Unclassified),
            ],
        )
        .unwrap();
        let bytes = cube.to_bytes();
        assert_eq!(bytes.len(), s.cube_bytes());
        let back = DataCube::from_bytes(s, &bytes).unwrap();
        assert_eq!(back, cube);

        // Page padding beyond the cube is tolerated.
        let mut padded = bytes.clone();
        padded.resize(padded.len() + 100, 0xAA);
        assert_eq!(DataCube::from_bytes(s, &padded).unwrap(), cube);
    }

    #[test]
    fn deserialization_rejects_corruption() {
        let s = CubeSchema::tiny();
        let bytes = DataCube::zeroed(s).to_bytes();
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(DataCube::from_bytes(s, &bad), Err(CubeError::Corrupt(_))));
        // Truncated.
        assert!(matches!(
            DataCube::from_bytes(s, &bytes[..bytes.len() - 9]),
            Err(CubeError::Corrupt(_))
        ));
        assert!(matches!(DataCube::from_bytes(s, &bytes[..4]), Err(CubeError::Corrupt(_))));
        // Schema mismatch.
        assert_eq!(
            DataCube::from_bytes(CubeSchema::new(9, 9), &bytes).unwrap_err(),
            CubeError::SchemaMismatch
        );
    }

    #[test]
    fn clear_update_type_zeroes_one_slice() {
        let s = CubeSchema::tiny();
        let mut cube = DataCube::from_records(
            s,
            &[
                rec(ElementType::Way, 0, 0, UpdateType::Unclassified),
                rec(ElementType::Way, 0, 0, UpdateType::Create),
            ],
        )
        .unwrap();
        cube.clear_update_type(UpdateType::Unclassified.index());
        assert_eq!(cube.get(1, 0, 0, UpdateType::Unclassified.index()), 0);
        assert_eq!(cube.get(1, 0, 0, UpdateType::Create.index()), 1);
        assert_eq!(cube.total(), 1);
    }
}
