//! [`SparseBlock`]: a sparse pre-aggregated cube for one spatial region.
//!
//! A grid cell sees a tiny slice of the world's updates, so a dense
//! [`DataCube`](crate::DataCube) per (period, cell) would waste a page of
//! mostly-zero `u64`s on every block. A `SparseBlock` stores only the
//! non-zero cells as sorted `(cell_index, count)` pairs against the same
//! [`CubeSchema`] addressing — GeoBlocks-style pre-aggregation sized to
//! its content, typically a few hundred bytes.
//!
//! Blocks are built from *original* update records (no zone expansion —
//! geography is already explicit in the spatial key, so zone roll-ups
//! would double-count under a bbox filter), merged by element-wise add for
//! temporal roll-up, and queried through the same [`DimSelection`]
//! membership the dense path resolves.

use crate::cube::CubeError;
use crate::schema::CubeSchema;
use crate::selection::DimSelection;
use rased_osm_model::UpdateRecord;

/// Serialized header: magic (8) + n_countries (4) + n_road_types (4) +
/// entry count (4).
pub const BLOCK_HEADER_BYTES: usize = 20;
const MAGIC: &[u8; 8] = b"RSBLK1\0\0";
/// Bytes per serialized entry: cell index (u32) + count (u64).
const ENTRY_BYTES: usize = 12;

/// A sparse 4-D count cube: only non-zero cells, sorted by flat index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseBlock {
    schema: CubeSchema,
    /// Sorted by cell index, no duplicates, no zero counts.
    entries: Vec<(u32, u64)>,
}

impl SparseBlock {
    /// An empty block.
    pub fn empty(schema: CubeSchema) -> SparseBlock {
        SparseBlock { schema, entries: Vec::new() }
    }

    /// Build by counting records. Fails on the first record whose
    /// coordinates exceed the schema (same contract as
    /// `DataCube::from_records`).
    pub fn from_records<'a, I>(schema: CubeSchema, records: I) -> Result<SparseBlock, CubeError>
    where
        I: IntoIterator<Item = &'a UpdateRecord>,
    {
        let mut counts = std::collections::BTreeMap::new();
        for r in records {
            let c = r.country.index();
            if c >= schema.n_countries() {
                return Err(CubeError::CoordOutOfRange {
                    dim: "country",
                    index: c,
                    cardinality: schema.n_countries(),
                });
            }
            let rt = r.road_type.index();
            if rt >= schema.n_road_types() {
                return Err(CubeError::CoordOutOfRange {
                    dim: "road type",
                    index: rt,
                    cardinality: schema.n_road_types(),
                });
            }
            let i = schema.cell_index(r.element_type.index(), c, rt, r.update_type.index());
            *counts.entry(i as u32).or_insert(0u64) += 1;
        }
        Ok(SparseBlock { schema, entries: counts.into_iter().collect() })
    }

    /// The block's schema.
    #[inline]
    pub fn schema(&self) -> CubeSchema {
        self.schema
    }

    /// Number of non-zero cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the block holds no counts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, v)| v).sum()
    }

    /// Element-wise add `other` into `self` — the temporal roll-up that
    /// builds a month block from its day blocks.
    pub fn merge_from(&mut self, other: &SparseBlock) -> Result<(), CubeError> {
        if self.schema != other.schema {
            return Err(CubeError::SchemaMismatch);
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut a, mut b) = (self.entries.iter().peekable(), other.entries.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, va)), Some(&&(ib, vb))) => {
                    if ia == ib {
                        merged.push((ia, va + vb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, va));
                        a.next();
                    } else {
                        merged.push((ib, vb));
                        b.next();
                    }
                }
                (Some(&&e), None) => {
                    merged.push(e);
                    a.next();
                }
                (None, Some(&&e)) => {
                    merged.push(e);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.entries = merged;
        Ok(())
    }

    /// Visit every selected, non-zero cell as
    /// `(element, country, road, update, count)` — the sparse counterpart
    /// of `DataCube::for_each_selected`.
    pub fn for_each_selected<F>(&self, sel: &DimSelection, mut visit: F)
    where
        F: FnMut(usize, usize, usize, usize, u64),
    {
        debug_assert_eq!(sel.schema(), self.schema, "selection resolved against another schema");
        for &(i, v) in &self.entries {
            let (et, c, r, u) = self.schema.coords_of(i as usize);
            if sel.contains(et, c, r, u) {
                visit(et, c, r, u, v);
            }
        }
    }

    /// Serialize: header + `len()` 12-byte entries.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BLOCK_HEADER_BYTES + self.entries.len() * ENTRY_BYTES);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.schema.n_countries() as u32).to_le_bytes());
        out.extend_from_slice(&(self.schema.n_road_types() as u32).to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for &(i, v) in &self.entries {
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserialize; `expected` guards against reading a block written under
    /// a different schema. Trailing page padding is ignored.
    pub fn from_bytes(expected: CubeSchema, bytes: &[u8]) -> Result<SparseBlock, CubeError> {
        if bytes.get(..8) != Some(MAGIC.as_slice()) {
            return Err(CubeError::Corrupt("bad block magic".into()));
        }
        let corrupt = |m: &str| CubeError::Corrupt(m.into());
        let nc = read_le_u32(bytes, 8).ok_or_else(|| corrupt("short header"))? as usize;
        let nr = read_le_u32(bytes, 12).ok_or_else(|| corrupt("short header"))? as usize;
        let count = read_le_u32(bytes, 16).ok_or_else(|| corrupt("short header"))? as usize;
        if nc != expected.n_countries() || nr != expected.n_road_types() {
            return Err(CubeError::SchemaMismatch);
        }
        let need = count.checked_mul(ENTRY_BYTES).ok_or_else(|| corrupt("entry count overflow"))?;
        let body = bytes
            .get(BLOCK_HEADER_BYTES..BLOCK_HEADER_BYTES.saturating_add(need))
            .ok_or_else(|| corrupt("truncated block entries"))?;
        let cell_count = expected.cell_count();
        let mut entries = Vec::with_capacity(count);
        let mut prev: Option<u32> = None;
        for chunk in body.chunks_exact(ENTRY_BYTES) {
            let i = chunk
                .get(..4)
                .and_then(|b| b.try_into().ok())
                .map(u32::from_le_bytes)
                .ok_or_else(|| corrupt("short entry"))?;
            let v = chunk
                .get(4..12)
                .and_then(|b| b.try_into().ok())
                .map(u64::from_le_bytes)
                .ok_or_else(|| corrupt("short entry"))?;
            if i as usize >= cell_count {
                return Err(corrupt("entry index out of schema"));
            }
            if prev.is_some_and(|p| p >= i) {
                return Err(corrupt("entries not strictly sorted"));
            }
            prev = Some(i);
            entries.push((i, v));
        }
        Ok(SparseBlock { schema: expected, entries })
    }
}

/// Bounds-checked little-endian u32 read, total on the read path.
fn read_le_u32(bytes: &[u8], off: usize) -> Option<u32> {
    bytes.get(off..off.checked_add(4)?).and_then(|b| b.try_into().ok()).map(u32::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::DataCube;
    use rased_osm_model::{ChangesetId, CountryId, ElementType, RoadTypeId, UpdateType};

    fn rec(et: ElementType, c: u16, r: u16, u: UpdateType) -> UpdateRecord {
        UpdateRecord {
            element_type: et,
            update_type: u,
            country: CountryId(c),
            road_type: RoadTypeId(r),
            date: "2021-01-01".parse().unwrap(),
            lat7: 0,
            lon7: 0,
            changeset: ChangesetId(1),
        }
    }

    fn sample() -> Vec<UpdateRecord> {
        vec![
            rec(ElementType::Way, 0, 1, UpdateType::Create),
            rec(ElementType::Way, 0, 1, UpdateType::Create),
            rec(ElementType::Node, 3, 2, UpdateType::Delete),
            rec(ElementType::Relation, 2, 0, UpdateType::Metadata),
        ]
    }

    #[test]
    fn matches_dense_cube_on_same_records() {
        let s = CubeSchema::tiny();
        let records = sample();
        let block = SparseBlock::from_records(s, &records).unwrap();
        let dense = DataCube::from_records(s, &records).unwrap();
        assert_eq!(block.total(), dense.total());
        let sel = DimSelection::all(s);
        let mut from_block = Vec::new();
        block.for_each_selected(&sel, |et, c, r, u, v| from_block.push((et, c, r, u, v)));
        let mut from_dense = Vec::new();
        dense.for_each_selected(&sel, |et, c, r, u, v| from_dense.push((et, c, r, u, v)));
        assert_eq!(from_block, from_dense);
    }

    #[test]
    fn selection_filters_cells() {
        let s = CubeSchema::tiny();
        let block = SparseBlock::from_records(s, &sample()).unwrap();
        let sel = DimSelection::all(s)
            .with_countries(&[CountryId(0)])
            .with_update_types(&[UpdateType::Create]);
        let mut seen = Vec::new();
        block.for_each_selected(&sel, |et, c, r, u, v| seen.push((et, c, r, u, v)));
        assert_eq!(seen, vec![(1, 0, 1, 0, 2)]);
    }

    #[test]
    fn merge_is_elementwise_add() {
        let s = CubeSchema::tiny();
        let mut a = SparseBlock::from_records(s, &sample()).unwrap();
        let b = SparseBlock::from_records(
            s,
            &[rec(ElementType::Way, 0, 1, UpdateType::Create), rec(ElementType::Node, 1, 1, UpdateType::Geometry)],
        )
        .unwrap();
        a.merge_from(&b).unwrap();
        assert_eq!(a.total(), 6);
        let sel = DimSelection::all(s).with_countries(&[CountryId(0)]);
        let mut way_creates = 0;
        a.for_each_selected(&sel, |_, _, _, u, v| {
            if u == UpdateType::Create.index() {
                way_creates += v;
            }
        });
        assert_eq!(way_creates, 3);
        assert_eq!(
            a.merge_from(&SparseBlock::empty(CubeSchema::new(9, 9))),
            Err(CubeError::SchemaMismatch)
        );
    }

    #[test]
    fn serialization_roundtrip_and_padding() {
        let s = CubeSchema::tiny();
        let block = SparseBlock::from_records(s, &sample()).unwrap();
        let mut bytes = block.to_bytes();
        assert_eq!(bytes.len(), BLOCK_HEADER_BYTES + block.len() * ENTRY_BYTES);
        assert_eq!(SparseBlock::from_bytes(s, &bytes).unwrap(), block);
        bytes.resize(bytes.len() + 64, 0xAA);
        assert_eq!(SparseBlock::from_bytes(s, &bytes).unwrap(), block);
        // Empty block round-trips too.
        let empty = SparseBlock::empty(s);
        assert_eq!(SparseBlock::from_bytes(s, &empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn deserialization_rejects_corruption() {
        let s = CubeSchema::tiny();
        let bytes = SparseBlock::from_records(s, &sample()).unwrap().to_bytes();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(SparseBlock::from_bytes(s, &bad), Err(CubeError::Corrupt(_))));
        assert!(matches!(
            SparseBlock::from_bytes(s, &bytes[..bytes.len() - 5]),
            Err(CubeError::Corrupt(_))
        ));
        assert_eq!(
            SparseBlock::from_bytes(CubeSchema::new(9, 9), &bytes).unwrap_err(),
            CubeError::SchemaMismatch
        );
        // Unsorted entries rejected.
        let mut twisted = bytes.clone();
        // Swap the first two entries' index fields.
        let (i0, i1) = (BLOCK_HEADER_BYTES, BLOCK_HEADER_BYTES + ENTRY_BYTES);
        for k in 0..4 {
            twisted.swap(i0 + k, i1 + k);
        }
        assert!(matches!(SparseBlock::from_bytes(s, &twisted), Err(CubeError::Corrupt(_))));
        // Out-of-schema index rejected.
        let mut oob = bytes.clone();
        oob[BLOCK_HEADER_BYTES..BLOCK_HEADER_BYTES + 4]
            .copy_from_slice(&(s.cell_count() as u32).to_le_bytes());
        assert!(matches!(SparseBlock::from_bytes(s, &oob), Err(CubeError::Corrupt(_))));
    }

    #[test]
    fn out_of_range_record_rejected() {
        let s = CubeSchema::tiny();
        assert!(matches!(
            SparseBlock::from_records(s, &[rec(ElementType::Way, 4, 0, UpdateType::Create)]),
            Err(CubeError::CoordOutOfRange { dim: "country", .. })
        ));
        assert!(matches!(
            SparseBlock::from_records(s, &[rec(ElementType::Way, 0, 3, UpdateType::Create)]),
            Err(CubeError::CoordOutOfRange { dim: "road type", .. })
        ));
    }
}
