//! [`RasedVariant`]: the ablation configurations of Fig. 9.

use rased_index::{CacheConfig, PlannerKind};

/// Which RASED configuration to run (Fig. 9's three curves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RasedVariant {
    /// One-level flat index of daily cubes; no caching, no level
    /// optimization (the plan is forced to daily cubes anyway).
    Flat,
    /// Full hierarchy + level optimizer, but no cube cache.
    Optimized,
    /// The complete system: hierarchy + level optimizer + cache.
    Full,
}

impl RasedVariant {
    /// All variants in Fig. 9 order.
    pub const ALL: [RasedVariant; 3] = [RasedVariant::Flat, RasedVariant::Optimized, RasedVariant::Full];

    /// Index levels for this variant.
    pub fn levels(self) -> u8 {
        match self {
            RasedVariant::Flat => 1,
            RasedVariant::Optimized | RasedVariant::Full => 4,
        }
    }

    /// Cache configuration for this variant; `slots` applies to `Full` only.
    pub fn cache(self, slots: usize) -> CacheConfig {
        match self {
            RasedVariant::Flat | RasedVariant::Optimized => CacheConfig::disabled(),
            RasedVariant::Full => CacheConfig { slots, ..CacheConfig::paper_default() },
        }
    }

    /// Planner used by this variant.
    pub fn planner(self) -> PlannerKind {
        // The flat index only has daily cubes, so the planner degenerates;
        // using the DP everywhere keeps the comparison about the *index*,
        // not the planning algorithm.
        PlannerKind::ExactDp
    }

    /// The label the paper uses.
    pub fn label(self) -> &'static str {
        match self {
            RasedVariant::Flat => "RASED-F",
            RasedVariant::Optimized => "RASED-O",
            RasedVariant::Full => "RASED",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_configurations() {
        assert_eq!(RasedVariant::Flat.levels(), 1);
        assert_eq!(RasedVariant::Optimized.levels(), 4);
        assert_eq!(RasedVariant::Full.levels(), 4);
        assert_eq!(RasedVariant::Flat.cache(100).slots, 0);
        assert_eq!(RasedVariant::Optimized.cache(100).slots, 0);
        assert_eq!(RasedVariant::Full.cache(100).slots, 100);
        assert_eq!(RasedVariant::Full.label(), "RASED");
    }
}
