//! Comparison systems for the evaluation (§VIII).
//!
//! * [`DbmsBaseline`] — the "PostgreSQL" stand-in of Fig. 10: a sequential
//!   scan over the UpdateList heap file with hash aggregation. Multi-
//!   attribute `GROUP BY` defeats any single-column index, so a row store
//!   must scan the whole relation; its cost is therefore (nearly) constant
//!   in the query window — exactly the behaviour the paper measures.
//! * [`RasedVariant`] — the ablation configurations of Fig. 9: RASED-F
//!   (flat daily index, no caching, no level optimization), RASED-O
//!   (hierarchy + level optimizer, no caching), and full RASED.

mod dbms;
mod variants;

pub use dbms::DbmsBaseline;
pub use variants::RasedVariant;
