//! [`DbmsBaseline`]: full-scan row-store execution of analysis queries.

use rased_query::{AnalysisQuery, NetworkSizes, QueryResult, RecordAggregator};
use rased_storage::StorageError;
use rased_warehouse::HeapFile;
use std::time::Instant;

/// The row-scan DBMS baseline (Fig. 10's PostgreSQL).
///
/// Executes an [`AnalysisQuery`] by scanning the entire heap file through
/// its buffer pool and hash-aggregating — the plan a row store is forced
/// into by the multi-attribute `GROUP BY` of the paper's query signature.
/// For fairness with the paper's setup, size the heap's pool to the same
/// 2 GB the paper granted PostgreSQL.
pub struct DbmsBaseline<'a> {
    heap: &'a HeapFile,
    sizes: Option<&'a NetworkSizes>,
}

impl<'a> DbmsBaseline<'a> {
    /// A baseline scanning `heap`.
    pub fn new(heap: &'a HeapFile) -> DbmsBaseline<'a> {
        DbmsBaseline { heap, sizes: None }
    }

    /// Provide per-country network sizes for percentage queries.
    pub fn with_network_sizes(mut self, sizes: &'a NetworkSizes) -> Self {
        self.sizes = Some(sizes);
        self
    }

    /// Execute by full scan + hash aggregation.
    pub fn execute(&self, q: &AnalysisQuery) -> Result<QueryResult, StorageError> {
        let start = Instant::now();
        let io_before = self.heap.file().stats().snapshot();

        let mut agg = RecordAggregator::new(q, self.sizes);
        self.heap.scan(|_, record| agg.push(record))?;
        let mut result = agg.finish();

        result.stats.io = self.heap.file().stats().snapshot().since(&io_before);
        result.stats.wall = start.elapsed();
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rased_osm_model::{ChangesetId, CountryId, ElementType, RoadTypeId, UpdateRecord, UpdateType};
    use rased_query::{naive_execute, GroupDim};
    use rased_storage::IoCostModel;
    use rased_temporal::{Date, DateRange};

    fn records(n: u64) -> Vec<UpdateRecord> {
        (0..n)
            .map(|i| UpdateRecord {
                element_type: ElementType::ALL[(i % 3) as usize],
                update_type: UpdateType::ALL[(i % 5) as usize],
                country: CountryId((i % 6) as u16),
                road_type: RoadTypeId((i % 4) as u16),
                date: Date::new(2021, 1, 1).unwrap().add_days((i % 365) as i32),
                lat7: 0,
                lon7: 0,
                changeset: ChangesetId(i + 1),
            })
            .collect()
    }

    fn heap(tag: &str, recs: &[UpdateRecord], pool_pages: usize) -> HeapFile {
        let dir = std::env::temp_dir().join(format!(
            "rased-dbms-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut h = HeapFile::create(&dir.join("h.pg"), IoCostModel::free(), pool_pages).unwrap();
        for r in recs {
            h.append(r).unwrap();
        }
        h.flush().unwrap();
        h
    }

    #[test]
    fn matches_naive_oracle() {
        let recs = records(5000);
        let h = heap("oracle", &recs, 64);
        let q = rased_query::AnalysisQuery::over(DateRange::new(
            Date::new(2021, 2, 1).unwrap(),
            Date::new(2021, 10, 31).unwrap(),
        ))
        .countries(vec![CountryId(0), CountryId(3)])
        .group(GroupDim::Country)
        .group(GroupDim::UpdateType);
        let got = DbmsBaseline::new(&h).execute(&q).unwrap();
        let want = naive_execute(&recs, &q, None);
        assert_eq!(got.rows, want.rows);
    }

    #[test]
    fn scan_cost_is_window_independent() {
        // The defining behaviour of Fig. 10: pages read do not depend on
        // the query window.
        let recs = records(20_000);
        let h = heap("constcost", &recs, 0); // no pool: every scan hits disk
        let narrow = rased_query::AnalysisQuery::over(DateRange::new(
            Date::new(2021, 6, 1).unwrap(),
            Date::new(2021, 6, 2).unwrap(),
        ));
        let wide = rased_query::AnalysisQuery::over(DateRange::new(
            Date::new(2021, 1, 1).unwrap(),
            Date::new(2021, 12, 31).unwrap(),
        ));
        let a = DbmsBaseline::new(&h).execute(&narrow).unwrap();
        let b = DbmsBaseline::new(&h).execute(&wide).unwrap();
        assert_eq!(a.stats.io.reads, b.stats.io.reads);
        assert!(a.stats.io.reads > 0);
        assert!(b.total_count() > a.total_count());
    }

    #[test]
    fn warm_pool_avoids_rereads() {
        let recs = records(2000);
        let h = heap("pool", &recs, 1024); // pool bigger than the relation
        let q = rased_query::AnalysisQuery::over(DateRange::new(
            Date::new(2021, 1, 1).unwrap(),
            Date::new(2021, 12, 31).unwrap(),
        ));
        let first = DbmsBaseline::new(&h).execute(&q).unwrap();
        let second = DbmsBaseline::new(&h).execute(&q).unwrap();
        assert!(first.stats.io.reads > 0);
        assert_eq!(second.stats.io.reads, 0, "relation fits in the 'buffer'");
        assert_eq!(first.rows, second.rows);
    }
}
