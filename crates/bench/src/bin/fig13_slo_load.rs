//! **Figure 13 — Mixed dashboard workload under live ingestion, SLO-gated.**
//!
//! The closed-loop load harness: N simulated dashboard users (Zipf-focused
//! tile views, drill-downs, period/country pans — see
//! [`rased_bench::workload`]) drive the *real* HTTP tier over keep-alive
//! connections while the [`IngestController`] streams a multi-day dataset
//! in. Each user is identified to the server's admission control via
//! `X-Forwarded-For`, so per-client fair queuing and global load shedding
//! are exercised end-to-end. A poller thread watches `/api/metrics` and
//! stamps every sample with the index epoch it was served under, so the
//! report breaks latency, QPS, error mix and cube-cache hit rate down *per
//! epoch* — the serving-tier behavior across each live publish.
//!
//! After the stream drains, a deliberate overload burst — one scraper
//! identity opening one greedy connection per free worker, all expensive
//! queries — verifies that saturation degrades to cheap-path `503 +
//! Retry-After`, not latency collapse: with every connection sharing one
//! identity, the per-client cap structurally forces sheds whenever more
//! than the cap are served concurrently. Every burst request carries a
//! unique cache-busting `cb=` nonce, so each one is a cold render and
//! admission control — not the response cache — decides its fate. The
//! burst is sized to the worker pool so no connection waits in the accept
//! queue — measured shed latency is the shed path itself, not connection
//! queueing.
//!
//! A cache probe then measures the response cache directly on the quiet
//! server: a run of nonce-distinct cold misses, then a run of repeats of
//! one fixed key. Every repeat must be byte-identical to the first
//! render, and the hit-path p99 must sit strictly below the miss-path
//! p99 — the cache is a memcpy, not a second render.
//!
//! Finally an **open-loop** phase offers a *fixed arrival rate* to the
//! quiet server: dispatcher threads fire requests on an absolute schedule
//! regardless of completions, recording both response latency and how far
//! each dispatch slipped past its scheduled instant. Closed-loop users
//! self-throttle to the service rate and so under-report queueing delay;
//! the open-loop section of `BENCH_fig13.json` is the complementary
//! offered-load view.
//!
//! The run fails (non-zero exit) if any SLO gate is violated:
//!
//! 1. zero non-503 5xx anywhere;
//! 2. p99 of successful expensive+cheap requests in the main phase is
//!    under `FIG13_P99_BOUND_MS` (default 250);
//! 3. the overload burst observed at least one shed, and the p99 of its
//!    503 responses is under `FIG13_SHED_P99_BOUND_MS` (default 250 —
//!    generous for scheduling noise on saturated single-core CI boxes;
//!    a shed is written before any query work, so anything above this is
//!    a structural regression, not noise);
//! 4. ingest streamed every queued day and the epoch advanced, and the
//!    per-epoch report covers the full observed epoch span;
//! 5. the response cache recorded hits, every probe hit was byte-identical
//!    to its cold render, and the probe hit-path p99 is strictly below the
//!    miss-path p99.
//!
//! `BENCH_MEASURE_MS` selects smoke mode (< 100 ms budget: tiny dataset, 4
//! users, report to the scratch dir). Full mode (the default) runs 8 users
//! against a month-scale baseline and persists `BENCH_fig13.json` into the
//! current directory — the checked-in perf trajectory.

use rased_bench::bench_dir;
use rased_bench::harness::Harness;
use rased_bench::httpc::{json_uint_field, HttpClient};
use rased_bench::workload::{RequestKind, UserSession, Vocab, DEFAULT_SKEW};
use rased_core::{CubeSchema, IngestController, Rased, RasedConfig, ServerConfig};
use rased_dashboard::json::Json;
use rased_dashboard::DashboardServer;
use rased_osm_gen::{Dataset, DatasetConfig};
use rased_temporal::{Date, DateRange};
use std::collections::BTreeMap;
use std::error::Error;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload base seed: every user stream derives from it, so two runs of
/// the same binary issue byte-identical request sequences.
const SEED: u64 = 0x0F13_2026;

/// One measured request.
#[derive(Debug, Clone, Copy)]
struct Sample {
    epoch: u64,
    kind: RequestKind,
    status: u16,
    micros: u64,
}

/// Cumulative cache counters as read off `/api/metrics`: the cube cache
/// (query tier) and the response cache (serving tier).
#[derive(Debug, Clone, Copy, Default)]
struct CacheCounters {
    cube_hits: u64,
    cube_misses: u64,
    resp_hits: u64,
    resp_misses: u64,
}

/// One `/api/metrics` observation at an epoch transition.
#[derive(Debug, Clone, Copy)]
struct EpochSnap {
    epoch: u64,
    at: Instant,
    counters: CacheCounters,
}

struct Params {
    smoke: bool,
    base_days: i32,
    live_days: i32,
    users: u64,
    workers: usize,
    max_active_per_client: usize,
    shed_threshold: usize,
    burst_requests: usize,
    probe_misses: usize,
    probe_hits: usize,
    /// Open-loop phase: offered arrival rate (requests/second) …
    ol_rate: u64,
    /// … sustained for this long …
    ol_secs: Duration,
    /// … spread over this many dispatcher threads.
    ol_threads: usize,
}

impl Params {
    fn for_budget(budget: Duration) -> Params {
        let smoke = budget < Duration::from_millis(100);
        if smoke {
            Params {
                smoke,
                base_days: 8,
                live_days: 3,
                users: 4,
                // users + poller + final metrics fetch: every connection
                // gets a dedicated worker, none starves in the accept queue.
                workers: 6,
                max_active_per_client: 1,
                shed_threshold: 3,
                burst_requests: 6,
                probe_misses: 6,
                probe_hits: 40,
                ol_rate: 60,
                ol_secs: Duration::from_millis(250),
                ol_threads: 2,
            }
        } else {
            Params {
                smoke,
                base_days: 30,
                live_days: 6,
                users: 8,
                workers: 10,
                max_active_per_client: 1,
                shed_threshold: 6,
                burst_requests: 25,
                probe_misses: 12,
                probe_hits: 150,
                ol_rate: 150,
                ol_secs: Duration::from_secs(3),
                ol_threads: 4,
            }
        }
    }
}

fn env_millis(key: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default_ms),
    )
}

/// Nearest-rank percentile over an already-sorted µs vector.
fn pctl(sorted: &[u64], p: f64) -> u64 {
    rased_bench::harness::percentile(sorted, p).unwrap_or(0)
}

fn main() -> Result<(), Box<dyn Error>> {
    let budget = Harness::from_env().measure();
    let p = Params::for_budget(budget);
    // Full mode keeps the users running at least 2 s: on a fast release
    // build the live stream drains in well under a second, and a
    // trajectory point needs more than a handful of samples to be worth
    // comparing across commits.
    let budget = if p.smoke { budget } else { budget.max(Duration::from_secs(2)) };
    let p99_bound = env_millis("FIG13_P99_BOUND_MS", 250);
    let shed_p99_bound = env_millis("FIG13_SHED_P99_BOUND_MS", 250);

    let dir = bench_dir("fig13")?;
    for sub in ["base", "live", "system"] {
        let _ = std::fs::remove_dir_all(dir.join(sub));
    }
    let start = Date::new(2021, 1, 1)?;
    let mut base_cfg = DatasetConfig::small(SEED);
    base_cfg.range = DateRange::new(start, start.add_days(p.base_days - 1));
    let live_start = start.add_days(p.base_days);
    let mut live_cfg = base_cfg.clone();
    live_cfg.range = DateRange::new(live_start, live_start.add_days(p.live_days - 1));

    println!(
        "# Fig 13: {} users vs. {}-day baseline + {}-day live stream \
         (workers {}, per-client cap {}, shed threshold {})",
        p.users, p.base_days, p.live_days, p.workers, p.max_active_per_client, p.shed_threshold
    );
    let base = Dataset::generate(&dir.join("base"), base_cfg)?;
    Dataset::generate(&dir.join("live"), live_cfg)?;

    let schema =
        CubeSchema::new(base.config.world.n_countries, base.config.sim.n_road_types);
    let system = Arc::new(Rased::create(
        RasedConfig::new(dir.join("system")).with_schema(schema),
    )?);
    system.ingest_dataset(&base)?;

    // Vocabulary the simulated users browse: real codes/values from the
    // system under test, over the full (base + live) window.
    let vocab = Vocab {
        range: DateRange::new(start, live_start.add_days(p.live_days - 1)),
        countries: system
            .countries()
            .ids()
            .filter_map(|id| system.countries().code(id).map(str::to_string))
            .collect(),
        roads: system
            .roads()
            .ids()
            .filter_map(|id| system.roads().value(id).map(str::to_string))
            .collect(),
    };

    let config = ServerConfig {
        workers: p.workers,
        max_active_per_client: p.max_active_per_client,
        shed_threshold: p.shed_threshold,
        trust_forwarded_for: true,
        ..ServerConfig::default()
    };
    let ingest = Arc::new(IngestController::start(Arc::clone(&system))?);
    let server = Arc::new(
        DashboardServer::bind_with(Arc::clone(&system), "127.0.0.1:0", config)?
            .with_ingest(Arc::clone(&ingest), None),
    );
    let addr = server.addr()?;
    let stop_server = server.stop_handle();
    let serve_thread = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve())
    };

    // Metrics poller: tracks the live epoch (users stamp samples with it)
    // and records cumulative cube-cache counters at every transition.
    let epoch_now = Arc::new(AtomicU64::new(0));
    let stop_poll = Arc::new(AtomicBool::new(false));
    let poller = {
        let epoch_now = Arc::clone(&epoch_now);
        let stop = Arc::clone(&stop_poll);
        std::thread::spawn(move || poll_metrics(addr, &epoch_now, &stop))
    };

    // Main phase: closed-loop users run while the live dataset streams in.
    ingest.enqueue(PathBuf::from(dir.join("live"))).map_err(|_| "ingest queue full")?;
    let stop_users = Arc::new(AtomicBool::new(false));
    let t_main = Instant::now();
    let mut user_threads = Vec::new();
    for u in 0..p.users {
        let vocab = vocab.clone();
        let epoch_now = Arc::clone(&epoch_now);
        let stop = Arc::clone(&stop_users);
        user_threads
            .push(std::thread::spawn(move || run_user(addr, u, vocab, &epoch_now, &stop)));
    }

    // Run until the measurement budget is spent *and* the stream drained
    // (or a generous deadline, so a wedged writer fails loudly).
    let deadline = t_main + Duration::from_secs(180);
    loop {
        std::thread::sleep(Duration::from_millis(10));
        let s = ingest.status();
        let drained = s.phase == rased_core::IngestPhase::Idle && s.queued == 0;
        if (t_main.elapsed() >= budget && drained) || Instant::now() >= deadline {
            break;
        }
    }
    stop_users.store(true, Ordering::Relaxed);
    let mut samples: Vec<Sample> = Vec::new();
    for t in user_threads {
        samples.extend(t.join().map_err(|_| "user thread panicked")?);
    }
    let main_end = Instant::now();
    let main_secs = t_main.elapsed().as_secs_f64();

    // Overload burst: one scraper identity, one greedy connection per
    // worker left free by the poller, expensive queries only. Every
    // connection presents the same `X-Forwarded-For`, so once more than
    // `max_active_per_client` run concurrently the surplus *must* shed —
    // admission is exercised structurally, not by timing luck. Capping
    // connections at the free-worker count keeps every burst connection
    // on a dedicated worker: a shed's measured latency is then the cheap
    // 503 path, not time spent queued behind another keep-alive
    // connection waiting for a worker.
    // The heaviest legal query: full range, four group dimensions — long
    // enough that admitted executions overlap pending ones. Each request
    // appends a unique `cb=` nonce (ignored by the query parser, part of
    // the cache key), so every burst request is a cold render: the
    // response cache cannot absorb the overload that this phase exists
    // to measure.
    let burst_target = format!(
        "/api/analysis?start={}&end={}&group=country,road,update,day",
        vocab.range.start(),
        vocab.range.end()
    );
    let mut burst_threads = Vec::new();
    for t in 0..p.workers.saturating_sub(1) {
        let target = burst_target.clone();
        let epoch_now = Arc::clone(&epoch_now);
        let n = p.burst_requests;
        burst_threads.push(std::thread::spawn(move || {
            run_burst(addr, "198.51.100.99", &target, t, n, &epoch_now)
        }));
    }
    let mut burst: Vec<Sample> = Vec::new();
    for t in burst_threads {
        burst.extend(t.join().map_err(|_| "burst thread panicked")?);
    }

    // Cache probe on the now-quiet server: cold misses vs. repeat hits on
    // one fixed key, sequentially over one connection with its own
    // identity (admission never interferes).
    let probe = run_cache_probe(addr, &burst_target, p.probe_misses, p.probe_hits);

    // The server's own view of admission and the response cache, straight
    // off `/api/metrics` — the harness reads shed and hit counters from
    // the system under test itself. Fetched after the probe, so the
    // response-cache totals deterministically include the probe's hits.
    let (admission, resp_totals) = HttpClient::connect(addr)
        .and_then(|mut c| c.get("/api/metrics", &[]))
        .ok()
        .map(|resp| (admission_counters(&resp.body), resp_cache_counters(&resp.body)))
        .unwrap_or_default();

    // Open-loop phase: a fixed arrival rate offered to the quiet server.
    // Unlike the closed-loop users (whose request rate self-throttles to
    // the server's service rate, hiding queueing delay), the dispatchers
    // fire on an absolute schedule and record how far behind it they
    // fall — latency under *offered* load, the complementary view the
    // open-vs-closed-loop literature insists on.
    let open_loop = run_open_loop(addr, &vocab, p.ol_rate, p.ol_secs, p.ol_threads);

    stop_poll.store(true, Ordering::Relaxed);
    let (snaps, final_counters) = poller.join().map_err(|_| "poller thread panicked")?;
    let ingest_status = ingest.status();
    ingest.shutdown();
    stop_server.stop();
    serve_thread.join().map_err(|_| "serve thread panicked")??;

    let mut report = build_report(
        &p, budget, main_secs, main_end, &samples, &burst, &snaps, final_counters,
        ingest_status.days_published, system.index().epoch(),
    );
    report.admission = admission;
    report.resp_totals = resp_totals;
    report.probe = probe;
    report.open_loop = open_loop;
    print_report(&report);

    // Persist the trajectory point (full mode: into the working directory,
    // i.e. the repo checkout; smoke mode: scratch only).
    let out = if p.smoke {
        dir.join("BENCH_fig13.json")
    } else {
        PathBuf::from("BENCH_fig13.json")
    };
    std::fs::write(&out, report_json(&report, p99_bound, shed_p99_bound))?;
    println!("\n(report written to {})", out.display());

    enforce_slos(&report, p99_bound, shed_p99_bound)
}

// ---------------------------------------------------------------- threads

/// One simulated user: closed loop over a keep-alive connection,
/// reconnecting when the server rotates the connection out.
fn run_user(
    addr: SocketAddr,
    user: u64,
    vocab: Vocab,
    epoch_now: &AtomicU64,
    stop: &AtomicBool,
) -> Vec<Sample> {
    let mut session = UserSession::new(SEED, user, vocab, DEFAULT_SKEW);
    let fwd = format!("203.0.113.{user}");
    let headers = [("X-Forwarded-For", fwd.as_str())];
    let mut client = HttpClient::connect(addr).ok();
    let mut samples = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let req = session.next_request();
        let epoch = epoch_now.load(Ordering::Relaxed);
        let t0 = Instant::now();
        let status = match client.as_mut().map(|c| c.get(&req.target, &headers)) {
            Some(Ok(resp)) => Some(resp.status),
            _ => {
                // Dead or missing connection: reconnect and retry once.
                client = HttpClient::connect(addr).ok();
                match client.as_mut().map(|c| c.get(&req.target, &headers)) {
                    Some(Ok(resp)) => Some(resp.status),
                    _ => None,
                }
            }
        };
        if let Some(status) = status {
            samples.push(Sample {
                epoch,
                kind: req.kind,
                status,
                micros: t0.elapsed().as_micros() as u64,
            });
        } else {
            // Both attempts failed; don't spin on a dead server.
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    samples
}

/// One greedy overload connection: `n` expensive requests back-to-back,
/// presenting the shared scraper identity `client`. Every request gets a
/// unique `cb=` nonce (thread id × request index), so none of them can be
/// a response-cache hit — the burst measures admission, not the cache.
fn run_burst(
    addr: SocketAddr,
    client: &str,
    target: &str,
    thread: usize,
    n: usize,
    epoch_now: &AtomicU64,
) -> Vec<Sample> {
    let headers = [("X-Forwarded-For", client)];
    let mut client = HttpClient::connect(addr).ok();
    let mut samples = Vec::new();
    for i in 0..n {
        let busted = format!("{target}&cb=burst-{thread}-{i}");
        let epoch = epoch_now.load(Ordering::Relaxed);
        let t0 = Instant::now();
        let resp = match client.as_mut().map(|c| c.get(&busted, &headers)) {
            Some(Ok(resp)) => Some(resp),
            _ => {
                client = HttpClient::connect(addr).ok();
                match client.as_mut().map(|c| c.get(&busted, &headers)) {
                    Some(Ok(resp)) => Some(resp),
                    _ => None,
                }
            }
        };
        if let Some(resp) = resp {
            samples.push(Sample {
                epoch,
                kind: RequestKind::TileView,
                status: resp.status,
                micros: t0.elapsed().as_micros() as u64,
            });
        }
    }
    samples
}

/// Probe result: the two latency populations the cache SLO compares, plus
/// the byte-identity tally for the hit path.
#[derive(Debug, Default)]
struct ProbeResult {
    /// Sorted µs per cold render (each a nonce-distinct cache miss).
    miss_lat: Vec<u64>,
    /// Sorted µs per repeat of the one fixed probe key.
    hit_lat: Vec<u64>,
    /// How many repeats came back byte-identical to the first render.
    identical: usize,
}

/// Measure the response cache head-on, on the quiet post-burst server:
/// `misses` nonce-distinct cold renders of the heaviest legal query, then
/// `hits` repeats of the first one — which is cached by now, so every
/// repeat must be the very same bytes, served without rendering.
fn run_cache_probe(addr: SocketAddr, target: &str, misses: usize, hits: usize) -> ProbeResult {
    let headers = [("X-Forwarded-For", "203.0.113.200")];
    let mut client = HttpClient::connect(addr).ok();
    let mut get = move |path: &str| match client.as_mut().map(|c| c.get(path, &headers)) {
        Some(Ok(resp)) if resp.status == 200 => Some(resp),
        _ => {
            client = HttpClient::connect(addr).ok();
            match client.as_mut().map(|c| c.get(path, &headers)) {
                Some(Ok(resp)) if resp.status == 200 => Some(resp),
                _ => None,
            }
        }
    };
    let mut out = ProbeResult::default();
    let mut reference: Option<String> = None;
    for i in 0..misses {
        let path = format!("{target}&cb=probe-{i}");
        let t0 = Instant::now();
        if let Some(resp) = get(&path) {
            out.miss_lat.push(t0.elapsed().as_micros() as u64);
            if i == 0 {
                reference = Some(resp.body);
            }
        }
    }
    let fixed = format!("{target}&cb=probe-0");
    for _ in 0..hits {
        let t0 = Instant::now();
        if let Some(resp) = get(&fixed) {
            out.hit_lat.push(t0.elapsed().as_micros() as u64);
            if reference.as_deref() == Some(resp.body.as_str()) {
                out.identical += 1;
            }
        }
    }
    out.miss_lat.sort_unstable();
    out.hit_lat.sort_unstable();
    out
}

/// Open-loop phase result: what a fixed offered rate did to latency, and
/// how far the dispatchers fell behind their own schedule.
#[derive(Debug, Default)]
struct OpenLoopResult {
    offered_rps: u64,
    secs: f64,
    issued: usize,
    /// Sorted µs per 2xx response.
    ok_lat: Vec<u64>,
    shed_503: usize,
    status_4xx: usize,
    other_5xx: usize,
    /// Requests that never got a response (dead connection twice over).
    failed: usize,
    /// Sorted µs of schedule lag (actual dispatch − scheduled dispatch).
    lag: Vec<u64>,
}

/// Per-dispatcher tally, merged into [`OpenLoopResult`] at join.
#[derive(Debug, Default)]
struct OpenLoopShard {
    issued: usize,
    ok_lat: Vec<u64>,
    shed_503: usize,
    status_4xx: usize,
    other_5xx: usize,
    failed: usize,
    lag: Vec<u64>,
}

/// Drive the server open-loop: `threads` dispatchers share a target of
/// `rate` requests/second for `secs`, each firing on an absolute schedule
/// (`t0 + i·interval`) whether or not the previous request has returned.
/// This is the bounded-concurrency approximation of a true open loop —
/// one in-flight request per dispatcher — so when the server can't keep
/// up the honest signal is schedule *lag*, recorded per request, not a
/// silently reduced offered rate. Each dispatcher presents its own
/// identity: admission's per-client cap never structurally sheds it.
fn run_open_loop(
    addr: SocketAddr,
    vocab: &Vocab,
    rate: u64,
    secs: Duration,
    threads: usize,
) -> OpenLoopResult {
    let threads = threads.max(1);
    let mut handles = Vec::new();
    for t in 0..threads {
        let vocab = vocab.clone();
        handles.push(std::thread::spawn(move || {
            // Distinct stream per dispatcher, disjoint from the closed-loop
            // users' (user ids 0..users) so request sequences don't alias.
            let mut session = UserSession::new(SEED ^ 0x0F14, 1_000 + t as u64, vocab, DEFAULT_SKEW);
            let fwd = format!("203.0.113.{}", 210 + t);
            let headers = [("X-Forwarded-For", fwd.as_str())];
            let mut client = HttpClient::connect(addr).ok();
            let interval = Duration::from_secs_f64(threads as f64 / rate.max(1) as f64);
            let t0 = Instant::now();
            let mut next = t0;
            let mut shard = OpenLoopShard::default();
            while next.duration_since(t0) < secs {
                let now = Instant::now();
                if let Some(wait) = next.checked_duration_since(now) {
                    std::thread::sleep(wait);
                }
                shard.lag.push(Instant::now().saturating_duration_since(next).as_micros() as u64);
                let req = session.next_request();
                shard.issued += 1;
                let ts = Instant::now();
                let status = match client.as_mut().map(|c| c.get(&req.target, &headers)) {
                    Some(Ok(resp)) => Some(resp.status),
                    _ => {
                        client = HttpClient::connect(addr).ok();
                        match client.as_mut().map(|c| c.get(&req.target, &headers)) {
                            Some(Ok(resp)) => Some(resp.status),
                            _ => None,
                        }
                    }
                };
                match status {
                    Some(s @ 200..=299) => {
                        let _ = s;
                        shard.ok_lat.push(ts.elapsed().as_micros() as u64);
                    }
                    Some(503) => shard.shed_503 += 1,
                    Some(400..=499) => shard.status_4xx += 1,
                    Some(_) => shard.other_5xx += 1,
                    None => shard.failed += 1,
                }
                next += interval;
            }
            shard
        }));
    }
    let mut out = OpenLoopResult {
        offered_rps: rate,
        secs: secs.as_secs_f64(),
        ..OpenLoopResult::default()
    };
    for h in handles {
        if let Ok(shard) = h.join() {
            out.issued += shard.issued;
            out.ok_lat.extend(shard.ok_lat);
            out.shed_503 += shard.shed_503;
            out.status_4xx += shard.status_4xx;
            out.other_5xx += shard.other_5xx;
            out.failed += shard.failed;
            out.lag.extend(shard.lag);
        }
    }
    out.ok_lat.sort_unstable();
    out.lag.sort_unstable();
    out
}

/// Poll `/api/metrics`, publishing the live epoch and snapshotting the
/// cumulative cube- and response-cache counters at every epoch
/// transition. Returns the transition log and the final counters.
fn poll_metrics(
    addr: SocketAddr,
    epoch_now: &AtomicU64,
    stop: &AtomicBool,
) -> (Vec<EpochSnap>, CacheCounters) {
    let mut client = HttpClient::connect(addr).ok();
    let mut snaps: Vec<EpochSnap> = Vec::new();
    let mut counters = CacheCounters::default();
    let mut last_epoch = u64::MAX;
    while !stop.load(Ordering::Relaxed) {
        let body = match client.as_mut().map(|c| c.get("/api/metrics", &[])) {
            Some(Ok(resp)) if resp.status == 200 => Some(resp.body),
            _ => {
                client = HttpClient::connect(addr).ok();
                None
            }
        };
        if let Some(body) = body {
            let epoch = json_uint_field(&body, "epoch").unwrap_or(0);
            counters.cube_hits = json_uint_field(&body, "cube_hits").unwrap_or(counters.cube_hits);
            counters.cube_misses =
                json_uint_field(&body, "cube_misses").unwrap_or(counters.cube_misses);
            // Cumulative counters are monotone; `max` keeps a transient
            // parse miss from walking them backwards.
            let resp = resp_cache_counters(&body);
            counters.resp_hits = resp.resp_hits.max(counters.resp_hits);
            counters.resp_misses = resp.resp_misses.max(counters.resp_misses);
            epoch_now.store(epoch, Ordering::Relaxed);
            if epoch != last_epoch {
                snaps.push(EpochSnap { epoch, at: Instant::now(), counters });
                last_epoch = epoch;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    (snaps, counters)
}

// ----------------------------------------------------------------- report

/// Admission counters as served by `/api/metrics` (the section is nested,
/// so parse relative to its key).
#[derive(Debug, Default, Clone, Copy)]
struct AdmissionCounters {
    max_active: u64,
    shed_client_cap: u64,
    shed_overload: u64,
}

fn admission_counters(body: &str) -> AdmissionCounters {
    let section = body
        .find("\"admission\"")
        .and_then(|at| body.get(at..))
        .unwrap_or("");
    AdmissionCounters {
        max_active: json_uint_field(section, "max_active").unwrap_or(0),
        shed_client_cap: json_uint_field(section, "shed_client_cap").unwrap_or(0),
        shed_overload: json_uint_field(section, "shed_overload").unwrap_or(0),
    }
}

/// Response-cache hit/miss totals from the nested `"response_cache"`
/// section (its `hits`/`misses` keys are the section's first matches, so
/// parsing relative to the marker is exact).
fn resp_cache_counters(body: &str) -> CacheCounters {
    let section = body
        .find("\"response_cache\"")
        .and_then(|at| body.get(at..))
        .unwrap_or("");
    CacheCounters {
        resp_hits: json_uint_field(section, "hits").unwrap_or(0),
        resp_misses: json_uint_field(section, "misses").unwrap_or(0),
        ..CacheCounters::default()
    }
}

struct EpochRow {
    epoch: u64,
    samples: usize,
    qps: f64,
    p50: u64,
    p99: u64,
    p999: u64,
    shed_503: usize,
    other_err: usize,
    /// Cube-cache hit rate over this epoch's wall window (None when the
    /// poller skipped the epoch between polls, or nothing was served).
    hit_rate: Option<f64>,
    /// Response-cache hit rate over the same window (same None rules).
    resp_hit_rate: Option<f64>,
}

struct Report {
    smoke: bool,
    users: u64,
    workers: usize,
    live_days: i32,
    main_secs: f64,
    budget_ms: u64,
    requests: usize,
    qps: f64,
    ok_p50: u64,
    ok_p99: u64,
    ok_p999: u64,
    ok_max: u64,
    status_2xx: usize,
    status_4xx: usize,
    shed_503: usize,
    other_5xx: usize,
    kind_counts: Vec<(&'static str, usize)>,
    epochs: Vec<EpochRow>,
    epoch_start: u64,
    epoch_end: u64,
    days_published: u64,
    burst_requests: usize,
    burst_shed: usize,
    burst_ok: usize,
    burst_other_5xx: usize,
    burst_shed_p99: u64,
    burst_ok_p99: u64,
    admission: AdmissionCounters,
    /// Server-side response-cache totals after the probe.
    resp_totals: CacheCounters,
    probe: ProbeResult,
    open_loop: OpenLoopResult,
}

#[allow(clippy::too_many_arguments)]
fn build_report(
    p: &Params,
    budget: Duration,
    main_secs: f64,
    main_end: Instant,
    samples: &[Sample],
    burst: &[Sample],
    snaps: &[EpochSnap],
    final_counters: CacheCounters,
    days_published: u64,
    final_epoch: u64,
) -> Report {
    let mut ok: Vec<u64> = Vec::new();
    let (mut s2, mut s4, mut shed, mut s5) = (0usize, 0usize, 0usize, 0usize);
    let mut kinds: BTreeMap<&'static str, usize> = BTreeMap::new();
    for s in samples {
        *kinds.entry(s.kind.label()).or_insert(0) += 1;
        match s.status {
            200..=299 => {
                s2 += 1;
                ok.push(s.micros);
            }
            503 => shed += 1,
            400..=499 => s4 += 1,
            _ => s5 += 1,
        }
    }
    ok.sort_unstable();

    // Per-epoch bins over the observed span; epochs the poller skipped (or
    // that served nothing) still get a row, so the report provably covers
    // the whole span.
    let observed: Vec<u64> =
        samples.iter().map(|s| s.epoch).chain(snaps.iter().map(|s| s.epoch)).collect();
    let epoch_start = observed.iter().copied().min().unwrap_or(0);
    let epoch_end = observed.iter().copied().max().unwrap_or(0).max(final_epoch);
    let mut bins: BTreeMap<u64, Vec<&Sample>> = BTreeMap::new();
    for s in samples {
        bins.entry(s.epoch).or_default().push(s);
    }
    let mut epochs = Vec::new();
    for epoch in epoch_start..=epoch_end {
        let empty = Vec::new();
        let in_epoch = bins.get(&epoch).unwrap_or(&empty);
        let mut lat: Vec<u64> =
            in_epoch.iter().filter(|s| s.status < 300).map(|s| s.micros).collect();
        lat.sort_unstable();
        let shed_503 = in_epoch.iter().filter(|s| s.status == 503).count();
        let other_err =
            in_epoch.iter().filter(|s| s.status >= 300 && s.status != 503).count();
        // Wall window + cache-counter deltas from the poller transition log.
        // The last epoch has no successor transition: its window closes at
        // the end of the main phase (`main_end`), where sampling stopped.
        let found = snaps.iter().enumerate().find(|(_, s)| s.epoch == epoch);
        let (secs, hit_rate, resp_hit_rate) = match found {
            Some((i, cur)) => {
                let (end_t, end_c) = match snaps.get(i + 1) {
                    Some(next) => (Some(next.at), next.counters),
                    None => (Some(main_end), final_counters),
                };
                let secs = end_t.map(|t| t.duration_since(cur.at).as_secs_f64());
                let delta_rate = |h: u64, m: u64, h0: u64, m0: u64| {
                    let (dh, dm) = (h.saturating_sub(h0), m.saturating_sub(m0));
                    if dh + dm > 0 { Some(dh as f64 / (dh + dm) as f64) } else { None }
                };
                let cube = delta_rate(
                    end_c.cube_hits,
                    end_c.cube_misses,
                    cur.counters.cube_hits,
                    cur.counters.cube_misses,
                );
                let resp = delta_rate(
                    end_c.resp_hits,
                    end_c.resp_misses,
                    cur.counters.resp_hits,
                    cur.counters.resp_misses,
                );
                (secs, cube, resp)
            }
            None => (None, None, None),
        };
        let qps = match secs {
            Some(s) if s > 0.0 => in_epoch.len() as f64 / s,
            _ => 0.0,
        };
        epochs.push(EpochRow {
            epoch,
            samples: in_epoch.len(),
            qps,
            p50: pctl(&lat, 0.50),
            p99: pctl(&lat, 0.99),
            p999: pctl(&lat, 0.999),
            shed_503,
            other_err,
            hit_rate,
            resp_hit_rate,
        });
    }

    let mut burst_ok_lat: Vec<u64> = Vec::new();
    let mut burst_shed_lat: Vec<u64> = Vec::new();
    let mut burst_other_5xx = 0usize;
    for s in burst {
        match s.status {
            200..=299 => burst_ok_lat.push(s.micros),
            503 => burst_shed_lat.push(s.micros),
            st if st >= 500 => burst_other_5xx += 1,
            _ => {}
        }
    }
    burst_ok_lat.sort_unstable();
    burst_shed_lat.sort_unstable();

    Report {
        smoke: p.smoke,
        users: p.users,
        workers: p.workers,
        live_days: p.live_days,
        main_secs,
        budget_ms: budget.as_millis() as u64,
        requests: samples.len(),
        qps: if main_secs > 0.0 { samples.len() as f64 / main_secs } else { 0.0 },
        ok_p50: pctl(&ok, 0.50),
        ok_p99: pctl(&ok, 0.99),
        ok_p999: pctl(&ok, 0.999),
        ok_max: ok.last().copied().unwrap_or(0),
        status_2xx: s2,
        status_4xx: s4,
        shed_503: shed,
        other_5xx: s5,
        kind_counts: kinds.into_iter().collect(),
        epochs,
        epoch_start,
        epoch_end,
        days_published,
        burst_requests: burst.len(),
        burst_shed: burst_shed_lat.len(),
        burst_ok: burst_ok_lat.len(),
        burst_other_5xx,
        burst_shed_p99: pctl(&burst_shed_lat, 0.99),
        burst_ok_p99: pctl(&burst_ok_lat, 0.99),
        admission: AdmissionCounters::default(),
        resp_totals: CacheCounters::default(),
        probe: ProbeResult::default(),
        open_loop: OpenLoopResult::default(),
    }
}

fn fmt_us(us: u64) -> String {
    rased_bench::fmt_duration(Duration::from_micros(us))
}

fn print_report(r: &Report) {
    println!(
        "\n# main phase: {} requests in {:.2} s ({:.0} rps aggregate, {} users)",
        r.requests, r.main_secs, r.qps, r.users
    );
    println!(
        "  ok latency: p50 {} | p99 {} | p999 {} | max {}",
        fmt_us(r.ok_p50),
        fmt_us(r.ok_p99),
        fmt_us(r.ok_p999),
        fmt_us(r.ok_max)
    );
    println!(
        "  status mix: {} 2xx, {} 4xx, {} shed-503, {} other-5xx",
        r.status_2xx, r.status_4xx, r.shed_503, r.other_5xx
    );
    let kinds: Vec<String> =
        r.kind_counts.iter().map(|(k, n)| format!("{k} {n}")).collect();
    println!("  request mix: {}", kinds.join(", "));
    let pct = |h: Option<f64>| h.map(|h| format!("{:.1}%", h * 100.0)).unwrap_or_else(|| "-".into());
    println!(
        "\n{:>6} | {:>7} | {:>8} | {:>10} | {:>10} | {:>10} | {:>4} | {:>5} | {:>8} | {:>8}",
        "epoch", "samples", "qps", "p50", "p99", "p999", "503", "err", "cube-hit", "resp-hit"
    );
    println!("{}", "-".repeat(103));
    for e in &r.epochs {
        println!(
            "{:>6} | {:>7} | {:>8.1} | {:>10} | {:>10} | {:>10} | {:>4} | {:>5} | {:>8} | {:>8}",
            e.epoch,
            e.samples,
            e.qps,
            fmt_us(e.p50),
            fmt_us(e.p99),
            fmt_us(e.p999),
            e.shed_503,
            e.other_err,
            pct(e.hit_rate),
            pct(e.resp_hit_rate),
        );
    }
    println!(
        "\n# ingest: {} days published, epochs {} → {}",
        r.days_published, r.epoch_start, r.epoch_end
    );
    println!(
        "# overload burst: {} requests → {} served, {} shed (shed p99 {}, ok p99 {})",
        r.burst_requests,
        r.burst_ok,
        r.burst_shed,
        fmt_us(r.burst_shed_p99),
        fmt_us(r.burst_ok_p99)
    );
    println!(
        "# server admission counters: max_active {}, shed_client_cap {}, shed_overload {}",
        r.admission.max_active, r.admission.shed_client_cap, r.admission.shed_overload
    );
    println!(
        "# cache probe: {} cold misses (p99 {}), {} hits (p99 {}, {}/{} byte-identical)",
        r.probe.miss_lat.len(),
        fmt_us(pctl(&r.probe.miss_lat, 0.99)),
        r.probe.hit_lat.len(),
        fmt_us(pctl(&r.probe.hit_lat, 0.99)),
        r.probe.identical,
        r.probe.hit_lat.len(),
    );
    let total = r.resp_totals.resp_hits + r.resp_totals.resp_misses;
    println!(
        "# response cache totals: {} hits, {} misses ({})",
        r.resp_totals.resp_hits,
        r.resp_totals.resp_misses,
        if total > 0 {
            format!("{:.1}% hit rate", r.resp_totals.resp_hits as f64 / total as f64 * 100.0)
        } else {
            "no keyed requests".into()
        }
    );
    let ol = &r.open_loop;
    let achieved = if ol.secs > 0.0 { ol.issued as f64 / ol.secs } else { 0.0 };
    println!(
        "# open loop: offered {} rps for {:.2} s → {} issued ({:.0} rps achieved), \
         ok p50 {} p99 {}, {} shed, {} 4xx, {} other-5xx, {} failed, lag p99 {}",
        ol.offered_rps,
        ol.secs,
        ol.issued,
        achieved,
        fmt_us(pctl(&ol.ok_lat, 0.50)),
        fmt_us(pctl(&ol.ok_lat, 0.99)),
        ol.shed_503,
        ol.status_4xx,
        ol.other_5xx,
        ol.failed,
        fmt_us(pctl(&ol.lag, 0.99)),
    );
}

fn report_json(r: &Report, p99_bound: Duration, shed_bound: Duration) -> String {
    let mut j = Json::new();
    j.begin_object();
    j.kv_string("bench", "fig13_slo_load");
    j.kv_string("mode", if r.smoke { "smoke" } else { "full" });
    j.kv_uint("seed", SEED);
    j.kv_uint("users", r.users);
    j.kv_uint("workers", r.workers as u64);
    j.kv_uint("budget_ms", r.budget_ms);
    j.key("main_secs").number(r.main_secs);
    j.kv_uint("requests", r.requests as u64);
    j.key("qps").number(r.qps);
    j.key("latency_micros").begin_object();
    j.kv_uint("p50", r.ok_p50);
    j.kv_uint("p99", r.ok_p99);
    j.kv_uint("p999", r.ok_p999);
    j.kv_uint("max", r.ok_max);
    j.end_object();
    j.key("error_mix").begin_object();
    j.kv_uint("status_2xx", r.status_2xx as u64);
    j.kv_uint("status_4xx", r.status_4xx as u64);
    j.kv_uint("shed_503", r.shed_503 as u64);
    j.kv_uint("other_5xx", r.other_5xx as u64);
    j.end_object();
    j.key("request_mix").begin_object();
    for (k, n) in &r.kind_counts {
        j.kv_uint(k, *n as u64);
    }
    j.end_object();
    j.key("ingest").begin_object();
    j.kv_uint("days_published", r.days_published);
    j.kv_uint("epoch_start", r.epoch_start);
    j.kv_uint("epoch_end", r.epoch_end);
    j.end_object();
    j.key("epochs").begin_array();
    for e in &r.epochs {
        j.begin_object();
        j.kv_uint("epoch", e.epoch);
        j.kv_uint("samples", e.samples as u64);
        j.key("qps").number(e.qps);
        j.kv_uint("p50_micros", e.p50);
        j.kv_uint("p99_micros", e.p99);
        j.kv_uint("p999_micros", e.p999);
        j.kv_uint("shed_503", e.shed_503 as u64);
        j.kv_uint("other_err", e.other_err as u64);
        match e.hit_rate {
            Some(h) => j.key("cache_hit_rate").number(h),
            None => j.key("cache_hit_rate").null(),
        };
        match e.resp_hit_rate {
            Some(h) => j.key("resp_cache_hit_rate").number(h),
            None => j.key("resp_cache_hit_rate").null(),
        };
        j.end_object();
    }
    j.end_array();
    j.key("admission").begin_object();
    j.kv_uint("max_active", r.admission.max_active);
    j.kv_uint("shed_client_cap", r.admission.shed_client_cap);
    j.kv_uint("shed_overload", r.admission.shed_overload);
    j.end_object();
    j.key("overload").begin_object();
    j.kv_uint("requests", r.burst_requests as u64);
    j.kv_uint("served", r.burst_ok as u64);
    j.kv_uint("shed_503", r.burst_shed as u64);
    j.kv_uint("other_5xx", r.burst_other_5xx as u64);
    j.kv_uint("shed_p99_micros", r.burst_shed_p99);
    j.kv_uint("ok_p99_micros", r.burst_ok_p99);
    j.end_object();
    j.key("response_cache").begin_object();
    j.kv_uint("hits", r.resp_totals.resp_hits);
    j.kv_uint("misses", r.resp_totals.resp_misses);
    j.kv_uint("probe_misses", r.probe.miss_lat.len() as u64);
    j.kv_uint("probe_hits", r.probe.hit_lat.len() as u64);
    j.kv_uint("probe_identical", r.probe.identical as u64);
    j.kv_uint("probe_miss_p50_micros", pctl(&r.probe.miss_lat, 0.50));
    j.kv_uint("probe_miss_p99_micros", pctl(&r.probe.miss_lat, 0.99));
    j.kv_uint("probe_hit_p50_micros", pctl(&r.probe.hit_lat, 0.50));
    j.kv_uint("probe_hit_p99_micros", pctl(&r.probe.hit_lat, 0.99));
    j.end_object();
    // Appended after every pre-existing section: the perf-gate parser
    // (`bench_compare`) reads the *first* `qps`/`p99` in the document, so
    // new trailing sections never perturb the compared point.
    let ol = &r.open_loop;
    j.key("open_loop").begin_object();
    j.kv_uint("offered_rps", ol.offered_rps);
    j.key("duration_secs").number(ol.secs);
    j.kv_uint("issued", ol.issued as u64);
    j.key("achieved_rps").number(if ol.secs > 0.0 { ol.issued as f64 / ol.secs } else { 0.0 });
    j.kv_uint("ok", ol.ok_lat.len() as u64);
    j.kv_uint("ok_p50_micros", pctl(&ol.ok_lat, 0.50));
    j.kv_uint("ok_p99_micros", pctl(&ol.ok_lat, 0.99));
    j.kv_uint("shed_503", ol.shed_503 as u64);
    j.kv_uint("status_4xx", ol.status_4xx as u64);
    j.kv_uint("other_5xx", ol.other_5xx as u64);
    j.kv_uint("failed", ol.failed as u64);
    j.kv_uint("lag_p50_micros", pctl(&ol.lag, 0.50));
    j.kv_uint("lag_p99_micros", pctl(&ol.lag, 0.99));
    j.end_object();
    j.key("slo").begin_object();
    j.kv_uint("p99_bound_micros", p99_bound.as_micros() as u64);
    j.kv_uint("shed_p99_bound_micros", shed_bound.as_micros() as u64);
    j.end_object();
    j.end_object();
    let mut s = j.finish();
    s.push('\n');
    s
}

/// The gate: print every violated SLO and exit non-zero on any.
fn enforce_slos(
    r: &Report,
    p99_bound: Duration,
    shed_bound: Duration,
) -> Result<(), Box<dyn Error>> {
    let mut violations: Vec<String> = Vec::new();
    let p99_bound_us = p99_bound.as_micros() as u64;
    let shed_bound_us = shed_bound.as_micros() as u64;
    if r.other_5xx > 0 || r.burst_other_5xx > 0 || r.open_loop.other_5xx > 0 {
        violations.push(format!(
            "non-503 5xx responses: {} main, {} burst, {} open-loop (want 0)",
            r.other_5xx, r.burst_other_5xx, r.open_loop.other_5xx
        ));
    }
    if r.open_loop.issued == 0 {
        violations.push("open-loop phase issued no requests".to_string());
    } else if r.open_loop.ok_lat.is_empty() {
        violations.push("open-loop phase got no successful responses".to_string());
    }
    if r.status_2xx == 0 {
        violations.push("no successful requests in the main phase".to_string());
    }
    if r.ok_p99 > p99_bound_us {
        violations.push(format!(
            "main-phase p99 {} exceeds bound {}",
            fmt_us(r.ok_p99),
            fmt_us(p99_bound_us)
        ));
    }
    if r.burst_shed == 0 {
        violations.push("overload burst produced no shed 503s — admission control inert".into());
    } else if r.burst_shed_p99 > shed_bound_us {
        violations.push(format!(
            "shed-path p99 {} exceeds bound {} — 503s are not cheap",
            fmt_us(r.burst_shed_p99),
            fmt_us(shed_bound_us)
        ));
    }
    // Gate 5: the response cache must be live, correct, and fast.
    if r.resp_totals.resp_hits == 0 {
        violations.push("response cache recorded no hits over the whole run".into());
    }
    if r.probe.hit_lat.is_empty() {
        violations.push("cache probe recorded no hit samples".into());
    } else {
        if r.probe.identical != r.probe.hit_lat.len() {
            violations.push(format!(
                "cache hits not byte-identical to the cold render: {} of {}",
                r.probe.identical,
                r.probe.hit_lat.len()
            ));
        }
        let (hit_p99, miss_p99) = (pctl(&r.probe.hit_lat, 0.99), pctl(&r.probe.miss_lat, 0.99));
        if hit_p99 >= miss_p99 {
            violations.push(format!(
                "cache hit-path p99 {} not below miss-path p99 {}",
                fmt_us(hit_p99),
                fmt_us(miss_p99)
            ));
        }
    }
    if r.days_published < r.live_days as u64 {
        violations.push(format!(
            "ingest published {} of {} queued days",
            r.days_published, r.live_days
        ));
    }
    if r.epoch_end <= r.epoch_start {
        violations.push("epoch never advanced during the run".to_string());
    }
    let span = (r.epoch_end - r.epoch_start + 1) as usize;
    if r.epochs.len() != span {
        violations.push(format!(
            "per-epoch report covers {} of {} epochs in span",
            r.epochs.len(),
            span
        ));
    }
    if violations.is_empty() {
        println!("\nSLO gates: all passed");
        Ok(())
    } else {
        for v in &violations {
            println!("SLO VIOLATION: {v}");
        }
        Err(format!("{} SLO gate(s) failed", violations.len()).into())
    }
}
