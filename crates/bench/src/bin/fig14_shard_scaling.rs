//! **Figure 14 — Region-sharded cube store scaling.**
//!
//! The sharded-store counterpart of Fig 11: the same workload built at
//! 1 / 2 / 4 / 8 country shards, measured along the two query shapes the
//! scatter-gather planner distinguishes:
//!
//! * **country-filtered** (the dashboard's dominant tile query) — the
//!   planner's predicate pushdown must route it to the *owning* shard
//!   only. The harness verifies this structurally, not statistically: it
//!   runs one filtered query cold and asserts from the per-shard page-file
//!   counters that every physical read landed on the owning shard — any
//!   read on another shard is a routing bug and fails the run.
//! * **fan-out** (no country filter, grouped by country) — scattered to
//!   every shard and merged. Reported both sequentially (`threads=1`) and
//!   on a pool sized to the shard count; the ratio is the fan-out speedup
//!   the parallel scatter-gather executor delivers at that shard count.
//!
//! Latency is [`QueryStats::modeled_response`] — wall time plus
//! critical-path modeled I/O (only the worker with the most disk fetches
//! is charged), same accounting as Fig 11, so the speedup is deterministic
//! rather than scheduling noise. Warm rows re-open with the paper cube
//! cache at 256 slots per shard (total memory grows with the shard count
//! — a real cost of the architecture, kept out of the throughput axis),
//! warm it, and report real wall-clock QPS.
//!
//! The run fails (non-zero exit) if a country-filtered query touches a
//! non-owning shard, or the fan-out speedup at 4 shards is not measurable
//! (> 1.5× — modeled I/O makes the ideal 4×).
//!
//! `BENCH_MEASURE_MS` selects smoke mode (< 100 ms budget: 1-year
//! workload, 3 windows).
//!
//! [`QueryStats::modeled_response`]: rased_query::QueryStats::modeled_response

use rased_bench::harness::Harness;
use rased_bench::{bench_dir, build_sharded_index, fmt_duration, one_cell_query, random_windows, Workload};
use rased_core::{
    shard_for, AnalysisQuery, CacheConfig, CacheStrategy, GroupDim, IoCostModel, QueryEngine,
    ShardedIndex,
};
use rased_osm_model::CountryId;
use rased_temporal::DateRange;
use std::error::Error;
use std::time::{Duration, Instant};

const SHARDS: [usize; 4] = [1, 2, 4, 8];
const WINDOW_DAYS: u32 = 360;

/// The probe country for the filtered shape (always present: every
/// workload schema has country 0).
const PROBE: CountryId = CountryId(0);

fn main() -> Result<(), Box<dyn Error>> {
    let budget = Harness::from_env().measure();
    let smoke = budget < Duration::from_millis(100);
    let (w, queries) = if smoke {
        (Workload::years(1, 40, 0xF14A), 3)
    } else {
        (Workload::years(2, 150, 0xF14A), 20)
    };
    let windows = random_windows(&w, WINDOW_DAYS, queries, 0x14AA);
    let dir = bench_dir("fig14")?;
    println!(
        "# Fig 14: {}-day workload at {:?} country shards ({} windows of {} days)",
        w.range.len_days(),
        SHARDS,
        windows.len(),
        WINDOW_DAYS
    );

    println!(
        "\n{:>6} | {:>11} | {:>13} | {:>11} | {:>11} | {:>7} | {:>9} | {:>9}",
        "shards", "cf cold", "cf reads o/x", "fan seq", "fan par", "speedup", "cf QPS", "fan QPS"
    );
    println!("{}", "-".repeat(96));

    let mut speedup_at_4 = 0.0f64;
    let mut routing_ok = true;
    for n in SHARDS {
        let shard_dir = dir.join(format!("shards-{n}"));
        // Cold store: no cube cache, modeled HDD — every planned cube is
        // a physical (modeled) read.
        let cold = build_sharded_index(
            &shard_dir,
            n,
            &w,
            4,
            CacheConfig::disabled(),
            IoCostModel::hdd(),
        )?;

        // Routing audit: one filtered query, then read each shard's page
        // -file counters. Reads must be confined to the owning shard.
        let owner = shard_for(PROBE, n);
        let before: Vec<u64> =
            cold.stores().iter().map(|s| s.file().stats().snapshot().reads).collect();
        let probe_window = windows.first().copied().unwrap_or(DateRange::new(
            w.range.start(),
            w.range.end(),
        ));
        QueryEngine::over_shards(&cold).with_threads(n).execute(&one_cell_query(probe_window))?;
        let mut owned_reads = 0u64;
        let mut foreign_reads = 0u64;
        for (i, s) in cold.stores().iter().enumerate() {
            let delta = s
                .file()
                .stats()
                .snapshot()
                .reads
                .saturating_sub(before.get(i).copied().unwrap_or(0));
            if i == owner {
                owned_reads += delta;
            } else {
                foreign_reads += delta;
            }
        }
        if foreign_reads > 0 || owned_reads == 0 {
            routing_ok = false;
        }

        // Country-filtered cold latency (pool sized to the shard count —
        // routing makes the pool irrelevant here, which is the point).
        let cf_cold = avg_response(&cold, n, &windows, |r| one_cell_query(r))?;
        // Fan-out: sequential vs scatter-gather pool.
        let fan = |r: DateRange| AnalysisQuery::over(r).group(GroupDim::Country);
        let fan_seq = avg_response(&cold, 1, &windows, fan)?;
        let fan_par = avg_response(&cold, n, &windows, fan)?;
        let speedup = fan_seq.as_secs_f64() / fan_par.as_secs_f64().max(f64::EPSILON);
        if n == 4 {
            speedup_at_4 = speedup;
        }
        drop(cold);

        // Warm store: paper cube cache at 256 slots *per shard* (the
        // store divides the config budget by shard count, so the total
        // scales with n — cache memory is a real cost of sharding, noted
        // in the caption; a fixed total budget instead fragments to
        // nothing at 8 shards and measures thrash, not the executor).
        let warm = ShardedIndex::open(
            &shard_dir,
            n,
            w.schema,
            4,
            CacheConfig { slots: 256 * n, strategy: CacheStrategy::paper_default() },
            IoCostModel::hdd(),
        )?;
        warm.warm_cache()?;
        let cf_qps = wall_qps(&warm, n, &windows, budget, |r| one_cell_query(r))?;
        let fan_qps = wall_qps(&warm, n, &windows, budget, fan)?;

        println!(
            "{:>6} | {:>11} | {:>6}/{:<6} | {:>11} | {:>11} | {:>6.2}x | {:>9.0} | {:>9.0}",
            n,
            fmt_duration(cf_cold),
            owned_reads,
            foreign_reads,
            fmt_duration(fan_seq),
            fmt_duration(fan_par),
            speedup,
            cf_qps,
            fan_qps
        );
    }

    println!(
        "\n(cf = filtered to country {}; reads o/x = physical reads on owning/other shards \
         for one cold filtered query; fan speedup = sequential / pool-of-#shards, modeled \
         critical-path I/O; warm QPS = wall clock at 256 cache slots per shard — total \
         cache memory grows with shard count)",
        PROBE.0
    );

    let mut failures = Vec::new();
    if !routing_ok {
        failures.push(
            "country-filtered query read pages on a non-owning shard (routing broken)".to_string(),
        );
    }
    if speedup_at_4 <= 1.5 {
        failures.push(format!(
            "fan-out speedup at 4 shards is {speedup_at_4:.2}x (want > 1.5x)"
        ));
    }
    if failures.is_empty() {
        println!("fig14 gates: all passed");
        Ok(())
    } else {
        for f in &failures {
            println!("FIG14 GATE VIOLATION: {f}");
        }
        Err(format!("{} fig14 gate(s) failed", failures.len()).into())
    }
}

/// Mean modeled response of `windows` under `mk` at `threads`.
fn avg_response(
    index: &ShardedIndex,
    threads: usize,
    windows: &[DateRange],
    mk: impl Fn(DateRange) -> AnalysisQuery,
) -> Result<Duration, Box<dyn Error>> {
    let engine = QueryEngine::over_shards(index).with_threads(threads);
    let mut total = Duration::ZERO;
    for range in windows {
        total += engine.execute(&mk(*range))?.stats.modeled_response();
    }
    Ok(total / windows.len().max(1) as u32)
}

/// Real wall-clock queries/second over the window set, re-run until the
/// measurement budget is spent.
fn wall_qps(
    index: &ShardedIndex,
    threads: usize,
    windows: &[DateRange],
    budget: Duration,
    mk: impl Fn(DateRange) -> AnalysisQuery,
) -> Result<f64, Box<dyn Error>> {
    let engine = QueryEngine::over_shards(index).with_threads(threads);
    let started = Instant::now();
    let mut ran = 0u64;
    while started.elapsed() < budget {
        for range in windows {
            engine.execute(&mk(*range))?;
            ran += 1;
        }
    }
    Ok(ran as f64 / started.elapsed().as_secs_f64().max(f64::EPSILON))
}
