//! **Figure 7 — Setting RASED cache size.**
//!
//! Paper setup: query response time while varying the cache from 128 MB to
//! 4 GB (32 … 1000 cubes), for workloads with 1 / 3 / 6 / 12-month windows.
//! Expected shape: time falls as the cache grows, with a saturation point
//! that moves right for longer windows (~512 MB for 3-month queries, ~1 GB
//! for 6-month, ~2 GB for 12-month).
//!
//! Cache size is expressed in *slots* (1 slot = 1 cube); the paper's byte
//! sizes divide by its ~4 MB cube. Queries favor recent windows (the
//! premise of the recency cache, §VII-A).

use rased_bench::{bench_dir, fmt_duration, one_cell_query, Workload};
use rased_core::{CacheConfig, CacheStrategy, IoCostModel, QueryEngine, TemporalIndex};
use rased_osm_gen::rng::Rng;
use rased_temporal::DateRange;
use std::error::Error;
use std::time::Duration;

fn main() -> Result<(), Box<dyn Error>> {
    let w = Workload::years(3, 400, 0xF167);
    let dir = bench_dir("fig7")?;
    println!("# Fig 7: building a 3-year index ({} days)...", w.range.len_days());
    let index = rased_bench::build_index(
        &dir.join("index"),
        &w,
        4,
        CacheConfig::disabled(),
        IoCostModel::hdd(),
    )?;
    drop(index);

    let cache_slots = [32usize, 64, 128, 256, 500, 1000];
    let window_months = [1u32, 3, 6, 12];
    let queries_per_point = 100;

    println!(
        "\n{:>12} | {}",
        "cache slots",
        window_months.iter().map(|m| format!("{m:>3}-month")).collect::<Vec<_>>().join(" | ")
    );
    println!("{}", "-".repeat(14 + window_months.len() * 11));

    for &slots in &cache_slots {
        let index = TemporalIndex::open(
            &dir.join("index"),
            w.schema,
            4,
            CacheConfig { slots, strategy: CacheStrategy::paper_default() },
            IoCostModel::hdd(),
        )?;
        index.warm_cache()?;
        let engine = QueryEngine::new(&index);

        let mut cells = Vec::new();
        for &months in &window_months {
            // Recent-biased windows: end within the last year of coverage.
            let mut rng = Rng::new(slots as u64 * 31 + months as u64);
            let mut total = Duration::ZERO;
            for _ in 0..queries_per_point {
                let span = months * 30;
                let back = rng.below(365 - span.min(364) as u64 + 1) as i32;
                let end = w.range.end().add_days(-back);
                let range = DateRange::new(end.add_days(-(span as i32 - 1)), end);
                let result = engine.execute(&one_cell_query(range))?;
                total += result.stats.modeled_total();
            }
            cells.push(total / queries_per_point);
        }
        println!(
            "{:>12} | {}",
            slots,
            cells.iter().map(|c| format!("{:>9}", fmt_duration(*c))).collect::<Vec<_>>().join(" | ")
        );
    }
    println!(
        "\n(avg of {queries_per_point} one-cell queries per point; modeled disk: 5 ms seek + 150 MB/s)"
    );
    Ok(())
}
