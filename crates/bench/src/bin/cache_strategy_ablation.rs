//! **Cache-strategy ablation (DESIGN.md §4.2): recency preload vs. LRU.**
//!
//! The paper's cache (§VII-A) statically preloads the most recent cubes per
//! level with (α, β, γ, θ) quotas. A natural alternative is a global LRU
//! that admits on access. This harness runs the same recent-biased query
//! stream against both at several cache sizes.
//!
//! Expected: the recency preload wins at small sizes on a recent-biased
//! stream (it never wastes slots on one-off old cubes); LRU catches up as
//! capacity grows and adapts better when the stream drifts to old windows.

use rased_bench::{bench_dir, fmt_duration, one_cell_query, Workload};
use rased_core::{CacheConfig, CacheStrategy, IoCostModel, QueryEngine, TemporalIndex};
use rased_osm_gen::rng::Rng;
use rased_temporal::DateRange;
use std::error::Error;
use std::time::Duration;

fn run_stream(
    index: &TemporalIndex,
    w: &Workload,
    recent_bias: bool,
    queries: usize,
    seed: u64,
) -> Result<Duration, Box<dyn Error>> {
    index.warm_cache()?;
    let engine = QueryEngine::new(index);
    let mut rng = Rng::new(seed);
    let mut total = Duration::ZERO;
    for _ in 0..queries {
        let span = 30 + rng.below(150) as i32;
        let max_back = if recent_bias { 300 } else { w.range.len_days() as u64 - span as u64 };
        let back = rng.below(max_back.max(1)) as i32;
        let end = w.range.end().add_days(-back);
        let range = DateRange::new(end.add_days(-(span - 1)).max(w.range.start()), end);
        total += engine.execute(&one_cell_query(range))?.stats.modeled_total();
    }
    Ok(total / queries as u32)
}

fn main() -> Result<(), Box<dyn Error>> {
    let w = Workload::years(4, 250, 0xCA5E);
    let dir = bench_dir("cache-strategy")?;
    println!("# building a 4-year index...");
    rased_bench::build_index(&dir.join("index"), &w, 4, CacheConfig::disabled(), IoCostModel::hdd())?;

    let queries = 150;
    println!(
        "\n{:>6} | {:>24} | {:>24}",
        "slots", "recent-biased stream", "uniform stream"
    );
    println!("{:>6} | {:>11} {:>12} | {:>11} {:>12}", "", "recency", "LRU", "recency", "LRU");
    println!("{}", "-".repeat(62));
    for slots in [16usize, 64, 128, 256, 512] {
        let mut cells = Vec::new();
        for recent_bias in [true, false] {
            for strategy in [CacheStrategy::paper_default(), CacheStrategy::Lru] {
                let index = TemporalIndex::open(
                    &dir.join("index"),
                    w.schema,
                    4,
                    CacheConfig { slots, strategy },
                    IoCostModel::hdd(),
                )?;
                cells.push(run_stream(&index, &w, recent_bias, queries, slots as u64)?);
            }
        }
        let &[bias_rec, bias_lru, uni_rec, uni_lru] = cells.as_slice() else { continue };
        println!(
            "{:>6} | {:>11} {:>12} | {:>11} {:>12}",
            slots,
            fmt_duration(bias_rec),
            fmt_duration(bias_lru),
            fmt_duration(uni_rec),
            fmt_duration(uni_lru),
        );
    }
    println!("\n(avg modeled time of {queries} one-cell queries; LRU warms up within the stream)");
    Ok(())
}
