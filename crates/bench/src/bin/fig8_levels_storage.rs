//! **Figure 8 — Setting RASED number of levels.**
//!
//! Paper setup: storage needed per number of hierarchy levels (1 = flat
//! daily, 4 = + weekly/monthly/yearly), varying the covered period from 1
//! to 16 years. Expected shape: extra levels are almost free — the paper
//! quotes a 4-level index at ~1.15× the flat index's storage for 16 years.
//!
//! The index is actually built (real maintenance path, real pages); a
//! smaller 20 × 10 schema keeps the 20 builds quick — storage *ratios*
//! depend only on cube counts, not cube size.

use rased_bench::{bench_dir, Workload};
use rased_core::{CacheConfig, CubeSchema, IoCostModel};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let years_axis = [1i32, 2, 4, 8, 16];
    let levels_axis = [1u8, 2, 3, 4];
    let dir = bench_dir("fig8")?;

    println!(
        "{:>6} | {} | 4-level / flat",
        "years",
        levels_axis.iter().map(|l| format!("{l}-level (MB)")).collect::<Vec<_>>().join(" | ")
    );
    println!("{}", "-".repeat(8 + levels_axis.len() * 15 + 17));

    for &years in &years_axis {
        let mut w = Workload::years(years, 50, 0xF168);
        w.schema = CubeSchema::new(20, 10);
        let mut sizes = Vec::new();
        for &levels in &levels_axis {
            let index = rased_bench::build_index(
                &dir.join(format!("y{years}-l{levels}")),
                &w,
                levels,
                CacheConfig::disabled(),
                IoCostModel::free(),
            )?;
            sizes.push(index.storage_bytes());
        }
        let (flat, four) = (sizes.first().copied().unwrap_or(1), sizes.last().copied().unwrap_or(0));
        let ratio = four as f64 / flat as f64;
        println!(
            "{:>6} | {} | {:>14.3}",
            years,
            sizes
                .iter()
                .map(|b| format!("{:>12.2}", *b as f64 / (1 << 20) as f64))
                .collect::<Vec<_>>()
                .join(" | "),
            ratio,
        );
    }
    println!("\n(paper: 4-level ≈ 1.15 × flat at 16 years; cube pages actually written)");
    Ok(())
}
