//! **Figure 15 — Viewport drill-down: spatial blocks vs grid scan.**
//!
//! The spatial-hierarchy counterpart of Fig 14: the same workload served
//! through the two viewport execution paths the lattice planner
//! distinguishes:
//!
//! * **banked** — the viewport's interior cells are answered from the
//!   spatial bank's pre-aggregated (cell × period) blocks, rolled up to
//!   months wherever the lattice plan allows. Measured cold (freshly
//!   opened bank, empty block cache) and warm (same viewports repeated).
//! * **grid scan** (ablation) — no bank: the whole box is one exhaustive
//!   warehouse region scan, the flat baseline a country-sharded store
//!   without a spatial hierarchy is stuck with.
//!
//! Viewports are Zipf-skewed over grid cells — map traffic concentrates
//! on popular regions, which is exactly what the bank's block LRU
//! exploits — and each is a 2 × 2 cell-aligned box so the cover is pure
//! interior (the boundary-scan path is exercised by the query crate's
//! dettest suite, not re-measured here).
//!
//! Gates (all structural/deterministic — wall time is reported but only
//! gated in full mode where it dwarfs scheduling noise):
//!
//! * banked and grid-scan rows must be byte-identical per viewport;
//! * a single-band viewport must confine physical reads to the owning
//!   band — verified from per-shard page-file counters, any foreign read
//!   fails the run;
//! * aligned viewports must be block-served end to end (no scan-fallback
//!   rows) and touch fewer blocks than the range has days (the month
//!   roll-up must actually engage);
//! * the warm pass must serve the majority of blocks from the bank's
//!   cache;
//! * warm banked modeled response must beat the warm grid scan's. Both
//!   sides charge the same HDD cost model — block fetches on the banked
//!   path, heap-page pool misses on the scan path (the engine snapshots
//!   the warehouse's physical I/O counters around every spatial query) —
//!   so the comparison is deterministic, not wall-clock noise.
//!
//! `BENCH_MEASURE_MS` selects smoke mode (< 100 ms budget: 1-year
//! workload, 4 viewports). Writes `BENCH_fig15.json` (scratch dir in
//! smoke, repo cwd in full).

use rased_bench::harness::Harness;
use rased_bench::{bench_dir, fmt_duration, RecordSynth, Workload};
use rased_core::{
    AnalysisQuery, CacheConfig, DataCube, IoCostModel, QueryEngine, SpatialBank, TemporalIndex,
    Warehouse,
};
use rased_dashboard::json::Json;
use rased_geo::{BBox, CellId, GridSpec};
use rased_osm_gen::rng::{Rng, Zipf};
use rased_query::{QueryResult, SpatialExec};
use rased_temporal::DateRange;
use std::error::Error;
use std::path::PathBuf;
use std::time::Duration;

const SEED: u64 = 0xF15A;
/// Grid shape: 8 × 16 cells over the world extent, 4 longitude bands
/// (columns 0–3 → band 0, … 12–15 → band 3), matching the default
/// `SpatialConfig` sharding rule.
const GRID_ROWS: u32 = 8;
const GRID_COLS: u32 = 16;
const BANDS: usize = 4;
/// Viewport time windows (days). Long enough that complete months sit
/// inside every window, so the lattice roll-up has something to win.
const WINDOW_DAYS: u32 = 180;

struct PassTotals {
    response: Duration,
    wall: Duration,
    blocks_disk: u64,
    blocks_cache: u64,
    scan_rows: u64,
}

impl PassTotals {
    fn new() -> PassTotals {
        PassTotals {
            response: Duration::ZERO,
            wall: Duration::ZERO,
            blocks_disk: 0,
            blocks_cache: 0,
            scan_rows: 0,
        }
    }

    fn add(&mut self, r: &QueryResult) {
        self.response += r.stats.modeled_response();
        self.wall += r.stats.wall;
        self.blocks_disk += r.stats.blocks_from_disk as u64;
        self.blocks_cache += r.stats.blocks_from_cache as u64;
        self.scan_rows += r.stats.scan_rows;
    }

    fn avg_response(&self, n: usize) -> Duration {
        self.response / n.max(1) as u32
    }

    fn avg_wall(&self, n: usize) -> Duration {
        self.wall / n.max(1) as u32
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let budget = Harness::from_env().measure();
    let smoke = budget < Duration::from_millis(100);
    let (w, viewports, cache_blocks) = if smoke {
        (Workload::years(1, 40, SEED), 4usize, 512usize)
    } else {
        (Workload::years(2, 150, SEED), 20usize, 4096usize)
    };
    let grid = GridSpec::new(BBox::world(), GRID_ROWS, GRID_COLS);
    let dir = bench_dir("fig15")?;
    println!(
        "# Fig 15: {}-day workload, {}x{} grid / {} bands, {} Zipf viewports of {} days",
        w.range.len_days(),
        GRID_ROWS,
        GRID_COLS,
        BANDS,
        viewports,
        WINDOW_DAYS
    );

    // Build: temporal index + sample warehouse + spatial bank, all fed
    // the same synthetic records day by day (the ingest pipeline's
    // publish ordering, minus the dashboard).
    let idx = TemporalIndex::create(
        &dir.join("index"),
        w.schema,
        4,
        CacheConfig::disabled(),
        IoCostModel::hdd(),
    )?;
    // 16-page (128 KiB) buffer pool: big enough to matter, small enough
    // that neither mode's heap fits in memory — the flat baseline pays
    // real (modeled) page reads, which is the regime being compared.
    let wh = Warehouse::create(&dir.join("wh"), IoCostModel::hdd(), 16)?;
    {
        let bank = SpatialBank::create(
            &dir.join("bank"),
            BANDS,
            grid,
            w.schema,
            IoCostModel::hdd(),
            cache_blocks,
        )?;
        let mut synth = RecordSynth::new(&w);
        let mut day = w.range.start();
        while day <= w.range.end() {
            let recs = synth.day(day);
            let cube = DataCube::from_records(w.schema, recs.iter())?;
            idx.ingest_day(day, &cube)?;
            for r in &recs {
                wh.insert(r)?;
            }
            bank.publish_day(day, &recs)?;
            day = day.succ();
        }
        wh.flush()?;
        bank.sync()?;
        // Drop: the build warmed the block cache; measurement wants a
        // cold one.
    }
    let bank = SpatialBank::open(
        &dir.join("bank"),
        BANDS,
        grid,
        w.schema,
        IoCostModel::hdd(),
        cache_blocks,
    )?;

    // Zipf-skewed viewports: popular cells get revisited, which is what
    // the block cache is for. Each viewport is the aligned union of a
    // 2x2 cell block; the window start is uniform over the workload.
    let mut rng = Rng::new(SEED ^ 0x15AA);
    let zipf = Zipf::new((GRID_ROWS * GRID_COLS) as usize, 1.1);
    let mut boxes = Vec::with_capacity(viewports);
    for _ in 0..viewports {
        let idx_cell = zipf.sample(&mut rng);
        let row = ((idx_cell as u32 / GRID_COLS).min(GRID_ROWS - 2)) as u16;
        let col = ((idx_cell as u32 % GRID_COLS).min(GRID_COLS - 2)) as u16;
        let b = cell_union(&grid, row, col, row + 1, col + 1);
        let lo = w.range.start().add_days(
            rng.below((w.range.len_days() as u64).saturating_sub(WINDOW_DAYS as u64).max(1)) as i32,
        );
        boxes.push((b, DateRange::new(lo, lo.add_days(WINDOW_DAYS as i32 - 1))));
    }

    // Confinement probe (cold bank, before anything else touches it):
    // a full-column viewport on column 5 routes every interior cell to
    // band 1; any physical read on another band is a routing bug.
    let probe_col: u16 = 5;
    let owner = bank.shard_of(CellId { row: 0, col: probe_col });
    let before: Vec<u64> =
        bank.stores().iter().map(|s| s.file().stats().snapshot().reads).collect();
    let probe_box = cell_union(&grid, 0, probe_col, (GRID_ROWS - 1) as u16, probe_col);
    let probe_q = AnalysisQuery::over(w.range).within(probe_box);
    let probe = QueryEngine::new(&idx)
        .with_spatial(SpatialExec::banked(&wh, &bank))
        .execute(&probe_q)?;
    let mut owned_reads = 0u64;
    let mut foreign_reads = 0u64;
    for (i, s) in bank.stores().iter().enumerate() {
        let delta = s
            .file()
            .stats()
            .snapshot()
            .reads
            .saturating_sub(before.get(i).copied().unwrap_or(0));
        if i == owner {
            owned_reads += delta;
        } else {
            foreign_reads += delta;
        }
    }

    // Cold pass → warm pass (same viewports, same order) → grid-scan
    // ablation. Rows are collected once per pass and compared.
    let banked_engine = QueryEngine::new(&idx).with_spatial(SpatialExec::banked(&wh, &bank));
    let scan_engine = QueryEngine::new(&idx).with_spatial(SpatialExec::scan_only(&wh));
    let mk = |(b, r): &(BBox, DateRange)| AnalysisQuery::over(*r).within(*b);

    let mut cold = PassTotals::new();
    let mut cold_rows = Vec::with_capacity(viewports);
    for v in &boxes {
        let res = banked_engine.execute(&mk(v))?;
        cold.add(&res);
        cold_rows.push(res.rows);
    }
    let mut warm = PassTotals::new();
    for v in &boxes {
        warm.add(&banked_engine.execute(&mk(v))?);
    }
    let (hits, misses) = bank.cache_counters();
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    let mut scan = PassTotals::new();
    let mut scan_mismatch = 0usize;
    for (v, want) in boxes.iter().zip(&cold_rows) {
        let res = scan_engine.execute(&mk(v))?;
        scan.add(&res);
        if &res.rows != want {
            scan_mismatch += 1;
        }
    }
    // Warm grid scan: the warehouse page pool is as warm as it gets.
    let mut scan_warm = PassTotals::new();
    for v in &boxes {
        scan_warm.add(&scan_engine.execute(&mk(v))?);
    }

    println!(
        "\n{:>12} | {:>11} | {:>11} | {:>8} | {:>8} | {:>10}",
        "pass", "avg resp", "avg wall", "blk disk", "blk hit", "scan rows"
    );
    println!("{}", "-".repeat(74));
    for (name, p) in
        [("banked cold", &cold), ("banked warm", &warm), ("scan cold", &scan), ("scan warm", &scan_warm)]
    {
        println!(
            "{:>12} | {:>11} | {:>11} | {:>8} | {:>8} | {:>10}",
            name,
            fmt_duration(p.avg_response(viewports)),
            fmt_duration(p.avg_wall(viewports)),
            p.blocks_disk,
            p.blocks_cache,
            p.scan_rows
        );
    }
    let warm_speedup = scan_warm.avg_response(viewports).as_secs_f64()
        / warm.avg_response(viewports).as_secs_f64().max(f64::EPSILON);
    println!(
        "\n(confinement: {owned_reads} reads on owning band {owner}, {foreign_reads} foreign; \
         block cache {hits} hits / {misses} misses = {:.0}% hit rate; warm modeled speedup vs \
         grid scan {warm_speedup:.1}x — both paths charge the same HDD model, blocks vs \
         heap-page pool misses)",
        hit_rate * 100.0
    );

    let range_days = WINDOW_DAYS as u64;
    let mut failures = Vec::new();
    if scan_mismatch > 0 {
        failures.push(format!(
            "banked and grid-scan rows diverge on {scan_mismatch}/{viewports} viewports"
        ));
    }
    if foreign_reads > 0 || owned_reads == 0 {
        failures.push(format!(
            "single-band viewport reads not confined to owning band (owned {owned_reads}, foreign {foreign_reads})"
        ));
    }
    if probe.stats.blocks_from_disk + probe.stats.blocks_from_cache == 0 {
        failures.push("confinement probe was not served from blocks".to_string());
    }
    if cold.scan_rows + warm.scan_rows > 0 {
        failures.push(format!(
            "aligned viewports fell back to warehouse scans ({} rows)",
            cold.scan_rows + warm.scan_rows
        ));
    }
    if cold.blocks_disk + cold.blocks_cache >= range_days * viewports as u64 * 4 {
        failures.push(format!(
            "month roll-up never engaged: {} blocks for {} cell-days",
            cold.blocks_disk + cold.blocks_cache,
            range_days * viewports as u64 * 4
        ));
    }
    if scan.scan_rows == 0 {
        failures.push("grid-scan ablation scanned no rows (viewports empty?)".to_string());
    }
    if warm.blocks_cache <= warm.blocks_disk || hits == 0 {
        failures.push(format!(
            "warm pass not cache-served (cache {} vs disk {}, {hits} hits)",
            warm.blocks_cache, warm.blocks_disk
        ));
    }
    if warm.avg_response(viewports) >= scan_warm.avg_response(viewports) {
        failures.push(format!(
            "warm banked response {} did not beat warm grid scan {}",
            fmt_duration(warm.avg_response(viewports)),
            fmt_duration(scan_warm.avg_response(viewports))
        ));
    }

    let out = if smoke { dir.join("BENCH_fig15.json") } else { PathBuf::from("BENCH_fig15.json") };
    std::fs::write(
        &out,
        report_json(
            smoke, &w, viewports, &cold, &warm, &scan, &scan_warm, hits, misses, owner,
            owned_reads, foreign_reads, warm_speedup,
        ),
    )?;
    println!("wrote {}", out.display());

    if failures.is_empty() {
        println!("fig15 gates: all passed");
        Ok(())
    } else {
        for f in &failures {
            println!("FIG15 GATE VIOLATION: {f}");
        }
        Err(format!("{} fig15 gate(s) failed", failures.len()).into())
    }
}

/// The aligned bbox spanning cells (r0,c0)..=(r1,c1) inclusive.
fn cell_union(grid: &GridSpec, r0: u16, c0: u16, r1: u16, c1: u16) -> BBox {
    // lint: allow(panic, "rows/cols are in-grid by construction")
    let a = grid.cell_bbox(CellId { row: r0, col: c0 }).expect("in grid");
    // lint: allow(panic, "rows/cols are in-grid by construction")
    let b = grid.cell_bbox(CellId { row: r1, col: c1 }).expect("in grid");
    a.union(&b)
}

#[allow(clippy::too_many_arguments)]
fn report_json(
    smoke: bool,
    w: &Workload,
    viewports: usize,
    cold: &PassTotals,
    warm: &PassTotals,
    scan: &PassTotals,
    scan_warm: &PassTotals,
    hits: u64,
    misses: u64,
    owner: usize,
    owned_reads: u64,
    foreign_reads: u64,
    warm_speedup: f64,
) -> String {
    let micros = |d: Duration| d.as_micros() as u64;
    let mut j = Json::new();
    j.begin_object();
    j.kv_string("bench", "fig15_viewport");
    j.kv_string("mode", if smoke { "smoke" } else { "full" });
    j.kv_uint("seed", SEED);
    j.kv_uint("days", w.range.len_days() as u64);
    j.kv_uint("viewports", viewports as u64);
    j.key("grid").begin_object();
    j.kv_uint("rows", GRID_ROWS as u64);
    j.kv_uint("cols", GRID_COLS as u64);
    j.kv_uint("bands", BANDS as u64);
    j.end_object();
    for (name, p) in
        [("banked_cold", cold), ("banked_warm", warm), ("scan_cold", scan), ("scan_warm", scan_warm)]
    {
        j.key(name).begin_object();
        j.kv_uint("avg_response_micros", micros(p.avg_response(viewports)));
        j.kv_uint("avg_wall_micros", micros(p.avg_wall(viewports)));
        j.kv_uint("blocks_from_disk", p.blocks_disk);
        j.kv_uint("blocks_from_cache", p.blocks_cache);
        j.kv_uint("scan_rows", p.scan_rows);
        j.end_object();
    }
    j.key("block_cache").begin_object();
    j.kv_uint("hits", hits);
    j.kv_uint("misses", misses);
    j.key("hit_rate").number(hits as f64 / (hits + misses).max(1) as f64);
    j.end_object();
    j.key("confinement").begin_object();
    j.kv_uint("owning_band", owner as u64);
    j.kv_uint("owned_reads", owned_reads);
    j.kv_uint("foreign_reads", foreign_reads);
    j.end_object();
    j.key("warm_speedup_vs_scan").number(warm_speedup);
    j.end_object();
    j.finish()
}
