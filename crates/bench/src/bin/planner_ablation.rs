//! **Planner ablation (DESIGN.md §4.1): exact DP vs. greedy coarsest-first.**
//!
//! The paper describes level optimization informally; we implement an exact
//! dynamic program and keep a greedy planner for comparison. This harness
//! measures the disk-fetch gap between the two across window lengths and
//! cache states.

use rased_bench::{bench_dir, random_windows, Workload};
use rased_core::{CacheConfig, CacheStrategy, IoCostModel, TemporalIndex};
use rased_index::{with_planner, PlannerKind};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let w = Workload::years(4, 150, 0xAB1A);
    let dir = bench_dir("planner")?;
    println!("# building a 4-year index...");
    {
        rased_bench::build_index(
            &dir.join("index"),
            &w,
            4,
            CacheConfig::disabled(),
            IoCostModel::free(),
        )?;
    }
    let index = TemporalIndex::open(
        &dir.join("index"),
        w.schema,
        4,
        CacheConfig { slots: 120, strategy: CacheStrategy::paper_default() },
        IoCostModel::free(),
    )?;
    index.warm_cache()?;

    println!("\n{:>8} | {:>12} | {:>12} | {:>10}", "window", "DP disk", "greedy disk", "greedy/DP");
    println!("{}", "-".repeat(52));
    for days in [14u32, 46, 90, 180, 400, 1000] {
        let mut dp_total = 0usize;
        let mut greedy_total = 0usize;
        for range in random_windows(&w, days, 100, days as u64) {
            with_planner(&index, |planner| {
                dp_total += planner.plan(range, PlannerKind::ExactDp).disk_fetches();
                greedy_total += planner.plan(range, PlannerKind::Greedy).disk_fetches();
            });
        }
        println!(
            "{:>7}d | {:>12.2} | {:>12.2} | {:>9.3}x",
            days,
            dp_total as f64 / 100.0,
            greedy_total as f64 / 100.0,
            greedy_total as f64 / dp_total.max(1) as f64,
        );
    }
    println!("\n(avg disk cubes per query over 100 random windows; cache 120 slots warmed)");
    Ok(())
}
