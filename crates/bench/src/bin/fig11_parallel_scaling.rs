//! **Figure 11 — Parallel query execution scaling.**
//!
//! Multi-year one-cell queries at 1 / 2 / 4 / 8 executor threads, over a
//! cold cube cache (every planned cube faults in from the modeled disk)
//! and a warmed recency cache. Reported latency is
//! [`QueryStats::modeled_response`]: wall time plus the *critical-path*
//! modeled I/O, i.e. only the worker with the most disk fetches is
//! charged — overlapped fetches on other workers are free, which is the
//! whole point of the parallel executor. Warm throughput is real wall
//! clock (queries/second).
//!
//! A single-flight stampede microbench closes the figure: 8 threads miss
//! the same buffer-pool page at once and the pool must perform exactly one
//! physical read.
//!
//! `BENCH_MEASURE_MS` shrinks both the workload and the per-point query
//! count for CI smoke runs (default 200 ms).
//!
//! [`QueryStats::modeled_response`]: rased_query::QueryStats::modeled_response

use rased_bench::{bench_dir, build_index, fmt_duration, one_cell_query, random_windows, Workload};
use rased_bench::harness::Harness;
use rased_core::{CacheConfig, CacheStrategy, IoCostModel, QueryEngine, TemporalIndex};
use rased_storage::sync::Mutex;
use rased_storage::{BufferPool, PageFile};
use std::error::Error;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const WINDOW_DAYS: u32 = 540;

fn main() -> Result<(), Box<dyn Error>> {
    let budget = Harness::from_env().measure();
    let smoke = budget < Duration::from_millis(100);
    let (w, queries) = if smoke {
        (Workload::years(2, 60, 0xF11A), 3)
    } else {
        (Workload::years(3, 200, 0xF11A), 30)
    };

    let dir = bench_dir("fig11")?;
    println!("# Fig 11: building a {}-day index...", w.range.len_days());
    drop(build_index(&dir.join("index"), &w, 4, CacheConfig::disabled(), IoCostModel::hdd())?);

    let windows = random_windows(&w, WINDOW_DAYS, queries, 0x11AA);

    println!(
        "\n{:>8} | {:>12} | {:>12} | {:>12} | {:>10}",
        "threads", "cold", "warm", "cold speedup", "warm QPS"
    );
    println!("{}", "-".repeat(68));

    let mut cold_base = Duration::ZERO;
    for t in THREADS {
        // Cold: no cube cache, so every planned cube faults from disk.
        let cold_index = TemporalIndex::open(
            &dir.join("index"),
            w.schema,
            4,
            CacheConfig::disabled(),
            IoCostModel::hdd(),
        )?;
        let cold = avg_response(&cold_index, t, &windows)?;
        if t == 1 {
            cold_base = cold;
        }

        // Warm: recency cache sized to hold the hot tail of the windows.
        let warm_index = TemporalIndex::open(
            &dir.join("index"),
            w.schema,
            4,
            CacheConfig { slots: 256, strategy: CacheStrategy::paper_default() },
            IoCostModel::hdd(),
        )?;
        warm_index.warm_cache()?;
        let warm = avg_response(&warm_index, t, &windows)?;

        // Warm throughput in real wall-clock time, re-running the window
        // set until the measurement budget is spent.
        let engine = QueryEngine::new(&warm_index).with_threads(t);
        let started = Instant::now();
        let mut ran = 0u64;
        while started.elapsed() < budget {
            for range in &windows {
                engine.execute(&one_cell_query(*range))?;
                ran += 1;
            }
        }
        let qps = ran as f64 / started.elapsed().as_secs_f64();

        let speedup = cold_base.as_secs_f64() / cold.as_secs_f64().max(f64::EPSILON);
        println!(
            "{:>8} | {:>12} | {:>12} | {:>11.2}x | {:>10.0}",
            t,
            fmt_duration(cold),
            fmt_duration(warm),
            speedup,
            qps
        );
    }

    stampede_microbench(&dir)?;
    println!(
        "\n(avg of {queries} one-cell {WINDOW_DAYS}-day queries per point; modeled disk: \
         5 ms seek + 150 MB/s; latency = wall + critical-path modeled I/O)"
    );
    Ok(())
}

/// Mean modeled response time of the window set at `threads`.
fn avg_response(
    index: &TemporalIndex,
    threads: usize,
    windows: &[rased_temporal::DateRange],
) -> Result<Duration, Box<dyn Error>> {
    let engine = QueryEngine::new(index).with_threads(threads);
    let mut total = Duration::ZERO;
    for range in windows {
        total += engine.execute(&one_cell_query(*range))?.stats.modeled_response();
    }
    Ok(total / windows.len().max(1) as u32)
}

/// 8 threads miss the same page simultaneously; single-flight must
/// coalesce them into exactly one physical read.
fn stampede_microbench(dir: &std::path::Path) -> Result<(), Box<dyn Error>> {
    const STAMPEDE: usize = 8;
    let file = Arc::new(PageFile::create(&dir.join("stampede.pages"), 4096, IoCostModel::hdd())?);
    let page = file.append_page(&vec![7u8; 4096])?;
    let pool = BufferPool::new(Arc::clone(&file), 4);

    let barrier = Barrier::new(STAMPEDE);
    let failures: Mutex<Vec<String>> = Mutex::new_named(Vec::new(), "bench.stampede_failures");
    std::thread::scope(|s| {
        for _ in 0..STAMPEDE {
            s.spawn(|| {
                barrier.wait();
                if let Err(e) = pool.read(page) {
                    failures.lock().push(e.to_string());
                }
            });
        }
    });
    for e in failures.lock().drain(..) {
        return Err(e.into());
    }

    let reads = file.stats().snapshot().reads;
    println!(
        "\nsingle-flight stampede: {STAMPEDE} concurrent misses on {page:?} -> {reads} physical \
         read{} ({})",
        if reads == 1 { "" } else { "s" },
        if reads == 1 { "coalesced" } else { "NOT coalesced" }
    );
    Ok(())
}
