//! **§VI-A maintenance I/O accounting.**
//!
//! Paper claim: "Normally, we would need only one I/O for daily cubes. If
//! it is the end of the week/month/year, we would need up to 8, 6, and 13
//! I/Os, respectively."
//!
//! This harness replays one year of daily ingests and tallies per-day cube
//! operations (reads + writes) by boundary kind. Our counts run one higher
//! than the paper's at week boundaries because we re-read the day's own
//! cube instead of keeping it pinned — the bound, not the constant, is the
//! claim.

use rased_bench::{bench_dir, RecordSynth, Workload};
use rased_core::{CacheConfig, DataCube, IoCostModel, TemporalIndex};

fn main() {
    let w = Workload::years(1, 200, 0x3A10);
    let dir = bench_dir("maintenance");
    let _ = std::fs::remove_dir_all(dir.join("index"));
    let index = TemporalIndex::create(
        &dir.join("index"),
        w.schema,
        4,
        CacheConfig::disabled(),
        IoCostModel::free(),
    )
    .expect("create");
    let mut synth = RecordSynth::new(&w);

    // Per-level incremental ops: (total ops, occurrences, max).
    let mut levels = [(0usize, 0usize, 0usize); 4];
    for day in w.range.days() {
        let cube = DataCube::from_records(w.schema, &synth.day(day)).expect("cube");
        let report = index.ingest_day(day, &cube).expect("ingest");
        for (slot, &ops) in levels.iter_mut().zip(report.ops_by_level.iter()) {
            if ops > 0 {
                slot.0 += ops;
                slot.1 += 1;
                slot.2 = slot.2.max(ops);
            }
        }
    }

    let names = ["daily write", "weekly roll-up", "monthly roll-up", "yearly roll-up"];
    let bounds = [
        "1",
        "≤ 8 (paper reads 6 prior days; we re-read all 7)",
        "≤ 6 (paper: 4 weeks + ≤3 days; our Sunday-contained weeks leave ≤6 edge days)",
        "13 (12 month reads + 1 write)",
    ];
    println!("operation       | occurrences | avg ops | max ops | paper");
    println!("----------------+-------------+---------+---------+------");
    for i in 0..4 {
        let (ops, n, max) = levels[i];
        let avg = if n == 0 { 0.0 } else { ops as f64 / n as f64 };
        println!("{:<15} | {:>11} | {:>7.2} | {:>7} | {}", names[i], n, avg, max, bounds[i]);
    }
    assert_eq!(levels[0], (levels[0].1, levels[0].1, 1), "daily ingest is exactly one write");
    assert!(levels[1].2 <= 8, "weekly roll-up bounded by 7 reads + 1 write");
    assert!(levels[2].2 <= 15, "monthly roll-up bounded by ≤4 weeks + ≤6 edge days + ≤4 reads + 1 write");
    assert!(levels[3].2 <= 13, "yearly roll-up bounded by 12 reads + 1 write");
}
