//! **§VI-A maintenance I/O accounting.**
//!
//! Paper claim: "Normally, we would need only one I/O for daily cubes. If
//! it is the end of the week/month/year, we would need up to 8, 6, and 13
//! I/Os, respectively."
//!
//! This harness replays one year of daily ingests and tallies per-day cube
//! operations (reads + writes) by boundary kind. Our counts run one higher
//! than the paper's at week boundaries because we re-read the day's own
//! cube instead of keeping it pinned — the bound, not the constant, is the
//! claim.

use rased_bench::{bench_dir, RecordSynth, Workload};
use rased_core::{CacheConfig, DataCube, IoCostModel, TemporalIndex};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let w = Workload::years(1, 200, 0x3A10);
    let dir = bench_dir("maintenance")?;
    let _ = std::fs::remove_dir_all(dir.join("index"));
    let index = TemporalIndex::create(
        &dir.join("index"),
        w.schema,
        4,
        CacheConfig::disabled(),
        IoCostModel::free(),
    )?;
    let mut synth = RecordSynth::new(&w);

    // Per-level incremental ops: (total ops, occurrences, max).
    let mut levels = [(0usize, 0usize, 0usize); 4];
    for day in w.range.days() {
        let cube = DataCube::from_records(w.schema, &synth.day(day))?;
        let report = index.ingest_day(day, &cube)?;
        for (slot, &ops) in levels.iter_mut().zip(report.ops_by_level.iter()) {
            if ops > 0 {
                slot.0 += ops;
                slot.1 += 1;
                slot.2 = slot.2.max(ops);
            }
        }
    }

    let names = ["daily write", "weekly roll-up", "monthly roll-up", "yearly roll-up"];
    let bounds = [
        "1",
        "≤ 8 (paper reads 6 prior days; we re-read all 7)",
        "≤ 6 (paper: 4 weeks + ≤3 days; our Sunday-contained weeks leave ≤6 edge days)",
        "13 (12 month reads + 1 write)",
    ];
    println!("operation       | occurrences | avg ops | max ops | paper");
    println!("----------------+-------------+---------+---------+------");
    for ((name, bound), &(ops, n, max)) in names.iter().zip(&bounds).zip(&levels) {
        let avg = if n == 0 { 0.0 } else { ops as f64 / n as f64 };
        println!("{:<15} | {:>11} | {:>7.2} | {:>7} | {}", name, n, avg, max, bound);
    }
    let [daily, weekly, monthly, yearly] = levels;
    assert_eq!(daily, (daily.1, daily.1, 1), "daily ingest is exactly one write");
    assert!(weekly.2 <= 8, "weekly roll-up bounded by 7 reads + 1 write");
    assert!(monthly.2 <= 15, "monthly roll-up bounded by ≤4 weeks + ≤6 edge days + ≤4 reads + 1 write");
    assert!(yearly.2 <= 13, "yearly roll-up bounded by 12 reads + 1 write");
    Ok(())
}
