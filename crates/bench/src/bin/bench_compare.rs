//! **Cross-commit bench regression gate.**
//!
//! `BENCH_fig13.json` is committed after every meaningful serving-tier
//! change, so its git history is a performance trajectory. This gate loads
//! the two most recent committed points and fails when the newer one
//! regresses beyond tolerance:
//!
//! * throughput: `qps` dropping by more than `BENCH_CMP_QPS_DROP`
//!   (default 0.50, i.e. a >50% collapse) fails;
//! * latency: full-run `latency_micros.p99` growing by more than
//!   `BENCH_CMP_P99_X` (default 3.0×) fails.
//!
//! The tolerances are deliberately loose: the harness runs on whatever
//! hardware CI happens to get, so only order-of-magnitude collapses — a
//! serialized event loop, an inert cache — should trip it, not noise.
//! With fewer than two committed points the gate prints a notice and
//! passes; a brand-new repo has no trajectory to defend.

use rased_bench::httpc::{json_float_field, json_uint_field};
use std::error::Error;
use std::process::Command;

const BENCH_FILE: &str = "BENCH_fig13.json";

/// One trajectory point: the metrics we gate on, plus provenance.
#[derive(Debug, Clone, PartialEq)]
struct Point {
    commit: String,
    qps: f64,
    p99_micros: u64,
}

fn env_frac(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Run `git` with `args`, returning stdout on success.
fn git(args: &[&str]) -> Result<String, Box<dyn Error>> {
    let out = Command::new("git").args(args).output()?;
    if !out.status.success() {
        return Err(format!(
            "git {} failed: {}",
            args.join(" "),
            String::from_utf8_lossy(&out.stderr).trim()
        )
        .into());
    }
    Ok(String::from_utf8_lossy(&out.stdout).into_owned())
}

/// Parse the gated metrics out of one `BENCH_fig13.json` document. The
/// first `"qps"` in the document is the full-run aggregate and the first
/// `"p99"` is `latency_micros.p99` (per-epoch rows use `p99_micros`), so
/// the same field scan the load harness uses works here too.
fn parse_point(commit: &str, body: &str) -> Result<Point, Box<dyn Error>> {
    let qps = json_float_field(body, "qps")
        .ok_or_else(|| format!("{commit}: no \"qps\" field in {BENCH_FILE}"))?;
    let p99_micros = json_uint_field(body, "p99")
        .ok_or_else(|| format!("{commit}: no \"p99\" field in {BENCH_FILE}"))?;
    Ok(Point { commit: commit.to_string(), qps, p99_micros })
}

/// The two most recent committed trajectory points, newest first.
/// `None` when the history holds fewer than two.
fn trajectory() -> Result<Option<(Point, Point)>, Box<dyn Error>> {
    let log = git(&["log", "-n", "2", "--format=%h", "--", BENCH_FILE])?;
    let commits: Vec<&str> = log.split_whitespace().collect();
    let [newer, older] = commits.as_slice() else { return Ok(None) };
    let new_body = git(&["show", &format!("{newer}:{BENCH_FILE}")])?;
    let old_body = git(&["show", &format!("{older}:{BENCH_FILE}")])?;
    Ok(Some((parse_point(newer, &new_body)?, parse_point(older, &old_body)?)))
}

/// Compare `new` against `old`; returns the list of violations (empty =
/// pass). Pure so the gate's arithmetic is unit-testable without git.
fn violations(old: &Point, new: &Point, qps_drop: f64, p99_x: f64) -> Vec<String> {
    let mut v = Vec::new();
    let qps_floor = old.qps * (1.0 - qps_drop);
    if new.qps < qps_floor {
        v.push(format!(
            "qps regression: {:.0} -> {:.0} (floor {:.0} = {:.0}% of {})",
            old.qps,
            new.qps,
            qps_floor,
            (1.0 - qps_drop) * 100.0,
            old.commit,
        ));
    }
    let p99_ceil = (old.p99_micros as f64 * p99_x).ceil() as u64;
    if new.p99_micros > p99_ceil {
        v.push(format!(
            "p99 regression: {}us -> {}us (ceiling {}us = {p99_x}x of {})",
            old.p99_micros, new.p99_micros, p99_ceil, old.commit,
        ));
    }
    v
}

fn main() -> Result<(), Box<dyn Error>> {
    let qps_drop = env_frac("BENCH_CMP_QPS_DROP", 0.50);
    let p99_x = env_frac("BENCH_CMP_P99_X", 3.0);

    let Some((new, old)) = trajectory()? else {
        println!("bench-compare: fewer than two committed {BENCH_FILE} points; nothing to gate");
        return Ok(());
    };
    println!(
        "bench-compare: {} (qps {:.0}, p99 {}us) vs {} (qps {:.0}, p99 {}us)",
        new.commit, new.qps, new.p99_micros, old.commit, old.qps, old.p99_micros,
    );
    let found = violations(&old, &new, qps_drop, p99_x);
    if found.is_empty() {
        println!("bench-compare: OK (tolerance: qps drop <= {:.0}%, p99 <= {p99_x}x)", qps_drop * 100.0);
        return Ok(());
    }
    for v in &found {
        eprintln!("bench-compare: {v}");
    }
    Err(format!("{} regression(s) beyond tolerance", found.len()).into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(commit: &str, qps: f64, p99: u64) -> Point {
        Point { commit: commit.into(), qps, p99_micros: p99 }
    }

    #[test]
    fn within_tolerance_passes() {
        let old = pt("aaa", 40_000.0, 2_000);
        let new = pt("bbb", 25_000.0, 5_500);
        assert!(violations(&old, &new, 0.50, 3.0).is_empty());
    }

    #[test]
    fn qps_collapse_fails() {
        let old = pt("aaa", 40_000.0, 2_000);
        let new = pt("bbb", 15_000.0, 2_000);
        let v = violations(&old, &new, 0.50, 3.0);
        assert_eq!(v.len(), 1);
        assert!(v.first().is_some_and(|m| m.contains("qps regression")));
    }

    #[test]
    fn p99_blowup_fails() {
        let old = pt("aaa", 40_000.0, 2_000);
        let new = pt("bbb", 40_000.0, 6_001);
        let v = violations(&old, &new, 0.50, 3.0);
        assert_eq!(v.len(), 1);
        assert!(v.first().is_some_and(|m| m.contains("p99 regression")));
    }

    #[test]
    fn both_axes_reported() {
        let old = pt("aaa", 40_000.0, 2_000);
        let new = pt("bbb", 1_000.0, 60_000);
        assert_eq!(violations(&old, &new, 0.50, 3.0).len(), 2);
    }

    #[test]
    fn improvement_never_fails() {
        let old = pt("aaa", 40_000.0, 2_000);
        let new = pt("bbb", 80_000.0, 500);
        assert!(violations(&old, &new, 0.50, 3.0).is_empty());
    }

    #[test]
    fn parses_committed_report_shape() {
        let body = r#"{"bench":"fig13_slo_load","qps":41377.14,"latency_micros":{"p50":10,"p99":2365,"p999":3347},"epochs":[{"epoch":0,"qps":0,"p99_micros":1906}]}"#;
        let p = parse_point("abc1234", body).unwrap();
        assert_eq!(p.qps, 41377.14);
        assert_eq!(p.p99_micros, 2365);
    }

    #[test]
    fn appended_report_sections_do_not_move_the_gated_point() {
        // The report schema grows over time (the open-loop section is one
        // such addition, and more will follow). New sections append after
        // the full-run aggregates, so the first-"qps"/first-"p99" scan
        // must parse a grown document identically to the original shape —
        // comparing a pre-growth point against a post-growth point stays
        // apples-to-apples.
        let body = r#"{"bench":"fig13_slo_load","qps":41377.14,"latency_micros":{"p50":10,"p99":2365,"p999":3347},"epochs":[{"epoch":0,"qps":0,"p99_micros":1906}],"open_loop":{"offered_rps":150,"achieved_rps":149.2,"ok_p99_micros":901,"lag_p99_micros":77},"slo":{"p99_bound_micros":120000}}"#;
        let p = parse_point("def5678", body).unwrap();
        assert_eq!(p.qps, 41377.14);
        assert_eq!(p.p99_micros, 2365);
    }
}
