//! **Figure 9 — Effect of each component in RASED.**
//!
//! Paper setup: three variants over query windows of 1–16 years:
//! * **RASED-F** — flat one-level index, no caching, no level optimization;
//! * **RASED-O** — full hierarchy + level optimizer, no caching;
//! * **RASED** — hierarchy + level optimizer + caching.
//!
//! Expected shape: F → O gains more than two orders of magnitude (the
//! hierarchy collapses thousands of daily cubes into a handful of coarse
//! ones); O → RASED gains another order (cached cubes cost no I/O at all).
//!
//! One physical 16-year index serves all three variants: it is reopened
//! with `levels = 1` (its planner then only sees daily cubes) or
//! `levels = 4`, with the cache disabled or enabled.

use rased_bench::{bench_dir, fmt_duration, one_cell_query, Workload};
use rased_baseline::RasedVariant;
use rased_core::{IoCostModel, QueryEngine, TemporalIndex};
use rased_temporal::{Date, DateRange};
use std::error::Error;
use std::time::Duration;

fn main() -> Result<(), Box<dyn Error>> {
    let w = Workload::years(16, 300, 0xF169);
    let dir = bench_dir("fig9")?;
    println!("# Fig 9: building a 16-year index ({} days)...", w.range.len_days());
    {
        let full = rased_bench::build_index(
            &dir.join("index"),
            &w,
            4,
            RasedVariant::Full.cache(0),
            IoCostModel::hdd(),
        )?;
        full.sync()?;
    }

    let windows_years = [1i32, 2, 4, 8, 16];
    let reps = 20;
    let cache_slots = 500; // the paper's 2 GB at ~4 MB/cube

    println!(
        "\n{:>6} | {:>12} | {:>12} | {:>12} | {:>10} {:>10}",
        "years", "RASED-F", "RASED-O", "RASED", "F/O", "O/RASED"
    );
    println!("{}", "-".repeat(76));

    for &years in &windows_years {
        let end = w.range.end();
        let start = Date::new(end.year() - years + 1, 1, 1)?;
        let range = DateRange::new(start, end);
        let query = one_cell_query(range);

        let mut results = Vec::new();
        for variant in RasedVariant::ALL {
            let index = TemporalIndex::open(
                &dir.join("index"),
                w.schema,
                variant.levels(),
                variant.cache(cache_slots),
                IoCostModel::hdd(),
            )?;
            index.warm_cache()?;
            let engine = QueryEngine::new(&index).with_planner(variant.planner());
            let mut total = Duration::ZERO;
            for _ in 0..reps {
                let r = engine.execute(&query)?;
                total += r.stats.modeled_total();
            }
            results.push(total / reps);
        }
        let &[f, o, full] = results.as_slice() else { continue };
        println!(
            "{:>6} | {:>12} | {:>12} | {:>12} | {:>10.1} {:>10.1}",
            years,
            fmt_duration(f),
            fmt_duration(o),
            fmt_duration(full),
            f.as_secs_f64() / o.as_secs_f64().max(1e-12),
            o.as_secs_f64() / full.as_secs_f64().max(1e-12),
        );
    }
    println!(
        "\n(avg of {reps} one-cell queries; modeled disk 5 ms seek + 150 MB/s; cache {cache_slots} slots)"
    );
    Ok(())
}
