//! **Figure 12 — Serving latency under live ingestion.**
//!
//! Query latency (p50 / p99) against a running system, measured twice over
//! the same window set: first quiescent, then while the streaming
//! [`IngestController`] is crawling and publishing a second dataset
//! concurrently. The epoch-pinned read path means the second run pays only
//! for cache invalidations and writer CPU — a bounded p99 regression, not
//! a stall — and the closing line reports exactly how much was published
//! under the readers' feet (units, invalidations, final epoch).
//!
//! `BENCH_MEASURE_MS` shrinks the datasets and the per-mode query budget
//! for CI smoke runs (default 200 ms per mode).

use rased_bench::{bench_dir, fmt_duration};
use rased_bench::harness::{Harness, LatencyProfile};
use rased_core::{CubeSchema, IngestController, IngestPhase, Rased, RasedConfig};
use rased_osm_gen::{Dataset, DatasetConfig};
use rased_query::{AnalysisQuery, GroupDim};
use rased_temporal::{Date, DateRange, Granularity};
use std::error::Error;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn Error>> {
    let budget = Harness::from_env().measure();
    let smoke = budget < Duration::from_millis(100);
    // Baseline dataset (batch-ingested) and a follow-on span the controller
    // streams in while queries run.
    let (base_days, live_days) = if smoke { (14i32, 7i32) } else { (45, 30) };

    let dir = bench_dir("fig12")?;
    // The system dir must not survive across runs with different datasets.
    for sub in ["base", "live", "system"] {
        let _ = std::fs::remove_dir_all(dir.join(sub));
    }
    let start = Date::new(2021, 1, 1)?;
    let mut base_cfg = DatasetConfig::small(0xF12A);
    base_cfg.range = DateRange::new(start, start.add_days(base_days - 1));
    let live_start = start.add_days(base_days);
    let mut live_cfg = base_cfg.clone();
    live_cfg.range = DateRange::new(live_start, live_start.add_days(live_days - 1));

    println!("# Fig 12: generating {base_days}-day baseline + {live_days}-day live datasets...");
    let base = Dataset::generate(&dir.join("base"), base_cfg)?;
    Dataset::generate(&dir.join("live"), live_cfg)?;

    let schema = CubeSchema::new(
        base.config.world.n_countries,
        base.config.sim.n_road_types,
    );
    let system = Arc::new(Rased::create(
        RasedConfig::new(dir.join("system")).with_schema(schema),
    )?);
    println!("# Fig 12: batch-ingesting the baseline...");
    system.ingest_dataset(&base)?;

    let q = AnalysisQuery::over(DateRange::new(start, live_start.add_days(live_days - 1)))
        .group(GroupDim::UpdateType)
        .group(GroupDim::Date(Granularity::Week));

    println!(
        "\n{:>10} | {:>8} | {:>10} | {:>10} | {:>10} | {:>10}",
        "mode", "queries", "p50", "p99", "p999", "max"
    );
    println!("{}", "-".repeat(73));

    // Quiescent: nothing publishing.
    let quiet = run_queries(&system, &q, budget, || false)?;
    report("quiet", &quiet);

    // Under load: the controller streams the live dataset while the same
    // query mix runs; keep querying until it drains (or 20× budget, so a
    // wedged writer fails loudly instead of hanging the bench).
    let ingest = IngestController::start(Arc::clone(&system))?;
    ingest
        .enqueue(PathBuf::from(dir.join("live")))
        .map_err(|_| "ingest queue full")?;
    let deadline = Instant::now() + budget.max(Duration::from_millis(50)) * 20;
    let busy = run_queries(&system, &q, budget, || {
        let s = ingest.status();
        let active = s.phase != IngestPhase::Idle || s.queued > 0;
        active && Instant::now() < deadline
    })?;
    report("ingesting", &busy);
    let status = ingest.status();
    ingest.shutdown();

    let published = system.index().published_units();
    let invalidated = system.index().invalidations();
    println!(
        "\n(published {published} units under load — {} days, {} months — \
         {invalidated} cache invalidations, final epoch {}; last error: {})",
        status.days_published,
        status.months_published,
        system.index().epoch(),
        status.last_error.as_deref().unwrap_or("none"),
    );

    let ratio = busy.p99.as_secs_f64() / quiet.p99.as_secs_f64().max(f64::EPSILON);
    println!("(p99 under ingest = {ratio:.2}x quiescent)");
    Ok(())
}

/// Run `q` repeatedly for at least `budget`, continuing while
/// `keep_going()` holds, and profile per-query wall latency.
fn run_queries(
    system: &Rased,
    q: &AnalysisQuery,
    budget: Duration,
    mut keep_going: impl FnMut() -> bool,
) -> Result<LatencyProfile, Box<dyn Error>> {
    let started = Instant::now();
    let mut samples: Vec<Duration> = Vec::new();
    while started.elapsed() < budget || keep_going() {
        let t0 = Instant::now();
        system.query(q)?;
        samples.push(t0.elapsed());
    }
    // Shared nearest-rank percentiles (rased_bench::harness) — the old
    // hand-rolled `pick()` truncated the rank, under-reporting p99 at
    // small N.
    LatencyProfile::from_samples(&mut samples).ok_or_else(|| "no samples recorded".into())
}

fn report(mode: &str, p: &LatencyProfile) {
    // Full percentile ladder from the shared profile — same columns as
    // fig13, so the two figures read side by side.
    println!(
        "{:>10} | {:>8} | {:>10} | {:>10} | {:>10} | {:>10}",
        mode,
        p.count,
        fmt_duration(p.p50),
        fmt_duration(p.p99),
        fmt_duration(p.p999),
        fmt_duration(p.max)
    );
}
