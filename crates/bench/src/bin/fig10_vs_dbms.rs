//! **Figure 10 — RASED vs. a row-scanning DBMS.**
//!
//! Paper setup: PostgreSQL (2 GB buffer) vs. RASED over 1–16-year windows.
//! PostgreSQL sits at ~1000 s regardless of the window — the multi-
//! attribute GROUP BY forces a full scan of the 12-billion-row UpdateList —
//! while RASED stays ≤ ~10 ms, five to six orders of magnitude faster.
//!
//! Our relation is smaller (the full UpdateList is ~336 GB), so the
//! absolute gap shrinks with it; the *shape* — DBMS constant in the window,
//! RASED flat and orders faster — is scale-independent. The harness also
//! prints the projected paper-scale scan time from the same cost model.
//!
//! I/O models: cube reads are random (5 ms seek + 150 MB/s); the DBMS scan
//! is sequential, so its heap is charged transfer-dominated I/O
//! (0.1 ms + 150 MB/s) — crediting the baseline, not handicapping it.

use rased_bench::{bench_dir, fmt_duration, one_cell_query, Workload};
use rased_baseline::DbmsBaseline;
use rased_core::{CacheConfig, IoCostModel, QueryEngine, TemporalIndex};
use rased_temporal::{Date, DateRange};
use std::error::Error;
use std::time::Duration;

fn main() -> Result<(), Box<dyn Error>> {
    let w = Workload::years(16, 1000, 0xF1610);
    let dir = bench_dir("fig10")?;

    println!("# Fig 10: building a 16-year index + heap ({} days)...", w.range.len_days());
    {
        let index = rased_bench::build_index(
            &dir.join("index"),
            &w,
            4,
            CacheConfig { slots: 500, ..CacheConfig::paper_default() },
            IoCostModel::hdd(),
        )?;
        index.sync()?;
    }
    let seq_model = IoCostModel { seek_micros: 100, bytes_per_sec: 150_000_000 };
    // 2 GB buffer (in 8 KB pages) exceeds our scaled relation, exactly as
    // the paper's 2 GB did not hold its 336 GB relation — so force cold
    // scans by sizing the pool at zero and charging sequential I/O per scan.
    let heap = rased_bench::build_heap(&dir.join("heap.pg"), &w, seq_model, 0)?;
    let heap_bytes = heap.page_count() * rased_warehouse::HEAP_PAGE_BYTES as u64;
    println!(
        "heap: {} rows, {:.1} MB",
        heap.row_count(),
        heap_bytes as f64 / (1 << 20) as f64
    );

    let index = TemporalIndex::open(
        &dir.join("index"),
        w.schema,
        4,
        CacheConfig { slots: 500, ..CacheConfig::paper_default() },
        IoCostModel::hdd(),
    )?;
    index.warm_cache()?;
    let engine = QueryEngine::new(&index);
    let dbms = DbmsBaseline::new(&heap);

    let windows_years = [1i32, 2, 4, 8, 16];
    let rased_reps = 50;

    println!("\n{:>6} | {:>14} | {:>12} | {:>12}", "years", "DBMS (scan)", "RASED", "speedup");
    println!("{}", "-".repeat(56));
    for &years in &windows_years {
        let end = w.range.end();
        let start = Date::new(end.year() - years + 1, 1, 1)?;
        let query = one_cell_query(DateRange::new(start, end));

        let dbms_result = dbms.execute(&query)?;
        let dbms_time = dbms_result.stats.wall + dbms_result.stats.io.modeled;

        let mut rased_time = Duration::ZERO;
        for _ in 0..rased_reps {
            let r = engine.execute(&query)?;
            rased_time += r.stats.modeled_total();
        }
        rased_time /= rased_reps;

        println!(
            "{:>6} | {:>14} | {:>12} | {:>11.0}x",
            years,
            fmt_duration(dbms_time),
            fmt_duration(rased_time),
            dbms_time.as_secs_f64() / rased_time.as_secs_f64().max(1e-12),
        );
    }

    // Projection to the paper's scale: 12 B rows × 28 B/row at 150 MB/s.
    let paper_bytes = 12_000_000_000u64 * 28;
    let projected = Duration::from_secs_f64(paper_bytes as f64 / 150_000_000.0);
    println!(
        "\n(projected full-UpdateList scan at paper scale: {} — the paper measured ~1000 s)",
        fmt_duration(projected)
    );
    Ok(())
}
