//! Deterministic mixed-workload generator for the fig13 load harness.
//!
//! Models N dashboard users browsing the public RASED deployment: each
//! [`UserSession`] is an independent SplitMix64 stream (seeded via
//! [`dettest::Rng::derive`] from a base seed and the user index), walking a
//! small state machine over the real HTTP API — tile views of the focused
//! country, drill-downs into a road class, period/country pans, and the
//! occasional `/api/meta` or `/api/sample` call. Country and road focus
//! follow a Zipf distribution, the shape observed for real OSM editing
//! activity (hot countries absorb most views).
//!
//! Everything is a pure function of `(seed, user, step)`: the same seed
//! reproduces the same byte-identical request sequence, which is what makes
//! fig13 runs comparable across commits and lets the property suite pin
//! the generator's behavior.

use dettest::Rng;
use rased_temporal::{Date, DateRange};

/// Vocabulary a workload draws from, built by the caller from the system
/// under test: country codes and road-type values the API will accept, and
/// the date window that actually holds data.
#[derive(Debug, Clone)]
pub struct Vocab {
    pub range: DateRange,
    pub countries: Vec<String>,
    pub roads: Vec<String>,
}

impl Vocab {
    /// A self-consistent synthetic vocabulary for tests (codes `C00..`,
    /// roads `road00..`), independent of any running system.
    pub fn synthetic(n_countries: usize, n_roads: usize, range: DateRange) -> Vocab {
        Vocab {
            range,
            countries: (0..n_countries).map(|i| format!("C{i:02}")).collect(),
            roads: (0..n_roads).map(|i| format!("road{i:02}")).collect(),
        }
    }
}

/// What a generated request is, for per-class reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Overview charts for the focused country over the visible window.
    TileView,
    /// Narrowed query: road-class filter, daily granularity.
    DrillDown,
    /// The user moved the period window or switched country, then reloaded.
    Pan,
    /// Vocabulary fetch (`/api/meta`).
    Meta,
    /// Map sample over a bounding box (`/api/sample`).
    Sample,
}

impl RequestKind {
    pub fn label(self) -> &'static str {
        match self {
            RequestKind::TileView => "tile_view",
            RequestKind::DrillDown => "drill_down",
            RequestKind::Pan => "pan",
            RequestKind::Meta => "meta",
            RequestKind::Sample => "sample",
        }
    }
}

/// One generated HTTP request: the kind (for reporting) and the request
/// target (path + query string) to send.
#[derive(Debug, Clone)]
pub struct Request {
    pub kind: RequestKind,
    pub target: String,
}

/// Zipf(s) sampler over ranks `0..n` by inverse CDF over precomputed
/// cumulative weights `w(i) = 1/(i+1)^s`. Rank 0 is the most popular.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// `n` is clamped to at least 1; `s = 0` degenerates to uniform.
    pub fn new(n: usize, s: f64) -> Zipf {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let x = rng.f64();
        // partition_point: first rank whose cumulative weight covers x.
        let idx = self.cdf.partition_point(|&c| c < x);
        idx.min(self.cdf.len().saturating_sub(1))
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Default Zipf skew for country/road focus (matches the generator's own
/// activity skew ballpark).
pub const DEFAULT_SKEW: f64 = 1.0;

/// The visible period window a user starts with (the dashboard's default
/// "last two weeks" view), in days.
const DEFAULT_WINDOW_DAYS: i64 = 14;

/// One simulated dashboard user: an independent deterministic stream of
/// requests against the HTTP API.
#[derive(Debug)]
pub struct UserSession {
    rng: Rng,
    vocab: Vocab,
    country_zipf: Zipf,
    road_zipf: Zipf,
    /// Focused country, as a rank into a per-user permutation-free Zipf
    /// draw (rank 0 hottest).
    country: usize,
    /// Visible window as day offsets into `vocab.range` (inclusive).
    win_lo: i64,
    win_hi: i64,
}

impl UserSession {
    /// Build user `user`'s session from the workload base seed. Each user
    /// gets an independent SplitMix64 stream via [`Rng::derive`].
    pub fn new(base_seed: u64, user: u64, vocab: Vocab, skew: f64) -> UserSession {
        let mut rng = Rng::new(Rng::derive(base_seed, user));
        let country_zipf = Zipf::new(vocab.countries.len(), skew);
        let road_zipf = Zipf::new(vocab.roads.len(), skew);
        let country = country_zipf.sample(&mut rng);
        let total_days = vocab.range.len_days() as i64;
        let win_hi = total_days - 1;
        let win_lo = (win_hi - (DEFAULT_WINDOW_DAYS - 1)).max(0);
        UserSession { rng, vocab, country_zipf, road_zipf, country, win_lo, win_hi }
    }

    fn date(&self, offset: i64) -> Date {
        self.vocab.range.start().add_days(offset.clamp(0, i32::MAX as i64) as i32)
    }

    fn country_code(&self) -> &str {
        self.vocab.countries.get(self.country).map(String::as_str).unwrap_or("")
    }

    fn window_params(&self) -> String {
        format!("start={}&end={}", self.date(self.win_lo), self.date(self.win_hi))
    }

    /// Shift the visible window by `delta` days, clamped to the data range.
    fn pan_window(&mut self, delta: i64) {
        let total_days = self.vocab.range.len_days() as i64;
        let width = (self.win_hi - self.win_lo).max(0);
        let lo = (self.win_lo + delta).clamp(0, (total_days - 1 - width).max(0));
        self.win_lo = lo;
        self.win_hi = lo + width;
    }

    /// Generate the next request in this user's session.
    pub fn next_request(&mut self) -> Request {
        let roll = self.rng.below(100);
        match roll {
            // 35%: reload the overview tiles for the focused country.
            0..=34 => Request {
                kind: RequestKind::TileView,
                target: format!(
                    "/api/analysis?{}&countries={}&group=update,week",
                    self.window_params(),
                    self.country_code(),
                ),
            },
            // 25%: drill into one road class at daily granularity over the
            // trailing week of the window.
            35..=59 => {
                let road_rank = self.road_zipf.sample(&mut self.rng);
                let road =
                    self.vocab.roads.get(road_rank).map(String::as_str).unwrap_or("");
                let lo = (self.win_hi - 6).max(self.win_lo);
                Request {
                    kind: RequestKind::DrillDown,
                    target: format!(
                        "/api/analysis?start={}&end={}&countries={}&roads={}&group=day,update",
                        self.date(lo),
                        self.date(self.win_hi),
                        self.country_code(),
                        road,
                    ),
                }
            }
            // 25%: pan — shift the period window, or switch country focus,
            // then reload the overview for the new view.
            60..=84 => {
                if self.rng.below(3) == 0 {
                    self.country = self.country_zipf.sample(&mut self.rng);
                } else {
                    let delta = self.rng.range_i64(7, 30);
                    let back = self.rng.bool();
                    self.pan_window(if back { -delta } else { delta });
                }
                Request {
                    kind: RequestKind::Pan,
                    target: format!(
                        "/api/analysis?{}&countries={}&group=update,week",
                        self.window_params(),
                        self.country_code(),
                    ),
                }
            }
            // 7%: vocabulary refresh.
            85..=91 => Request { kind: RequestKind::Meta, target: "/api/meta".to_string() },
            // 8%: map sample over a small bounding box.
            _ => {
                let lat = self.rng.range_i64(-55, 55) as f64;
                let lon = self.rng.range_i64(-175, 175) as f64;
                let limit = self.rng.range_u64(10, 100);
                Request {
                    kind: RequestKind::Sample,
                    target: format!(
                        "/api/sample?min_lat={:.1}&min_lon={:.1}&max_lat={:.1}&max_lon={:.1}&limit={limit}",
                        lat,
                        lon,
                        lat + 4.0,
                        lon + 4.0,
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range() -> DateRange {
        let start = Date::new(2021, 1, 1).expect("date");
        DateRange::new(start, start.add_days(59))
    }

    #[test]
    fn same_seed_same_sequence() {
        let vocab = Vocab::synthetic(8, 6, range());
        let mut a = UserSession::new(42, 3, vocab.clone(), DEFAULT_SKEW);
        let mut b = UserSession::new(42, 3, vocab, DEFAULT_SKEW);
        for _ in 0..200 {
            assert_eq!(a.next_request().target, b.next_request().target);
        }
    }

    #[test]
    fn different_users_diverge() {
        let vocab = Vocab::synthetic(8, 6, range());
        let mut a = UserSession::new(42, 0, vocab.clone(), DEFAULT_SKEW);
        let mut b = UserSession::new(42, 1, vocab, DEFAULT_SKEW);
        let sa: Vec<String> = (0..50).map(|_| a.next_request().target).collect();
        let sb: Vec<String> = (0..50).map(|_| b.next_request().target).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(10, 1.0);
        let mut rng = Rng::new(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            if let Some(c) = counts.get_mut(r) {
                *c += 1;
            }
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
        assert!(counts[0] > counts[4], "{counts:?}");
    }

    #[test]
    fn windows_stay_inside_the_data_range() {
        let vocab = Vocab::synthetic(4, 4, range());
        let total = vocab.range.len_days() as i64;
        let mut u = UserSession::new(9, 0, vocab, DEFAULT_SKEW);
        for _ in 0..500 {
            let _ = u.next_request();
            assert!(u.win_lo >= 0 && u.win_hi < total && u.win_lo <= u.win_hi);
        }
    }
}
