//! Minimal keep-alive HTTP/1.1 client for the load benches.
//!
//! The integration tests have their own client under `tests/common`; this
//! one lives in `src/` so the fig13 binary can use it, which means it obeys
//! the panic-freedom ratchet: every parse failure is an `io::Error`, never
//! a panic. It supports exactly what the harness needs — `GET` with extra
//! headers (the load driver identifies each simulated user to the server's
//! admission control via `X-Forwarded-For`) and `Content-Length`-framed
//! responses over one persistent connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response (header names lowercased).
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// One keep-alive connection to the server under test.
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    pub fn connect(addr: SocketAddr) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient { stream, reader })
    }

    /// Issue `GET target` with extra headers on the held connection and
    /// read one response. An `Err` means the connection is dead — the
    /// caller reconnects.
    pub fn get(&mut self, target: &str, extra: &[(&str, &str)]) -> std::io::Result<Response> {
        let mut req = format!("GET {target} HTTP/1.1\r\nHost: bench\r\n");
        for (k, v) in extra {
            req.push_str(k);
            req.push_str(": ");
            req.push_str(v);
            req.push_str("\r\n");
        }
        req.push_str("\r\n");
        self.stream.write_all(req.as_bytes())?;
        self.stream.flush()?;
        read_response(&mut self.reader)
    }
}

/// Read one `Content-Length`-framed response off `reader`.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<Response> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if status_line.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_data(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(Response { status, headers, body: String::from_utf8_lossy(&body).into_owned() })
}

/// Extract the first `"key": <uint>` field from a JSON document. The
/// metrics poller reads a handful of scalar counters out of
/// `/api/metrics`; the keys it needs are unique in that document, so a
/// scan beats pulling in a parser.
pub fn json_uint_field(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)?;
    let rest = body.get(at + needle.len()..)?.trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest.get(..end)?.parse().ok()
}

/// Extract the first `"key": <number>` field from a JSON document as a
/// float (accepts integer, decimal, and exponent forms).
pub fn json_float_field(body: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)?;
    let rest = body.get(at + needle.len()..)?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest.get(..end)?.parse().ok()
}

/// Extract the first `"key": "<string>"` field from a JSON document
/// (returns the raw contents between the quotes; no unescaping).
pub fn json_str_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)?;
    let rest = body.get(at + needle.len()..)?.trim_start();
    let inner = rest.strip_prefix('"')?;
    let end = inner.find('"')?;
    inner.get(..end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_field_extraction() {
        let body = r#"{"ingest": {"epoch": 42, "phase": "crawling", "queued": 0}}"#;
        assert_eq!(json_uint_field(body, "epoch"), Some(42));
        assert_eq!(json_uint_field(body, "queued"), Some(0));
        assert_eq!(json_uint_field(body, "missing"), None);
        assert_eq!(json_str_field(body, "phase"), Some("crawling"));
        assert_eq!(json_str_field(body, "epoch"), None);
    }

    #[test]
    fn json_field_without_space() {
        assert_eq!(json_uint_field(r#"{"cube_hits":7}"#, "cube_hits"), Some(7));
    }

    #[test]
    fn json_float_extraction() {
        let body = r#"{"qps":41377.14064063073,"neg":-1.5e3,"int":7,"s":"x"}"#;
        assert_eq!(json_float_field(body, "qps"), Some(41377.14064063073));
        assert_eq!(json_float_field(body, "neg"), Some(-1500.0));
        assert_eq!(json_float_field(body, "int"), Some(7.0));
        assert_eq!(json_float_field(body, "s"), None);
        assert_eq!(json_float_field(body, "missing"), None);
    }
}
