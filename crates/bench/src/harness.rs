//! A small in-repo benchmark harness (criterion-shaped, std-only).
//!
//! The bench binaries under `benches/` use `harness = false` and drive this
//! module from a plain `fn main()`. The API mirrors the slice of criterion
//! the workspace used — [`Harness::benchmark_group`], [`Group::throughput`],
//! [`Group::sample_size`], [`Group::bench_function`] /
//! [`Group::bench_with_input`], and `b.iter(..)` — so the bench bodies read
//! the same while the timing loop stays ~150 lines of std.
//!
//! Timing model: each benchmark first warms up for a quarter of the
//! measurement budget, sizes a batch so one sample lasts roughly
//! `budget / samples`, then records `samples` batches and reports the
//! min / mean / max per-iteration time (plus throughput when declared).
//!
//! Knobs: pass a substring argument to run a subset
//! (`cargo bench --bench microbench -- planner`); set `BENCH_MEASURE_MS`
//! to shrink or grow the per-benchmark budget (default 200 ms — CI smoke
//! runs use a small value).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Work performed per iteration, used to derive a throughput line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A parameterized benchmark name, e.g. `from_parameter(4)` → `"4"`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    pub fn new(function: &str, p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{p}"))
    }
}

/// Top-level driver; owns the name filter and measurement budget.
pub struct Harness {
    filter: Option<String>,
    measure: Duration,
}

impl Default for Harness {
    fn default() -> Harness {
        Harness { filter: None, measure: Duration::from_millis(200) }
    }
}

impl Harness {
    /// Build a harness from the process arguments and environment. Flag
    /// arguments (anything starting with `-`, notably the `--bench` cargo
    /// passes) are ignored; the first plain argument is a substring filter.
    pub fn from_env() -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let measure = std::env::var("BENCH_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(200));
        Harness { filter, measure }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group { harness: self, name: name.into(), throughput: None, samples: 50 }
    }

    /// The per-benchmark measurement budget (`BENCH_MEASURE_MS`), for
    /// harness binaries that size their own workloads instead of using
    /// [`Bencher::iter`].
    pub fn measure(&self) -> Duration {
        self.measure
    }
}

/// A named group of related benchmarks (shares throughput declaration).
pub struct Group<'a> {
    harness: &'a Harness,
    name: String,
    throughput: Option<Throughput>,
    samples: u32,
}

impl Group<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u32).max(10);
        self
    }

    pub fn bench_function(&mut self, id: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { budget: self.harness.measure, samples: self.samples, stats: None };
        f(&mut b);
        match b.stats {
            Some(stats) => report(&full, &stats, self.throughput),
            None => println!("{full:<40} (no measurement: bencher never ran iter)"),
        }
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id.0.clone(), |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Per-iteration timing statistics, in seconds.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    pub min: f64,
    pub mean: f64,
    pub max: f64,
    pub iters: u64,
}

/// Runs the measured routine; handed to the benchmark closure.
pub struct Bencher {
    budget: Duration,
    samples: u32,
    stats: Option<Stats>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup: a quarter of the budget, and at least one iteration. Also
        // yields the batch-size estimate for the measurement phase.
        let warmup = (self.budget / 4).max(Duration::from_millis(5));
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size batches so `samples` of them fill the remaining budget.
        let sample_budget = (self.budget * 3 / 4).as_secs_f64() / self.samples as f64;
        let batch = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, u64::MAX);

        let (mut min, mut max, mut total) = (f64::INFINITY, 0.0f64, 0.0f64);
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per = t.elapsed().as_secs_f64() / batch as f64;
            min = min.min(per);
            max = max.max(per);
            total += per;
            iters += batch;
        }
        self.stats = Some(Stats { min, mean: total / self.samples as f64, max, iters });
    }
}

/// Nearest-rank percentile over an **ascending-sorted** slice: the value at
/// rank `⌈p·N⌉` (1-based), i.e. the smallest element ≥ `p` of the sample.
/// No interpolation, so small-N behaviour is unsurprising: `p=1.0` is the
/// max, `p=0.0` the min, and every result is an actual observed sample.
/// Returns `None` on an empty slice.
pub fn percentile<T: Copy>(sorted: &[T], p: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let rank = (p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted.get(rank.clamp(1, sorted.len()) - 1).copied()
}

/// A latency profile summarized from per-request samples — the shape every
/// serving-side figure reports (fig12, fig13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyProfile {
    pub count: usize,
    pub p50: Duration,
    pub p99: Duration,
    pub p999: Duration,
    pub max: Duration,
}

impl LatencyProfile {
    /// Summarize samples (sorted in place). `None` when empty.
    pub fn from_samples(samples: &mut [Duration]) -> Option<LatencyProfile> {
        samples.sort_unstable();
        Some(LatencyProfile {
            count: samples.len(),
            p50: percentile(samples, 0.50)?,
            p99: percentile(samples, 0.99)?,
            p999: percentile(samples, 0.999)?,
            max: *samples.last()?,
        })
    }
}

fn report(name: &str, stats: &Stats, throughput: Option<Throughput>) {
    let tp = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>10}/s", fmt_rate(n as f64 / stats.mean, "elem"))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10}/s", fmt_bytes_rate(n as f64 / stats.mean))
        }
        None => String::new(),
    };
    println!(
        "{name:<40} [{} {} {}]{tp}",
        fmt_secs(stats.min),
        fmt_secs(stats.mean),
        fmt_secs(stats.max),
    );
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

fn fmt_rate(r: f64, unit: &str) -> String {
    if r >= 1e6 {
        format!("{:.2} M{unit}", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} K{unit}", r / 1e3)
    } else {
        format!("{r:.0} {unit}")
    }
}

fn fmt_bytes_rate(r: f64) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    if r >= MIB {
        format!("{:.2} MiB", r / MIB)
    } else {
        format!("{:.1} KiB", r / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Harness {
        Harness { filter: None, measure: Duration::from_millis(8) }
    }

    #[test]
    fn bencher_records_stats() {
        let mut h = quick();
        let mut group = h.benchmark_group("t");
        let mut ran = false;
        group.sample_size(10).bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = quick();
        h.filter = Some("nomatch".into());
        let mut group = h.benchmark_group("t");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(!ran, "filtered benchmark must not execute");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut h = quick();
        let mut group = h.benchmark_group("t");
        let mut seen = 0;
        group.sample_size(10).bench_with_input(BenchmarkId::from_parameter(7), &7i32, |b, &x| {
            seen = x;
            b.iter(|| x * 2);
        });
        assert_eq!(seen, 7);
    }

    #[test]
    fn formatting_is_adaptive() {
        assert!(fmt_secs(5e-9).ends_with("ns"));
        assert!(fmt_secs(5e-6).ends_with("µs"));
        assert!(fmt_secs(5e-3).ends_with("ms"));
        assert!(fmt_secs(5.0).ends_with(" s"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u32> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), Some(50));
        assert_eq!(percentile(&v, 0.99), Some(99));
        assert_eq!(percentile(&v, 0.999), Some(100));
        assert_eq!(percentile(&v, 1.0), Some(100));
        assert_eq!(percentile(&v, 0.0), Some(1));
    }

    #[test]
    fn percentile_small_n_has_no_interpolation_surprises() {
        // N=1: every percentile is the single sample.
        assert_eq!(percentile(&[7u64], 0.5), Some(7));
        assert_eq!(percentile(&[7u64], 0.999), Some(7));
        // N=2: p50 rank ⌈1.0⌉=1 → first; p99 rank ⌈1.98⌉=2 → second.
        assert_eq!(percentile(&[1u64, 9], 0.50), Some(1));
        assert_eq!(percentile(&[1u64, 9], 0.99), Some(9));
        // N=4: p50 rank 2, p75 rank 3.
        assert_eq!(percentile(&[1u64, 2, 3, 4], 0.50), Some(2));
        assert_eq!(percentile(&[1u64, 2, 3, 4], 0.75), Some(3));
        // Empty → None, never a panic.
        assert_eq!(percentile::<u64>(&[], 0.5), None);
    }

    #[test]
    fn latency_profile_sorts_and_summarizes() {
        let mut samples = vec![
            Duration::from_millis(9),
            Duration::from_millis(1),
            Duration::from_millis(5),
        ];
        let p = LatencyProfile::from_samples(&mut samples).unwrap();
        assert_eq!(p.count, 3);
        assert_eq!(p.p50, Duration::from_millis(5));
        assert_eq!(p.p99, Duration::from_millis(9));
        assert_eq!(p.p999, Duration::from_millis(9));
        assert_eq!(p.max, Duration::from_millis(9));
        assert_eq!(LatencyProfile::from_samples(&mut []), None);
    }

    #[test]
    fn latency_profile_pins_the_full_ladder_fig12_and_fig13_report() {
        // Both serving figures print p50/p99/p999/max from this one type;
        // pin the exact nearest-rank indices at N=1000 so neither figure
        // can silently drift back to a hand-rolled (truncating) rank.
        let mut samples: Vec<Duration> =
            (1..=1000u64).rev().map(Duration::from_micros).collect();
        let p = LatencyProfile::from_samples(&mut samples).unwrap();
        assert_eq!(p.count, 1000);
        assert_eq!(p.p50, Duration::from_micros(500));
        assert_eq!(p.p99, Duration::from_micros(990));
        assert_eq!(p.p999, Duration::from_micros(999));
        assert_eq!(p.max, Duration::from_micros(1000));
    }
}
