//! Property suite for the fig13 workload generator (dettest): the request
//! stream must be a pure function of `(seed, user)` — byte-identical on
//! replay — the Zipf focus sampler must actually produce the rank-ordered
//! frequencies the skew promises, and *every* generated request must be one
//! the dashboard's HTTP tier accepts: a tracked endpoint with structurally
//! legal parameters. The last property is pinned twice — structurally
//! against the vocabulary, and end-to-end against the real
//! [`parse_analysis_query`] on a real ingested system, so generator drift
//! (a renamed group token, an out-of-range date) fails here and not as
//! mysterious 4xx noise in a benchmark run.

use dettest::{det_proptest, Rng, TempDir};
use rased_bench::workload::{RequestKind, UserSession, Vocab, Zipf, DEFAULT_SKEW};
use rased_core::{CubeSchema, Rased, RasedConfig};
use rased_dashboard::metrics::Endpoint;
use rased_dashboard::{parse_analysis_query, parse_query_string};
use rased_osm_gen::{Dataset, DatasetConfig};
use rased_temporal::{Date, DateRange};

fn test_range(days: i32) -> DateRange {
    let start = Date::new(2021, 3, 1).expect("valid date");
    DateRange::new(start, start.add_days(days.max(1) - 1))
}

/// Drive `steps` requests out of a fresh session for `(seed, user)`.
fn sequence(seed: u64, user: u64, vocab: &Vocab, steps: usize) -> Vec<(RequestKind, String)> {
    let mut s = UserSession::new(seed, user, vocab.clone(), DEFAULT_SKEW);
    (0..steps).map(|_| {
        let r = s.next_request();
        (r.kind, r.target)
    }).collect()
}

fn param<'a>(params: &'a [(String, String)], key: &str) -> Option<&'a str> {
    params.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

/// Structural validity of one generated request against the vocabulary it
/// was drawn from. Panics with the offending target on any violation.
fn assert_structurally_valid(target: &str, vocab: &Vocab) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = parse_query_string(query);
    match Endpoint::classify(path) {
        Endpoint::Analysis => {
            let start: Date = param(&params, "start")
                .unwrap_or_else(|| panic!("missing start in {target}"))
                .parse()
                .unwrap_or_else(|e| panic!("bad start in {target}: {e}"));
            let end: Date = param(&params, "end")
                .unwrap_or_else(|| panic!("missing end in {target}"))
                .parse()
                .unwrap_or_else(|e| panic!("bad end in {target}: {e}"));
            assert!(start <= end, "inverted window in {target}");
            assert!(
                start >= vocab.range.start() && end <= vocab.range.end(),
                "window escapes the data range in {target}"
            );
            if let Some(cs) = param(&params, "countries") {
                for c in cs.split(',') {
                    assert!(
                        vocab.countries.iter().any(|v| v == c),
                        "unknown country `{c}` in {target}"
                    );
                }
            }
            if let Some(rs) = param(&params, "roads") {
                for r in rs.split(',') {
                    assert!(
                        vocab.roads.iter().any(|v| v == r),
                        "unknown road `{r}` in {target}"
                    );
                }
            }
            let legal = ["country", "element", "road", "update", "day", "week", "month", "year"];
            for g in param(&params, "group").unwrap_or("").split(',').filter(|g| !g.is_empty()) {
                assert!(legal.contains(&g), "unknown group dimension `{g}` in {target}");
            }
        }
        Endpoint::Sample => {
            let f = |k: &str| -> f64 {
                param(&params, k)
                    .unwrap_or_else(|| panic!("missing {k} in {target}"))
                    .parse()
                    .unwrap_or_else(|e| panic!("bad {k} in {target}: {e}"))
            };
            let (lo_lat, hi_lat) = (f("min_lat"), f("max_lat"));
            let (lo_lon, hi_lon) = (f("min_lon"), f("max_lon"));
            assert!(lo_lat < hi_lat && lo_lon < hi_lon, "degenerate bbox in {target}");
            assert!((-90.0..=90.0).contains(&lo_lat) && (-90.0..=90.0).contains(&hi_lat));
            assert!((-180.0..=180.0).contains(&lo_lon) && (-180.0..=180.0).contains(&hi_lon));
            let limit: u64 = param(&params, "limit")
                .unwrap_or_else(|| panic!("missing limit in {target}"))
                .parse()
                .unwrap_or_else(|e| panic!("bad limit in {target}: {e}"));
            assert!((10..=100).contains(&limit), "limit {limit} out of range in {target}");
        }
        Endpoint::Meta => assert!(query.is_empty(), "unexpected query string in {target}"),
        other => panic!("generator produced untracked endpoint {other:?}: {target}"),
    }
}

det_proptest! {
    #![det_config(cases = 48)]

    /// Same `(seed, user)` — down to a freshly rebuilt vocabulary — replays
    /// a byte-identical request sequence. This is what makes fig13 runs
    /// comparable across commits.
    #[test]
    fn same_seed_replays_byte_identical(
        seed in 0u64..u64::MAX,
        user in 0u64..64,
        days in 2i32..120,
    ) {
        let vocab_a = Vocab::synthetic(7, 5, test_range(days));
        let vocab_b = Vocab::synthetic(7, 5, test_range(days));
        assert_eq!(
            sequence(seed, user, &vocab_a, 120),
            sequence(seed, user, &vocab_b, 120),
        );
    }

    /// Every request the generator can emit is a tracked endpoint with
    /// structurally legal parameters drawn from the vocabulary.
    #[test]
    fn every_request_is_valid(
        seed in 0u64..u64::MAX,
        user in 0u64..256,
        n_countries in 1usize..24,
        n_roads in 1usize..12,
        days in 1i32..400,
    ) {
        let vocab = Vocab::synthetic(n_countries, n_roads, test_range(days));
        for (_, target) in sequence(seed, user, &vocab, 150) {
            assert_structurally_valid(&target, &vocab);
        }
    }
}

det_proptest! {
    #![det_config(cases = 16)]

    /// The Zipf sampler's observed frequencies follow rank order: rank 0
    /// strictly dominates, and no later rank beats an earlier one by more
    /// than sampling noise.
    #[test]
    fn zipf_frequencies_follow_rank(seed in 0u64..u64::MAX, n in 2usize..=16) {
        const DRAWS: usize = 8_000;
        let z = Zipf::new(n, 1.0);
        let mut rng = Rng::new(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..DRAWS {
            let r = z.sample(&mut rng);
            assert!(r < n, "rank {r} out of 0..{n}");
            counts[r] += 1;
        }
        // s = 1.0: p(0) = 2·p(1), so at 8k draws rank 0 wins by a mile.
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[0] > 2 * counts[n - 1], "{counts:?}");
        // Adjacent tail ranks differ by little; allow 2% total slack.
        let slack = DRAWS / 50;
        for i in 1..n {
            assert!(
                counts[i - 1] + slack >= counts[i],
                "rank {i} beat rank {} beyond noise: {counts:?}", i - 1
            );
        }
    }
}

/// End-to-end: against a *real* ingested system, every analysis request the
/// generator emits must clear the dashboard's own query parser — the same
/// code path the HTTP tier runs. Catches vocabulary drift the structural
/// checks can't (e.g. a country code the taxonomy no longer resolves).
#[test]
fn real_parser_accepts_every_analysis_request() {
    let dir = TempDir::new("workload-props");
    let cfg = {
        let mut c = DatasetConfig::small(0xF13);
        c.range = test_range(3);
        c
    };
    let data = Dataset::generate(&dir.path().join("data"), cfg).expect("generate");
    let schema = CubeSchema::new(data.config.world.n_countries, data.config.sim.n_road_types);
    let system = Rased::create(
        RasedConfig::new(dir.path().join("system")).with_schema(schema),
    )
    .expect("create system");
    system.ingest_dataset(&data).expect("ingest");

    let vocab = Vocab {
        range: data.config.range,
        countries: system
            .countries()
            .ids()
            .filter_map(|id| system.countries().code(id).map(str::to_string))
            .collect(),
        roads: system
            .roads()
            .ids()
            .filter_map(|id| system.roads().value(id).map(str::to_string))
            .collect(),
    };
    assert!(!vocab.countries.is_empty() && !vocab.roads.is_empty());

    let mut analysis_seen = 0;
    for user in 0..4u64 {
        for (kind, target) in sequence(0xF13, user, &vocab, 100) {
            assert_structurally_valid(&target, &vocab);
            if let Some(query) = target.strip_prefix("/api/analysis?") {
                assert!(matches!(kind, RequestKind::TileView | RequestKind::DrillDown | RequestKind::Pan));
                let params = parse_query_string(query);
                if let Err(e) = parse_analysis_query(&system, &params) {
                    panic!("real parser rejected generated request {target}: {e:?}");
                }
                analysis_seen += 1;
            }
        }
    }
    assert!(analysis_seen > 50, "workload mix produced too few analysis requests");
}
