//! End-to-end analysis-query latency on a prebuilt index —
//! backing the paper's headline claim that "RASED queries are always
//! supported in the order of milliseconds, regardless of how large is the
//! query temporal window".

use rased_bench::harness::{BenchmarkId, Harness};
use rased_bench::{bench_dir, one_cell_query, Workload};
use rased_core::{
    AnalysisQuery, CacheConfig, GroupDim, IoCostModel, QueryEngine, TemporalIndex,
};
use rased_temporal::{Date, DateRange};

fn window(w: &Workload, years: i32) -> DateRange {
    let end = w.range.end();
    DateRange::new(Date::new(end.year() - years + 1, 1, 1).expect("valid"), end)
}

fn bench_query_latency(c: &mut Harness) {
    let w = Workload::years(4, 200, 0xBE4C);
    let dir = bench_dir("crit-query").expect("bench dir");
    rased_bench::build_index(&dir.join("index"), &w, 4, CacheConfig::disabled(), IoCostModel::free())
        .expect("build index");
    let index = TemporalIndex::open(
        &dir.join("index"),
        w.schema,
        4,
        CacheConfig { slots: 200, ..CacheConfig::paper_default() },
        IoCostModel::free(),
    )
    .expect("open");
    index.warm_cache().expect("warm");
    let engine = QueryEngine::new(&index);

    let mut group = c.benchmark_group("one_cell_query");
    for years in [1i32, 2, 4] {
        let q = one_cell_query(window(&w, years));
        group.bench_with_input(BenchmarkId::from_parameter(years), &q, |b, q| {
            b.iter(|| engine.execute(q).expect("query"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("grouped_query");
    for years in [1i32, 4] {
        let q = AnalysisQuery::over(window(&w, years))
            .group(GroupDim::Country)
            .group(GroupDim::ElementType);
        group.bench_with_input(BenchmarkId::from_parameter(years), &q, |b, q| {
            b.iter(|| engine.execute(q).expect("query"))
        });
    }
    group.finish();

    // Daily time series over a year: the most cube-hungry query shape.
    let mut group = c.benchmark_group("daily_timeseries");
    group.sample_size(20);
    let q = AnalysisQuery::over(window(&w, 1))
        .group(GroupDim::Country)
        .group(GroupDim::Date(rased_temporal::Granularity::Day));
    group.bench_function("1y", |b| b.iter(|| engine.execute(&q).expect("query")));
    group.finish();
}

fn main() {
    let mut h = Harness::from_env();
    bench_query_latency(&mut h);
}
