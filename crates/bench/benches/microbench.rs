//! Microbenches for the individual subsystems: cube build and roll-up,
//! level planning, XML parsing, the daily crawler, and warehouse lookups.
//! These back the in-text performance assertions (e.g. the "30 minutes,
//! dominated by scanning the UpdateList" daily maintenance).

use rased_bench::harness::{Harness, Throughput};
use rased_bench::{RecordSynth, Workload};
use rased_core::{CubeSchema, DataCube};
use rased_index::{LevelPlanner, PlannerKind};
use rased_osm_model::{CountryId, RoadTypeTable};
use rased_temporal::{Date, DateRange, Period};

fn bench_cube(c: &mut Harness) {
    let w = Workload::years(1, 5_000, 0x01);
    let mut synth = RecordSynth::new(&w);
    let records = synth.day(w.range.start());

    let mut group = c.benchmark_group("cube");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("build_from_records", |b| {
        b.iter(|| DataCube::from_records(w.schema, &records).expect("build"))
    });

    let cube = DataCube::from_records(w.schema, &records).expect("build");
    group.bench_function("merge", |b| {
        b.iter(|| {
            let mut acc = DataCube::zeroed(w.schema);
            acc.merge_from(&cube).expect("merge");
            acc
        })
    });
    group.bench_function("serialize_roundtrip", |b| {
        b.iter(|| {
            let bytes = cube.to_bytes();
            DataCube::from_bytes(w.schema, &bytes).expect("decode")
        })
    });
    group.finish();
}

fn bench_planner(c: &mut Harness) {
    let exists = |_: Period| true;
    let cached = |p: Period| p.start().day() < 8;
    let planner = LevelPlanner::new(4, &exists, &cached);
    let range = DateRange::new(
        Date::new(2006, 1, 1).expect("valid"),
        Date::new(2021, 12, 31).expect("valid"),
    );
    let mut group = c.benchmark_group("planner");
    group.bench_function("dp_16y", |b| b.iter(|| planner.plan(range, PlannerKind::ExactDp)));
    group.bench_function("greedy_16y", |b| b.iter(|| planner.plan(range, PlannerKind::Greedy)));
    group.finish();
}

fn bench_xml(c: &mut Harness) {
    use rased_osm_gen::{EditSimulator, SimConfig, WorldAtlas, WorldConfig};
    use rased_osm_xml::{DiffReader, DiffWriter};

    let atlas = WorldAtlas::generate(&WorldConfig { n_countries: 10, activity_skew: 1.0, seed: 3 });
    let mut sim = EditSimulator::new(
        &atlas,
        SimConfig { daily_edits_mean: 2_000.0, seed: 4, ..SimConfig::default() },
    );
    sim.seed_world(50, Date::new(2020, 12, 31).expect("valid"));
    let out = sim.step_day(Date::new(2021, 1, 1).expect("valid"));
    let mut writer = DiffWriter::new(Vec::new()).expect("writer");
    for (a, e) in &out.changes {
        writer.write(*a, e).expect("write");
    }
    let bytes = writer.finish().expect("finish");

    let mut group = c.benchmark_group("osm_xml");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("parse_daily_diff", |b| {
        b.iter(|| {
            let n = DiffReader::new(bytes.as_slice()).map(|r| r.expect("change")).fold(0usize, |acc, _| acc + 1);
            assert_eq!(n, out.changes.len());
            n
        })
    });
    group.finish();
}

fn bench_collector(c: &mut Harness) {
    use rased_collector::DailyCrawler;
    use rased_osm_gen::{EditSimulator, SimConfig, WorldAtlas, WorldConfig};
    use rased_osm_model::CountryResolver;
    use rased_osm_xml::{ChangesetWriter, DiffWriter};

    // One realistic day of diff + changeset bytes.
    let atlas = WorldAtlas::generate(&WorldConfig { n_countries: 20, activity_skew: 1.0, seed: 9 });
    let mut sim = EditSimulator::new(
        &atlas,
        SimConfig { daily_edits_mean: 2_000.0, seed: 10, ..SimConfig::default() },
    );
    sim.seed_world(40, Date::new(2020, 12, 31).expect("valid"));
    let out = sim.step_day(Date::new(2021, 1, 1).expect("valid"));
    let diff_bytes = {
        let mut w = DiffWriter::new(Vec::new()).expect("writer");
        for (a, e) in &out.changes {
            w.write(*a, e).expect("write");
        }
        w.finish().expect("finish")
    };
    let cs_bytes = {
        let mut w = ChangesetWriter::new(Vec::new()).expect("writer");
        for m in &out.changesets {
            w.write(m).expect("write");
        }
        w.finish().expect("finish")
    };
    let table = sim.road_table().clone();
    // Sanity: the crawl really emits the day's updates.
    let resolver: &dyn CountryResolver = &atlas;
    let crawler = DailyCrawler::new(resolver, &table);
    let (records, _) = crawler.crawl(diff_bytes.as_slice(), cs_bytes.as_slice()).expect("crawl");
    assert_eq!(records.len(), out.changes.len());

    let mut group = c.benchmark_group("collector");
    group.throughput(Throughput::Elements(out.changes.len() as u64));
    group.bench_function("daily_crawl", |b| {
        b.iter(|| {
            let crawler = DailyCrawler::new(resolver, &table);
            crawler.crawl(diff_bytes.as_slice(), cs_bytes.as_slice()).expect("crawl")
        })
    });
    group.finish();
}

fn bench_warehouse(c: &mut Harness) {
    use rased_geo::BBox;
    use rased_storage::IoCostModel;
    use rased_warehouse::Warehouse;

    let dir = rased_bench::bench_dir("crit-wh").expect("bench dir");
    let w = Workload::years(1, 2_000, 0x05);
    let mut synth = RecordSynth::new(&w);
    let warehouse =
        Warehouse::create(&dir.join("wh.pg"), IoCostModel::free(), 1024).expect("create");
    let mut some_changeset = None;
    for day in w.range.days().take(30) {
        for r in synth.day(day) {
            some_changeset.get_or_insert(r.changeset);
            warehouse.insert(&r).expect("insert");
        }
    }
    let cs = some_changeset.expect("records inserted");

    let mut group = c.benchmark_group("warehouse");
    group.bench_function("by_changeset", |b| {
        b.iter(|| warehouse.by_changeset(cs).expect("lookup"))
    });
    let bbox = BBox::from_deg(-30.0, -90.0, 30.0, 90.0);
    group.bench_function("sample_region_100", |b| {
        b.iter(|| warehouse.sample_region(&bbox, 100).expect("sample"))
    });
    group.finish();
}

fn bench_selection(c: &mut Harness) {
    use rased_cube::DimSelection;
    let schema = CubeSchema::new(60, 40);
    let w = Workload::years(1, 20_000, 0x06);
    let mut synth = RecordSynth::new(&w);
    let cube = DataCube::from_records(schema, &synth.day(w.range.start())).expect("build");

    let mut group = c.benchmark_group("aggregation");
    let all = DimSelection::all(schema);
    group.bench_function("sum_all_cells", |b| b.iter(|| cube.sum_selected(&all)));
    let narrow = DimSelection::all(schema).with_countries(&[CountryId(0), CountryId(1)]);
    group.bench_function("sum_two_countries", |b| b.iter(|| cube.sum_selected(&narrow)));
    group.finish();

    // Road-type resolution (tag → id) — hot in the crawlers.
    let table = RoadTypeTable::paper_scale();
    let mut group = c.benchmark_group("taxonomy");
    group.bench_function("road_type_lookup", |b| {
        b.iter(|| table.by_value("residential").expect("known value"))
    });
    group.finish();
}

fn main() {
    let mut h = Harness::from_env();
    bench_cube(&mut h);
    bench_planner(&mut h);
    bench_xml(&mut h);
    bench_collector(&mut h);
    bench_warehouse(&mut h);
    bench_selection(&mut h);
}
