//! Shared setup for the examples: build a small demo deployment (synthetic
//! dataset + ingested RASED system) under a temp directory.

use rased_core::{CubeSchema, Rased, RasedConfig};
use rased_osm_gen::{Dataset, DatasetConfig};
use rased_temporal::{Date, DateRange};
use std::path::PathBuf;

/// A ready-to-query demo deployment.
pub struct DemoSystem {
    pub rased: Rased,
    pub dataset: Dataset,
    pub dir: PathBuf,
}

/// Generate a synthetic dataset (seeded, so repeated runs agree) covering
/// `2020-01-01..2021-12-31` over 12 countries, then build and ingest a RASED
/// system over it. Takes a few seconds; the directory is reused per `tag`
/// only within one process run (it is wiped on entry).
pub fn build_demo_system(tag: &str, seed: u64) -> DemoSystem {
    let dir = std::env::temp_dir().join(format!("rased-example-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create demo dir");

    let mut config = DatasetConfig::small(seed);
    config.range = DateRange::new(
        Date::new(2020, 1, 1).expect("valid date"),
        Date::new(2021, 12, 31).expect("valid date"),
    );
    config.sim.daily_edits_mean = 60.0;

    eprintln!("[demo] generating synthetic OSM dataset ({} days)...", config.range.len_days());
    let dataset = Dataset::generate(&dir.join("osm"), config).expect("generate dataset");

    let schema =
        CubeSchema::new(dataset.config.world.n_countries, dataset.config.sim.n_road_types);
    let rased =
        Rased::create(RasedConfig::new(dir.join("system")).with_schema(schema)).expect("create system");

    eprintln!("[demo] ingesting through the daily + monthly crawlers...");
    let report = rased.ingest_dataset(&dataset).expect("ingest");
    eprintln!(
        "[demo] ingested {} days / {} months: {} update records",
        report.days, report.months, report.daily.emitted
    );
    DemoSystem { rased, dataset, dir }
}
