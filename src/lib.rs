//! RASED — a reproduction of "A Demonstration of RASED: A Scalable Dashboard
//! for Monitoring Road Network Updates in OSM" (ICDE 2022).
//!
//! This is the workspace's umbrella crate: it re-exports the public API of
//! every subsystem and hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! Start with [`core`] ([`rased_core::Rased`]) for the assembled system, or
//! see `examples/quickstart.rs`.

pub use rased_core as core;
pub use rased_dashboard as dashboard;
pub use rased_osm_gen as gen;

pub mod demo;
